//! Workspace-level integration tests exercised through the `updlrm`
//! facade crate — the API a downstream user sees.

use std::sync::Arc;
use updlrm::prelude::*;

/// Builds a small but non-trivial evaluation setting shared by tests.
fn setting() -> (DatasetSpec, Workload, Arc<Dlrm>) {
    let spec = DatasetSpec::meta_fbgemm1().scaled_down(2000); // ~2.9k items
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 4,
            num_batches: 3,
            ..TraceConfig::default()
        },
    );
    let model = Arc::new(
        Dlrm::new_integer_tables(DlrmConfig {
            num_dense: 13,
            embedding_dim: 32,
            table_rows: vec![spec.num_items; 4],
            bottom_hidden: vec![32],
            top_hidden: vec![32],
            seed: 77,
        })
        .expect("model builds"),
    );
    (spec, workload, model)
}

#[test]
fn all_four_backends_agree_on_every_batch() {
    let (spec, workload, model) = setting();
    let profiles: Vec<FreqProfile> = (0..4)
        .map(|t| FreqProfile::from_inputs(spec.num_items, workload.table_inputs(t)))
        .collect();
    let mem = CpuMemoryModel::default();
    let gpu = GpuModel::default();
    let mut backends: Vec<Box<dyn InferenceBackend>> = vec![
        Box::new(DlrmCpu::new(model.clone(), &profiles, mem.clone()).expect("cpu")),
        Box::new(
            DlrmHybrid::new(model.clone(), &profiles, mem.clone(), gpu.clone()).expect("hybrid"),
        ),
        Box::new(Fae::new(model.clone(), &profiles, mem.clone(), gpu, 0.8).expect("fae")),
        Box::new(
            UpdlrmBackend::from_workload(
                UpdlrmConfig::with_dpus(32, PartitionStrategy::CacheAware),
                model.clone(),
                &workload,
                mem,
            )
            .expect("updlrm"),
        ),
    ];
    for batch in &workload.batches {
        let reference = model.forward(batch).expect("reference forward");
        for backend in &mut backends {
            let (out, report) = backend.run_batch(batch).expect("backend run");
            assert_eq!(out, reference, "{} diverges from reference", backend.name());
            assert!(report.total_ns() > 0.0);
        }
    }
}

#[test]
fn engine_state_is_reusable_across_batches_and_deterministic() {
    let (_, workload, model) = setting();
    let build = || {
        UpdlrmEngine::from_workload(
            UpdlrmConfig::with_dpus(32, PartitionStrategy::NonUniform),
            model.tables(),
            &workload,
        )
        .expect("engine")
    };
    let mut a = build();
    let mut b = build();
    for batch in &workload.batches {
        let (pa, ba) = a.run_batch(batch).expect("engine a");
        let (pb, bb) = b.run_batch(batch).expect("engine b");
        assert_eq!(pa, pb, "pooled outputs must be deterministic");
        assert_eq!(ba, bb, "timing must be deterministic");
    }
}

#[test]
fn strategies_differ_in_balance_not_in_results() {
    let (_, workload, model) = setting();
    let mut pooled_by_strategy = Vec::new();
    let mut imbalance_by_strategy = Vec::new();
    for strategy in [
        PartitionStrategy::Uniform,
        PartitionStrategy::NonUniform,
        PartitionStrategy::CacheAware,
    ] {
        let mut engine = UpdlrmEngine::from_workload(
            UpdlrmConfig::with_dpus(32, strategy).with_fixed_nc(8),
            model.tables(),
            &workload,
        )
        .expect("engine");
        let (pooled, breakdown) = engine.run_batch(&workload.batches[0]).expect("run");
        pooled_by_strategy.push(pooled);
        imbalance_by_strategy.push(breakdown.lookup_imbalance);
    }
    assert_eq!(pooled_by_strategy[0], pooled_by_strategy[1]);
    assert_eq!(pooled_by_strategy[1], pooled_by_strategy[2]);
    // On this skewed trace, NU should be at least as balanced as U.
    assert!(imbalance_by_strategy[1] <= imbalance_by_strategy[0] + 1e-9);
}

#[test]
fn facade_prelude_covers_the_quickstart_surface() {
    // Compile-time check that the prelude exports the types the README
    // and examples rely on; exercised lightly at runtime.
    let cost = CostModel::default();
    assert!(cost.dma_nanos(8) > 0.0);
    let sampler = ZipfSampler::new(10, 1.0);
    assert_eq!(sampler.len(), 10);
    let sys = PimSystem::new(PimConfig::new(2, 4)).expect("pim system");
    assert_eq!(sys.nr_dpus(), 2);
    assert_eq!(DpuId(65).rank(), 1);
    assert_eq!(Hotness::Low.to_string(), "Low Hot");
}

#[test]
fn tiny_tables_and_degenerate_batches_work() {
    // Tables smaller than the partition count, empty samples, and a
    // batch of one — the paths real services hit in the tail.
    let tables = vec![
        EmbeddingTable::random_integer_valued(3, 32, 2, 0).expect("tiny table"),
        EmbeddingTable::random_integer_valued(3, 32, 2, 1).expect("tiny table"),
    ];
    let spec = DatasetSpec::balanced_synthetic(3, 2.0);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            batch_size: 1,
            num_batches: 1,
            ..TraceConfig::default()
        },
    );
    let mut engine = UpdlrmEngine::from_workload(
        UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform),
        &tables,
        &workload,
    )
    .expect("engine over tiny tables");
    let batch = QueryBatch::new(
        vec![0.5; 13],
        13,
        vec![
            SparseInput::from_samples([vec![0u64, 2]]),
            SparseInput::from_samples([Vec::<u64>::new()]),
        ],
    )
    .expect("batch");
    let (pooled, _) = engine.run_batch(&batch).expect("tiny batch");
    assert_eq!(
        pooled[0].row(0),
        tables[0].partial_sum(&[0, 2]).expect("sum")
    );
    assert_eq!(pooled[1].row(0), vec![0.0f32; 32]);
}
