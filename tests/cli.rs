//! Integration tests for the `updlrm` command-line binary.

use std::process::Command;

fn updlrm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_updlrm"))
}

#[test]
fn info_prints_dataset_facts() {
    let out = updlrm()
        .args(["info", "--dataset", "read2"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GoodReads2"));
    assert!(text.contains("374.08"));
    assert!(text.contains("2360650"));
}

#[test]
fn run_reports_latency_breakdown() {
    let out = updlrm()
        .args([
            "run",
            "--dataset",
            "movie",
            "--strategy",
            "nu",
            "--dpus",
            "32",
            "--scale",
            "1000",
            "--batches",
            "2",
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("UpDLRM on Movie"));
    assert!(text.contains("embedding:"));
    assert!(text.contains("PIM stages"));
}

#[test]
fn run_supports_every_backend() {
    for backend in ["cpu", "hybrid", "fae"] {
        let out = updlrm()
            .args([
                "run",
                "--dataset",
                "clo",
                "--backend",
                backend,
                "--scale",
                "2000",
                "--batches",
                "1",
            ])
            .output()
            .expect("run");
        assert!(
            out.status.success(),
            "{backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn trace_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("cli-trace.upwl");
    let out = updlrm()
        .args([
            "trace",
            "--dataset",
            "twitch",
            "--scale",
            "2000",
            "--batches",
            "2",
            "--out",
        ])
        .arg(&path)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut f = std::fs::File::open(&path).expect("trace file written");
    let loaded = updlrm::workloads::Workload::load(&mut f).expect("valid UPWL file");
    assert_eq!(loaded.batches.len(), 2);
    assert_eq!(loaded.spec.name, "Twitch");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_arguments_exit_nonzero() {
    let out = updlrm()
        .args(["run", "--dataset", "nope"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let out = updlrm().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let out = updlrm().output().expect("run");
    assert!(!out.status.success());
}
