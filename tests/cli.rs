//! Integration tests for the `updlrm` command-line binary.

use std::process::Command;

fn updlrm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_updlrm"))
}

#[test]
fn info_prints_dataset_facts() {
    let out = updlrm()
        .args(["info", "--dataset", "read2"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GoodReads2"));
    assert!(text.contains("374.08"));
    assert!(text.contains("2360650"));
}

#[test]
fn run_reports_latency_breakdown() {
    let out = updlrm()
        .args([
            "run",
            "--dataset",
            "movie",
            "--strategy",
            "nu",
            "--dpus",
            "32",
            "--scale",
            "1000",
            "--batches",
            "2",
        ])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("UpDLRM on Movie"));
    assert!(text.contains("embedding:"));
    assert!(text.contains("PIM stages"));
}

#[test]
fn run_supports_every_backend() {
    for backend in ["cpu", "hybrid", "fae"] {
        let out = updlrm()
            .args([
                "run",
                "--dataset",
                "clo",
                "--backend",
                backend,
                "--scale",
                "2000",
                "--batches",
                "1",
            ])
            .output()
            .expect("run");
        assert!(
            out.status.success(),
            "{backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn trace_round_trips_through_a_file() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("cli-trace.upwl");
    let out = updlrm()
        .args([
            "trace",
            "--dataset",
            "twitch",
            "--scale",
            "2000",
            "--batches",
            "2",
            "--out",
        ])
        .arg(&path)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut f = std::fs::File::open(&path).expect("trace file written");
    let loaded = updlrm::workloads::Workload::load(&mut f).expect("valid UPWL file");
    assert_eq!(loaded.batches.len(), 2);
    assert_eq!(loaded.spec.name, "Twitch");
    std::fs::remove_file(&path).ok();
}

/// Small, fast `run` argument prefix shared by the flag tests.
const QUICK_RUN: [&str; 9] = [
    "run",
    "--dataset",
    "read",
    "--dpus",
    "32",
    "--scale",
    "1000",
    "--batches",
    "2",
];

#[test]
fn run_accepts_host_threads_values() {
    for threads in ["1", "2", "8"] {
        let out = updlrm()
            .args(QUICK_RUN)
            .args(["--host-threads", threads])
            .output()
            .expect("run");
        assert!(
            out.status.success(),
            "--host-threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn run_rejects_garbage_host_threads() {
    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--host-threads", "lots"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("host-threads"), "stderr: {err}");
}

#[test]
fn run_pipeline_doublebuf_reports_serving_stats() {
    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--pipeline", "doublebuf"])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("double-buffered"), "stdout: {text}");
    assert!(text.contains("throughput"), "stdout: {text}");
    assert!(text.contains("p95"), "stdout: {text}");
}

#[test]
fn run_pipeline_sequential_is_the_default_and_accepted() {
    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--pipeline", "sequential"])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("per-batch mean"), "stdout: {text}");
}

#[test]
fn run_rejects_bad_pipeline_and_queue_depth() {
    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--pipeline", "turbo"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("pipeline mode"));

    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--queue-depth", "0"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("queue-depth"));

    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--queue-depth", "many"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn run_doublebuf_requires_updlrm_backend() {
    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--backend", "cpu", "--pipeline", "doublebuf"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --backend updlrm"));
}

#[test]
fn json_report_reflects_flags() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("run-report.json");
    let out = updlrm()
        .args(QUICK_RUN)
        .args([
            "--host-threads",
            "2",
            "--pipeline",
            "doublebuf",
            "--queue-depth",
            "3",
            "--json",
        ])
        .arg(&path)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).expect("json written");
    assert!(json.contains("\"pipeline\": \"doublebuf\""), "{json}");
    assert!(json.contains("\"queue_depth\": 3"), "{json}");
    assert!(json.contains("\"host_threads\": 2"), "{json}");
    assert!(json.contains("\"throughput_qps\""), "{json}");
    // The effective in-flight depth is capped at the two MRAM slots.
    assert!(
        json.contains("\"serve\": {\n    \"mode\": \"doublebuf\",\n    \"queue_depth\": 2"),
        "{json}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_snapshot_is_deterministic_across_runs() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let a = dir.join("metrics-a.json");
    let b = dir.join("metrics-b.json");
    for path in [&a, &b] {
        let out = updlrm()
            .args(QUICK_RUN)
            .args(["--seed", "7", "--host-threads", "1", "--metrics"])
            .arg(path)
            .output()
            .expect("run");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let first = std::fs::read(&a).expect("snapshot a");
    let second = std::fs::read(&b).expect("snapshot b");
    assert!(
        first == second,
        "same-seed metrics snapshots must be byte-identical"
    );
    // The snapshot carries only modeled values and counts.
    let text = String::from_utf8(first).expect("utf8 json");
    assert!(text.contains("\"schema_version\": 5"), "{text}");
    assert!(text.contains("\"per_dpu\""), "{text}");
    assert!(text.contains("\"load_imbalance\""), "{text}");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn stats_pretty_prints_a_snapshot() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics-stats.json");
    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--pipeline", "doublebuf", "--metrics"])
        .arg(&path)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = updlrm()
        .arg("stats")
        .arg("--metrics")
        .arg(&path)
        .output()
        .expect("stats");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("schema v5"), "stdout: {text}");
    assert!(text.contains("stage shares"), "stdout: {text}");
    assert!(text.contains("load imbalance"), "stdout: {text}");
    assert!(text.contains("fleet: 32 DPUs"), "stdout: {text}");
    // The doublebuf run recorded serve-level overlap statistics.
    assert!(text.contains("saved by overlap"), "stdout: {text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_requires_the_updlrm_backend() {
    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--backend", "cpu", "--metrics", "/tmp/never-written.json"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --backend updlrm"));
}

#[test]
fn stats_without_metrics_flag_exits_with_usage() {
    let out = updlrm().arg("stats").output().expect("stats");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--metrics"));
}

#[test]
fn json_report_is_a_superset_of_the_text_breakdown() {
    // Regression: with --iters the text output printed the "PIM stages"
    // line but the --json report dropped the per-stage breakdown.
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (name, extra) in [
        ("stages-iters.json", &["--iters", "2", "--json"][..]),
        ("stages-plain.json", &["--json"][..]),
        (
            "stages-dbl.json",
            &["--pipeline", "doublebuf", "--json"][..],
        ),
    ] {
        let path = dir.join(name);
        let out = updlrm()
            .args(QUICK_RUN)
            .args(extra)
            .arg(&path)
            .output()
            .expect("run");
        assert!(
            out.status.success(),
            "{name}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(&path).expect("json written");
        for field in [
            "\"stages\": {",
            "\"stage1_us\"",
            "\"stage2_pct\"",
            "\"lookup_imbalance\"",
            "\"pipelining_savings_pct\"",
        ] {
            assert!(json.contains(field), "{name} missing {field}: {json}");
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Small, fast `serve` argument prefix shared by the open-loop tests.
const QUICK_SERVE: [&str; 11] = [
    "serve",
    "--dataset",
    "read",
    "--dpus",
    "32",
    "--scale",
    "1000",
    "--batches",
    "3",
    "--qps",
    "300000",
];

#[test]
fn serve_reports_load_latency_and_admission() {
    let out = updlrm()
        .args(QUICK_SERVE)
        .args(["--arrival", "bursty", "--policy", "shed-oldest"])
        .output()
        .expect("serve");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("open-loop serve"), "stdout: {text}");
    assert!(text.contains("offered"), "stdout: {text}");
    assert!(text.contains("achieved"), "stdout: {text}");
    assert!(text.contains("p99"), "stdout: {text}");
    assert!(text.contains("admission [shed-oldest]"), "stdout: {text}");
}

#[test]
fn serve_rejects_bad_flags_with_usage() {
    // Missing --qps entirely.
    let out = updlrm().args(["serve"]).output().expect("serve");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--qps"));

    for (bad, needle) in [
        (&["--qps", "0"][..], "--qps"),
        (&["--qps", "-3"][..], "--qps"),
        (&["--qps", "fast"][..], "--qps"),
        (&["--qps", "1000", "--arrival", "uniform"][..], "arrival"),
        (&["--qps", "1000", "--max-batch", "0"][..], "max-batch"),
        (&["--qps", "1000", "--max-wait-us", "0"][..], "max-wait-us"),
        (&["--qps", "1000", "--queue-cap", "0"][..], "queue-cap"),
        (&["--qps", "1000", "--policy", "drop-all"][..], "policy"),
    ] {
        let out = updlrm().arg("serve").args(bad).output().expect("serve");
        assert_eq!(out.status.code(), Some(2), "args: {bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "args {bad:?}: stderr {err}");
    }
}

#[test]
fn serve_runtime_flags_are_validated() {
    // Wall-only flags must be rejected under the default modeled
    // runtime, and the wall runtime rejects nonsense shapes.
    for (bad, needle) in [
        (&["--qps", "1000", "--runtime", "hourglass"][..], "runtime"),
        (&["--qps", "1000", "--shards", "2"][..], "--runtime wall"),
        (&["--qps", "1000", "--deterministic"][..], "--runtime wall"),
        (
            &["--qps", "1000", "--time-scale", "2"][..],
            "--runtime wall",
        ),
        (
            &["--qps", "1000", "--runtime", "wall", "--shards", "0"][..],
            "--shards",
        ),
        (
            &["--qps", "1000", "--runtime", "wall", "--time-scale", "0"][..],
            "time-scale",
        ),
    ] {
        let out = updlrm().arg("serve").args(bad).output().expect("serve");
        assert_eq!(out.status.code(), Some(2), "args: {bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "args {bad:?}: stderr {err}");
    }
}

#[test]
fn serve_runtime_wall_deterministic_locks_to_the_oracle() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("serve-wall.json");
    let out = updlrm()
        .args(QUICK_SERVE)
        .args([
            "--seed",
            "7",
            "--host-threads",
            "1",
            "--runtime",
            "wall",
            "--shards",
            "2",
            "--deterministic",
            "--json",
        ])
        .arg(&json)
        .output()
        .expect("serve");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wall-clock serve"), "stdout: {text}");
    assert!(text.contains("2 shards"), "stdout: {text}");
    assert!(
        text.contains("oracle lock: OK"),
        "deterministic wall run must reproduce the modeled scheduler: {text}"
    );
    assert!(text.contains("service walls"), "stdout: {text}");
    let body = std::fs::read_to_string(&json).expect("wall json");
    for field in [
        "\"runtime\"",
        "\"shards\": 2",
        "\"deterministic\": true",
        "\"measured_qps\"",
        "\"modeled_report\"",
        "\"batches_per_shard\"",
    ] {
        assert!(body.contains(field), "missing {field}: {body}");
    }
    assert!(
        !body.contains("NaN") && !body.contains("inf"),
        "wall json must stay finite: {body}"
    );
    std::fs::remove_file(&json).ok();
}

#[test]
fn run_with_zero_batches_emits_finite_json() {
    // Regression (ISSUE 6): an empty run used to divide by zero batch
    // counts and leak NaN into `--json`, which the vendored serde
    // renders as an unparseable bare token.
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("run-zero.json");
    let out = updlrm()
        .args([
            "run",
            "--dataset",
            "read",
            "--dpus",
            "32",
            "--scale",
            "1000",
            "--batches",
            "0",
            "--json",
        ])
        .arg(&json)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&json).expect("zero-batch json");
    assert!(
        !body.contains("NaN") && !body.contains("inf"),
        "zero-batch json must stay finite: {body}"
    );
    assert!(body.contains("\"mean_total_us\": 0.0"), "{body}");
    std::fs::remove_file(&json).ok();
}

#[test]
fn serve_fully_shed_json_stays_finite() {
    // Offered load ~1000x capacity with a tiny queue: nearly every
    // arrival is shed, and whatever statistics remain must still be
    // finite numbers in the emitted JSON (satellite of ISSUE 6).
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("serve-shed.json");
    let out = updlrm()
        .args([
            "serve",
            "--dataset",
            "read",
            "--dpus",
            "32",
            "--scale",
            "1000",
            "--batches",
            "2",
            "--qps",
            "50000000",
            "--queue-cap",
            "8",
            "--max-batch",
            "8",
            "--policy",
            "shed-oldest",
            "--json",
        ])
        .arg(&json)
        .output()
        .expect("serve");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&json).expect("shed json");
    assert!(
        !body.contains("NaN") && !body.contains("inf"),
        "shed json must stay finite: {body}"
    );
    assert!(body.contains("\"shed\""), "{body}");
    std::fs::remove_file(&json).ok();
}

#[test]
fn serve_json_and_metrics_are_deterministic_across_runs() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let paths = [
        (dir.join("serve-a.json"), dir.join("serve-a-metrics.json")),
        (dir.join("serve-b.json"), dir.join("serve-b-metrics.json")),
    ];
    for (json, metrics) in &paths {
        let out = updlrm()
            .args(QUICK_SERVE)
            .args(["--seed", "7", "--host-threads", "1", "--json"])
            .arg(json)
            .arg("--metrics")
            .arg(metrics)
            .output()
            .expect("serve");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = std::fs::read(&paths[0].0).expect("json a");
    let b = std::fs::read(&paths[1].0).expect("json b");
    assert!(a == b, "same-seed serve --json must be byte-identical");
    let text = String::from_utf8(a).expect("utf8 json");
    for field in [
        "\"offered_qps\"",
        "\"achieved_qps\"",
        "\"p99_latency_ns\"",
        "\"batch_hist\"",
        "\"policy\": \"shed-oldest\"",
    ] {
        assert!(text.contains(field), "missing {field}: {text}");
    }
    let a = std::fs::read(&paths[0].1).expect("metrics a");
    let b = std::fs::read(&paths[1].1).expect("metrics b");
    assert!(a == b, "same-seed serve --metrics must be byte-identical");
    // The scheduler counters made it into the engine snapshot.
    let text = String::from_utf8(a).expect("utf8 json");
    assert!(text.contains("\"sched\""), "{text}");
    assert!(text.contains("\"trigger_size\""), "{text}");
    for (json, metrics) in &paths {
        std::fs::remove_file(json).ok();
        std::fs::remove_file(metrics).ok();
    }
}

#[test]
fn stats_rejects_snapshots_from_other_schema_versions() {
    // Regression: `stats` used to print whatever parsed, silently
    // misreading snapshots written by older/newer binaries.
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics-doctored.json");
    let out = updlrm()
        .args(QUICK_RUN)
        .args(["--metrics"])
        .arg(&path)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("snapshot");
    assert!(text.contains("\"schema_version\": 5"), "{text}");
    let doctored = text.replace("\"schema_version\": 5", "\"schema_version\": 1");
    std::fs::write(&path, doctored).expect("doctor snapshot");
    let out = updlrm()
        .arg("stats")
        .arg("--metrics")
        .arg(&path)
        .output()
        .expect("stats");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("schema v1"), "stderr: {err}");
    assert!(err.contains("reads v5"), "stderr: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_with_arrivals_emits_a_v2_file_that_round_trips() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("cli-trace-arrivals.upwl");
    let out = updlrm()
        .args([
            "trace",
            "--dataset",
            "movie",
            "--scale",
            "2000",
            "--batches",
            "2",
            "--arrival",
            "bursty",
            "--qps",
            "250000",
            "--out",
        ])
        .arg(&path)
        .output()
        .expect("trace");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("bursty arrivals at 250000 qps"));
    let mut f = std::fs::File::open(&path).expect("trace file written");
    let loaded = updlrm::workloads::Workload::load(&mut f).expect("valid UPWL v2 file");
    assert_eq!(loaded.arrivals.len(), loaded.num_queries());
    assert_eq!(loaded.arrivals.process.tag(), "bursty");

    // --arrival without --qps is an error, not a silent default rate.
    let out = updlrm()
        .args(["trace", "--arrival", "poisson", "--out", "/tmp/never.upwl"])
        .output()
        .expect("trace");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--qps"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_arguments_exit_nonzero() {
    let out = updlrm()
        .args(["run", "--dataset", "nope"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let out = updlrm().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let out = updlrm().output().expect("run");
    assert!(!out.status.success());
}

/// Flags that regenerate `tests/golden/placement_plan.json` exactly.
const GOLDEN_PLAN_FLAGS: [&str; 21] = [
    "plan",
    "--dataset",
    "read",
    "--scale",
    "5000",
    "--tables",
    "2",
    "--batches",
    "2",
    "--seed",
    "7",
    "--ranks",
    "2",
    "--dpus-per-rank",
    "4",
    "--emt-kb",
    "24",
    "--host-kb",
    "12",
    "--replicate-top",
    "24",
];

#[test]
fn plan_generation_is_deterministic_and_inspectable() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let a = dir.join("plan-a.json");
    let b = dir.join("plan-b.json");
    for path in [&a, &b] {
        let out = updlrm()
            .args(GOLDEN_PLAN_FLAGS)
            .arg("--out")
            .arg(path)
            .output()
            .expect("plan");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("fleet: 2 ranks x 4 DPUs"), "stdout: {text}");
        assert!(text.contains("tiers:"), "stdout: {text}");
        assert!(text.contains("estimate: tiered"), "stdout: {text}");
    }
    let first = std::fs::read(&a).expect("plan a");
    let second = std::fs::read(&b).expect("plan b");
    assert!(
        first == second,
        "same-flag placement plans must be byte-identical"
    );
    // Inspect mode reads the plan back and re-prints the same summary.
    let out = updlrm()
        .args(["plan", "--load"])
        .arg(&a)
        .output()
        .expect("plan --load");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("schema v1, planner seed 7"), "stdout: {text}");
    assert!(text.contains("rank balance"), "stdout: {text}");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn golden_placement_plan_matches_checked_in_file() {
    // The golden plan locks the planner's full serialized output: any
    // intentional change must regenerate the file (same flags as
    // GOLDEN_PLAN_FLAGS) and show up in review as a diff.
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("plan-golden.json");
    let out = updlrm()
        .args(GOLDEN_PLAN_FLAGS)
        .arg("--out")
        .arg(&path)
        .output()
        .expect("plan");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fresh = std::fs::read(&path).expect("regenerated plan");
    let golden = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/placement_plan.json"
    ))
    .expect("checked-in golden plan");
    assert!(
        fresh == golden,
        "regenerated plan diverges from tests/golden/placement_plan.json; \
         if intentional, regenerate it with `updlrm {}` --out tests/golden/placement_plan.json",
        GOLDEN_PLAN_FLAGS[1..].join(" ")
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn plan_and_run_reject_foreign_schema_versions() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("plan-doctored.json");
    let out = updlrm()
        .args(GOLDEN_PLAN_FLAGS)
        .arg("--out")
        .arg(&path)
        .output()
        .expect("plan");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).expect("plan");
    assert!(text.contains("\"schema_version\": 1"), "{text}");
    let doctored = text.replace("\"schema_version\": 1", "\"schema_version\": 99");
    std::fs::write(&path, doctored).expect("doctor plan");
    for args in [
        vec!["plan", "--load"],
        vec!["run", "--dataset", "read", "--plan"],
    ] {
        let out = updlrm().args(&args).arg(&path).output().expect("doctored");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("schema v99"), "stderr: {err}");
        assert!(err.contains("reads v1"), "stderr: {err}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_with_plan_serves_the_tiered_engine() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let plan_path = dir.join("plan-run.json");
    let json_path = dir.join("plan-run-report.json");
    let metrics_path = dir.join("plan-run-metrics.json");
    let out = updlrm()
        .args(GOLDEN_PLAN_FLAGS)
        .arg("--out")
        .arg(&plan_path)
        .output()
        .expect("plan");
    assert!(out.status.success());
    let out = updlrm()
        .args(["run", "--dataset", "read", "--plan"])
        .arg(&plan_path)
        .arg("--json")
        .arg(&json_path)
        .arg("--metrics")
        .arg(&metrics_path)
        .output()
        .expect("run --plan");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("UpDLRM (tiered plan)"), "stdout: {text}");
    assert!(text.contains("tier routing:"), "stdout: {text}");
    assert!(text.contains("host hits"), "stdout: {text}");
    let json = std::fs::read_to_string(&json_path).expect("report json");
    assert!(json.contains("\"strategy\": \"plan\""), "{json}");
    assert!(json.contains("\"dpus\": 6"), "{json}");
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics");
    assert!(metrics.contains("\"per_dpu\""), "{metrics}");
    // A tiered backend other than updlrm is a contradiction: exit 2.
    let out = updlrm()
        .args(["run", "--dataset", "read", "--backend", "cpu", "--plan"])
        .arg(&plan_path)
        .output()
        .expect("run --plan --backend cpu");
    assert_eq!(out.status.code(), Some(2));
    for p in [&plan_path, &json_path, &metrics_path] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn trace_then_serve_replans_a_v3_workload() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("drift.upwl");
    let snap_path = dir.join("drift_snap.json");

    let out = updlrm()
        .args([
            "trace",
            "--dataset",
            "read",
            "--scale",
            "5000",
            "--batches",
            "4",
            "--qps",
            "10000",
            "--rotate",
            "4:64:2000:0.8",
        ])
        .arg("--out")
        .arg(&trace_path)
        .output()
        .expect("trace");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("UPWL v3, drifting"),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let out = updlrm()
        .args([
            "serve",
            "--max-batch",
            "32",
            "--dpus",
            "128",
            "--strategy",
            "u",
            "--replan",
            "periodic:8",
        ])
        .arg("--workload-v3")
        .arg(&trace_path)
        .arg("--drift-snapshot")
        .arg(&snap_path)
        .output()
        .expect("serve");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("replan [periodic:8]"), "stdout: {text}");
    let snap = std::fs::read_to_string(&snap_path).expect("drift snapshot");
    assert!(snap.contains("\"replans_triggered\": 1"), "{snap}");
    assert!(snap.contains("\"migrations_completed\": 0"), "{snap}");
    for p in [&trace_path, &snap_path] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn serve_rejects_doctored_v3_with_out_of_range_hot_sets() {
    use updlrm::prelude::*;

    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("doctored.upwl");

    // A structurally valid v3 file whose drift schedule points its hot
    // sets far beyond the table: save() writes it (no exit path there),
    // the loader must reject it, and the CLI must surface exit 2.
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let mut workload = Workload::generate(
        &spec,
        TraceConfig {
            num_batches: 1,
            ..TraceConfig::default()
        },
    );
    workload.stamp_arrivals(ArrivalProcess::poisson(10_000.0, 7));
    workload.drift = Some(DriftSchedule {
        rotation: Some(HotSetRotation {
            num_sets: 64,
            set_size: 1 << 20,
            period_ns: 1_000_000,
            hot_fraction: 0.5,
        }),
        spikes: Vec::new(),
        diurnal: None,
    });
    let mut file = std::fs::File::create(&path).expect("create");
    workload.save(&mut file).expect("save");
    drop(file);

    let out = updlrm()
        .args(["serve", "--dpus", "128"])
        .arg("--workload-v3")
        .arg(&path)
        .output()
        .expect("serve");
    assert_eq!(out.status.code(), Some(2), "doctored v3 must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("rows"), "stderr: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_replan_flag_is_validated() {
    // Unknown policy spelling: exit 2.
    let out = updlrm()
        .args(["serve", "--qps", "1000", "--replan", "sometimes"])
        .output()
        .expect("serve");
    assert_eq!(out.status.code(), Some(2));
    // Replanning needs the modeled scheduler's between-batch tick.
    let out = updlrm()
        .args([
            "serve",
            "--qps",
            "1000",
            "--replan",
            "periodic:4",
            "--runtime",
            "wall",
        ])
        .output()
        .expect("serve");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("replanning requires the modeled runtime"),
        "stderr should explain the wall-runtime limitation: {err}"
    );
    // A drift snapshot without a replanner can never exist.
    let out = updlrm()
        .args([
            "serve",
            "--qps",
            "1000",
            "--drift-snapshot",
            "/tmp/nope.json",
        ])
        .output()
        .expect("serve");
    assert_eq!(out.status.code(), Some(2));
}

fn tenants_toml() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/tenants.toml")
}

#[test]
fn serve_tenants_runs_the_example_fleet() {
    let out = updlrm()
        .args(["serve", "--tenants"])
        .arg(tenants_toml())
        .output()
        .expect("serve");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("search"), "stdout: {text}");
    assert!(text.contains("ads"), "stdout: {text}");
    assert!(text.contains("drr"), "stdout: {text}");
    assert!(text.contains("p99"), "stdout: {text}");
}

#[test]
fn serve_tenants_json_is_deterministic() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let a = dir.join("tenants-a.json");
    let b = dir.join("tenants-b.json");
    for path in [&a, &b] {
        let out = updlrm()
            .args(["serve", "--tenants"])
            .arg(tenants_toml())
            .arg("--json")
            .arg(path)
            .output()
            .expect("serve");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let ja = std::fs::read_to_string(&a).expect("read a");
    let jb = std::fs::read_to_string(&b).expect("read b");
    assert_eq!(ja, jb, "same tenants file must serialize byte-identically");
    let report: updlrm::prelude::FleetReport =
        serde::json::from_str(&ja).expect("parse fleet report");
    assert_eq!(report.tenants.len(), 2);
    assert_eq!(report.tenants[0].name, "search");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn serve_tenants_rejects_incompatible_flags() {
    // Single-tenant workload flags cannot combine with a tenants file.
    for extra in [
        ["--qps", "1000"],
        ["--replan", "periodic:4"],
        ["--runtime", "wall"],
        ["--dataset", "movie"],
    ] {
        let out = updlrm()
            .args(["serve", "--tenants"])
            .arg(tenants_toml())
            .args(extra)
            .output()
            .expect("serve");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{extra:?} should be rejected: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // --no-isolation only makes sense with --tenants.
    let out = updlrm()
        .args(["serve", "--qps", "1000", "--no-isolation"])
        .output()
        .expect("serve");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn serve_tenants_rejects_bad_toml() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bad-tenants.toml");
    std::fs::write(&path, "[fleet]\ndpus = 16\nwibble = 3\n").expect("write");
    let out = updlrm()
        .args(["serve", "--tenants"])
        .arg(&path)
        .output()
        .expect("serve");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("wibble"), "stderr should name the key: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn capacity_sweeps_fleet_sizes() {
    let dir = std::env::temp_dir().join("updlrm-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("capacity.json");
    let out = updlrm()
        .args(["capacity", "--tenants"])
        .arg(tenants_toml())
        .args(["--min-dpus", "8", "--max-dpus", "16", "--json"])
        .arg(&json)
        .output()
        .expect("capacity");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("16 DPUs"), "stdout: {text}");
    assert!(
        text.contains("smallest swept fleet meeting every SLO: 16 DPUs"),
        "stdout: {text}"
    );
    let text = std::fs::read_to_string(&json).expect("read json");
    let points: Vec<updlrm::prelude::CapacityPoint> =
        serde::json::from_str(&text).expect("parse capacity points");
    assert_eq!(points.len(), 2);
    assert!(!points[0].all_slos_met, "8 DPUs should miss the SLO");
    assert!(points[1].all_slos_met, "16 DPUs should meet the SLO");
    std::fs::remove_file(&json).ok();

    // Without a tenants file the command cannot run.
    let out = updlrm().arg("capacity").output().expect("capacity");
    assert_eq!(out.status.code(), Some(2));
}
