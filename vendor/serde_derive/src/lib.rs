//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! mini-serde (`vendor/serde`).
//!
//! The container this repository builds in has no crates.io access, so
//! the real `serde_derive` (and its `syn`/`quote` dependency tree) is
//! unavailable. This crate re-implements the subset of the derive the
//! workspace actually uses, parsing the item with the bare `proc_macro`
//! API:
//!
//! * structs with named fields,
//! * tuple structs (newtype and multi-field),
//! * enums whose variants carry no payload.
//!
//! Generics, `#[serde(...)]` attributes and payload-carrying enum
//! variants are rejected with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive was applied to.
enum Item {
    /// `struct Name { field: Ty, ... }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(Ty, ...);`
    TupleStruct { name: String, arity: usize },
    /// `enum Name { A, B, ... }` (unit variants only)
    UnitEnum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Skips `#[...]` attribute pairs starting at `i`; returns the index of
/// the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected `struct` or `enum`, got `{kind}`"));
    }
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::UnitEnum {
                name: name.clone(),
                variants: parse_unit_variants(&name, g.stream())?,
            })
        }
        (_, other) => Err(format!("unsupported item body for `{name}`: {other:?}")),
    }
}

/// Field names of `{ name: Ty, ... }`, skipping attributes and
/// visibility, tracking `<...>` depth so commas inside generic argument
/// lists do not split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Number of top-level comma-separated fields in `(Ty, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for t in &tokens {
        saw_trailing_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    arity += 1;
                    saw_trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if saw_trailing_comma {
        arity -= 1;
    }
    arity
}

/// Variant names of `{ A, B, ... }`; payload-carrying variants error.
fn parse_unit_variants(enum_name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "vendored serde_derive supports only unit variants; \
                     `{enum_name}::{name}` carries data"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "vendored serde_derive does not support discriminants \
                     (`{enum_name}::{name}`)"
                ));
            }
            None => {}
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

/// Derives `serde::Serialize` (see the crate docs for the supported
/// item shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__o.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__o)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let pushes: String = (0..arity)
                .map(|i| format!("__a.push(::serde::Serialize::to_value(&self.{i}));\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __a: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Array(__a)\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(match self {{\n\
                             {arms}\
                         }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (see the crate docs for the supported
/// item shapes).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__v, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __a = ::serde::expect_array(__v, {arity})?;\n\
                         ::std::result::Result::Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match ::serde::expect_str(__v)? {{\n\
                             {arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
