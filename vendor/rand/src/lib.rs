//! Offline stand-in for `rand` 0.9.
//!
//! The build container has no crates.io access, so this crate provides
//! the subset of the rand 0.9 API the workspace uses — [`Rng`] with
//! `random_range` / `random_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — behind the same paths. `StdRng` here is
//! xoshiro256++ (seeded through SplitMix64), a small generator with
//! solid statistical quality; streams differ from the real crate's
//! ChaCha12, which is fine because nothing in the workspace pins exact
//! draw sequences across rand versions.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, available on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniform ranges can produce.
///
/// Mirrors the real crate's structure: the *single* blanket impl
/// `Range<T>: SampleRange<T>` below is what lets type inference unify a
/// range literal's element type with the call site's expected sample
/// type (e.g. `f64 * rng.random_range(0.5..1.5)` resolving to `f64`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from the half-open `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges a uniform value can be drawn from.
///
/// Parameterized by the output type (not an associated type) so that
/// float literals in `rng.random_range(-1.0..1.0)` infer their width
/// from the call site's expected type, as with the real crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Consumes the range (they are `Copy`-ish
    /// bounds anyway), matching rand 0.9.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit resolution.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, span)`.
///
/// Uses Lemire's multiply-shift with a single rejection pass — bias-free
/// and branch-light.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        let low = wide as u64;
        // Accept unless `low` falls in the biased residue zone.
        if low >= span || low >= span.wrapping_neg() % span {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                let off = uniform_below(rng, span);
                (lo as i128 + off as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in random_range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * u;
                // Guard the open upper bound against rounding.
                if v < hi {
                    v
                } else {
                    let below = <$t>::from_bits(hi.to_bits() - 1);
                    if below >= lo { below } else { lo }
                }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in random_range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64 — the initialization the
            // xoshiro authors recommend; never yields the all-zero state.
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let f: f32 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.random_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn unsized_rng_receiver_works() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw(&mut rng) < 10);
    }

    #[test]
    fn uniformity_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bins = [0u32; 16];
        let draws = 64_000;
        for _ in 0..draws {
            bins[rng.random_range(0usize..16)] += 1;
        }
        let expect = draws as f64 / 16.0;
        for &b in &bins {
            assert!(
                (f64::from(b) - expect).abs() < expect * 0.10,
                "bins {bins:?}"
            );
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01, "{hits}");
    }
}
