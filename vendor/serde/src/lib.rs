//! Offline stand-in for `serde` + `serde_json`.
//!
//! The build container has no crates.io access, so this crate provides
//! the small serialization surface the workspace needs behind the same
//! `serde::Serialize` / `serde::Deserialize` names:
//!
//! * a self-describing [`Value`] tree (null / bool / integers / floats
//!   / strings / arrays / objects);
//! * [`Serialize`] / [`Deserialize`] traits converting to and from
//!   [`Value`], derivable via the vendored `serde_derive`;
//! * a [`json`] module rendering a [`Value`] to JSON text and parsing
//!   it back (`to_string` / `to_string_pretty` / `from_str`), with
//!   float formatting that round-trips bit-exactly.
//!
//! Deserialization of objects looks fields up by name, so field order
//! is not significant — like the real serde.

#![warn(missing_docs)]

// The derive macros emit `::serde::...` paths; register this crate
// under its own name so those paths also resolve inside this crate's
// unit tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A parsed or to-be-serialized document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a document tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a document tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserializes field `key` of an object value (derive-macro helper).
///
/// # Errors
///
/// Fails when `v` is not an object, the key is missing, or the field
/// itself fails to deserialize.
pub fn field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    match v.get(key) {
        Some(f) => T::from_value(f),
        None => match v {
            Value::Object(_) => Err(Error::custom(format!("missing field `{key}`"))),
            other => Err(Error::custom(format!(
                "expected object with `{key}`, got {other:?}"
            ))),
        },
    }
}

/// Extracts an array of exactly `arity` elements (derive-macro helper).
///
/// # Errors
///
/// Fails when `v` is not an array of that length.
pub fn expect_array(v: &Value, arity: usize) -> Result<&[Value], Error> {
    match v {
        Value::Array(a) if a.len() == arity => Ok(a),
        Value::Array(a) => Err(Error::custom(format!(
            "expected {arity} elements, got {}",
            a.len()
        ))),
        other => Err(Error::custom(format!("expected array, got {other:?}"))),
    }
}

/// Extracts a string slice (derive-macro helper for unit enums).
///
/// # Errors
///
/// Fails when `v` is not a string.
pub fn expect_str(v: &Value) -> Result<&str, Error> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(Error::custom(format!("expected string, got {other:?}"))),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        Error::custom(format!("{u} out of range for i64"))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so text round-trips recover the f32 bits.
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        expect_str(v).map(str::to_string)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// JSON text rendering and parsing for [`Value`] trees.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serializes `value` to compact JSON text.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        render(&value.to_value(), None, 0, &mut out);
        out
    }

    /// Serializes `value` to indented JSON text.
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        render(&value.to_value(), Some(2), 0, &mut out);
        out
    }

    /// Parses JSON text into a `T`.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a tree whose shape does not match `T`.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
        T::from_value(&parse(s)?)
    }

    /// Parses JSON text into a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON.
    pub fn parse(s: &str) -> Result<Value, Error> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::custom(format!("trailing input at byte {pos}")));
        }
        Ok(v)
    }

    fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => render_float(*f, out),
            Value::Str(s) => render_string(s, out),
            Value::Array(items) => {
                render_seq(
                    items.iter(),
                    items.len(),
                    indent,
                    depth,
                    out,
                    '[',
                    ']',
                    |v, out| render(v, indent, depth + 1, out),
                );
            }
            Value::Object(pairs) => {
                render_seq(
                    pairs.iter(),
                    pairs.len(),
                    indent,
                    depth,
                    out,
                    '{',
                    '}',
                    |(k, v), out| {
                        render_string(k, out);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        render(v, indent, depth + 1, out);
                    },
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn render_seq<I: Iterator>(
        items: I,
        len: usize,
        indent: Option<usize>,
        depth: usize,
        out: &mut String,
        open: char,
        close: char,
        mut each: impl FnMut(I::Item, &mut String),
    ) {
        out.push(open);
        if len == 0 {
            out.push(close);
            return;
        }
        for (i, item) in items.enumerate() {
            if i > 0 {
                out.push(',');
            }
            if let Some(w) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
            }
            each(item, out);
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
        out.push(close);
    }

    /// Rust's float `Display` is the shortest representation that
    /// round-trips, so emitting it (plus a `.0` marker for integral
    /// values) preserves bits across serialize → parse.
    fn render_float(f: f64, out: &mut String) {
        if f.is_finite() {
            let _ = write!(out, "{f}");
            if !out.ends_with(|c: char| !c.is_ascii_digit() && c != '-')
                && !out.contains(['.', 'e', 'E'])
            {
                // best effort; unreachable in practice
            }
            if f.fract() == 0.0 && !format!("{f}").contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        } else if f.is_nan() {
            out.push_str("\"NaN\"");
        } else if f > 0.0 {
            out.push_str("\"inf\"");
        } else {
            out.push_str("\"-inf\"");
        }
    }

    fn render_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{lit}` at byte {pos}")))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("expected `,`/`]` at byte {pos}"))),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut pairs = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, ":")?;
                    let value = parse_value(b, pos)?;
                    pairs.push((key, value));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::custom(format!("expected `,`/`}}` at byte {pos}"))),
                    }
                }
            }
            Some(_) => parse_number(b, pos),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
        if b.get(*pos) != Some(&b'"') {
            return Err(Error::custom(format!("expected string at byte {pos}")));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            *pos += 4;
                        }
                        other => return Err(Error::custom(format!("bad escape {other:?}"))),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = std::str::from_utf8(&b[*pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let text =
            std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("expected value at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for f in [
            0.0f64,
            -1.5,
            0.156,
            1e-12,
            123_456_789.123_456_78,
            f64::MIN_POSITIVE,
        ] {
            let s = json::to_string(&f);
            let back: f64 = json::from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "float {f} via {s}");
        }
        let s = json::to_string(&u64::MAX);
        assert_eq!(json::from_str::<u64>(&s).unwrap(), u64::MAX);
        let s = json::to_string(&-42i32);
        assert_eq!(json::from_str::<i32>(&s).unwrap(), -42);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}";
        let rendered = json::to_string(&s.to_string());
        let back: String = json::from_str(&rendered).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let back: Vec<Vec<u32>> = json::from_str(&json::to_string(&v)).unwrap();
        assert_eq!(back, v);
        let o: Option<u8> = None;
        assert_eq!(json::to_string(&o), "null");
        assert_eq!(json::from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(json::from_str::<Option<u8>>("7").unwrap(), Some(7));
    }

    #[test]
    fn object_fields_parse_in_any_order() {
        #[derive(Debug, PartialEq, serde_derive::Serialize, serde_derive::Deserialize)]
        struct P {
            x: u32,
            y: f64,
        }
        let p: P = json::from_str(r#"{"y": 2.5, "x": 3}"#).unwrap();
        assert_eq!(p, P { x: 3, y: 2.5 });
        let back: P = json::from_str(&json::to_string(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn derive_covers_tuples_and_enums() {
        #[derive(Debug, PartialEq, serde_derive::Serialize, serde_derive::Deserialize)]
        struct Id(u32);
        #[derive(Debug, PartialEq, serde_derive::Serialize, serde_derive::Deserialize)]
        enum Kind {
            A,
            B,
        }
        let id: Id = json::from_str(&json::to_string(&Id(9))).unwrap();
        assert_eq!(id, Id(9));
        assert_eq!(json::to_string(&Kind::B), "\"B\"");
        let k: Kind = json::from_str("\"A\"").unwrap();
        assert_eq!(k, Kind::A);
        assert!(json::from_str::<Kind>("\"C\"").is_err());
    }

    #[test]
    fn malformed_input_errors() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("1 2").is_err());
        assert!(json::from_str::<u32>("\"x\"").is_err());
        assert!(json::from_str::<bool>("3").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![1u32, 2, 3];
        let pretty = json::to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(json::from_str::<Vec<u32>>(&pretty).unwrap(), v);
    }
}
