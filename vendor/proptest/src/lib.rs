//! Offline stand-in for `proptest` 1.x.
//!
//! The build container has no crates.io access, so this crate provides
//! the subset of the proptest API the workspace's property tests use:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! [`Strategy`] with `prop_map`, range and [`any`] strategies,
//! [`collection::vec`] / [`collection::hash_set`], tuple composition,
//! and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, deliberate for an offline test
//! dependency: cases are generated from a fixed seed (fully
//! deterministic run-to-run), there is no shrinking (a failing case
//! panics with the generated inputs' case number), and no persistence
//! files are written.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// The generator handed to strategies while producing one test case.
pub type TestRng = StdRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f` applied to this strategy's
    /// values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform,
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::SampleUniform,
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T` (`any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies (`prop::collection::vec`, …).
pub mod collection {
    use super::{Hash, HashSet, Range, Rng, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets of roughly `size` elements from `element`.
    ///
    /// As with the real proptest, `size` bounds the number of insertion
    /// *attempts*, so duplicate draws can yield a smaller set.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace alias so `prop::collection::vec(...)` works as in the
/// real crate.
pub mod prop {
    pub use crate::collection;
}

/// A failed property within a test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    ///
    /// The `PROPTEST_CASES` environment variable, when set to a
    /// positive integer, overrides `cases` — a deliberate deviation
    /// from the real crate (where the env var only overrides the
    /// default) so a CI job can deepen *every* property test, including
    /// ones that pin a case count, without touching the sources.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// Parses `PROPTEST_CASES`; `None` when unset, empty, zero, or
/// unparsable.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()?
        .trim()
        .parse::<u32>()
        .ok()
        .filter(|&n| n > 0)
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

/// Executes one property over `config.cases` generated inputs.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` against `config.cases` values from `strategy`.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case (no shrinking), reporting the
    /// case number — rerunning is deterministic, so the number alone
    /// reproduces the failure.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            // Derive the per-case seed from the case number alone so any
            // single case can be replayed in isolation.
            let mut rng = TestRng::seed_from_u64(0x9E37_79B9 ^ (u64::from(case) << 17));
            let value = strategy.generate(&mut rng);
            if let Err(e) = test(value) {
                panic!("proptest failed at case {case}/{}: {e}", self.config.cases);
            }
        }
    }
}

/// Defines property tests: `fn name(pat in strategy, ...) { body }`.
///
/// Bodies may use `?` on `Result<_, TestCaseError>` and the
/// [`prop_assert!`] family.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let strategy = ($($strat,)+);
            $crate::TestRunner::new($cfg).run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// The imports property tests start from: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRunner;

    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x < u64::MAX, "helper saw {}", x);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges, any, tuples, and `?` all work inside a body.
        #[test]
        fn ranges_and_any(a in 0u32..50, b in 1usize..=8, s in any::<u64>()) {
            prop_assert!(a < 50);
            prop_assert!((1..=8).contains(&b));
            helper(s)?;
        }

        /// Collection strategies and prop_map compose.
        #[test]
        fn collections_compose(
            v in prop::collection::vec(0u64..16, 0..10).prop_map(|mut v| { v.sort_unstable(); v }),
            set in prop::collection::hash_set(0u64..16, 0..10),
        ) {
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(set.len() < 10);
            prop_assert_eq!(v.len(), v.len());
        }

        /// `mut` patterns bind mutably.
        #[test]
        fn mut_patterns(mut v in prop::collection::vec(0u8..4, 1..6)) {
            v.reverse();
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn proptest_cases_env_overrides_counts() {
        // Other tests in this binary read the variable too; any value we
        // leave visible mid-test only changes how many (deterministic)
        // cases they run, never whether they pass.
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(ProptestConfig::default().cases, 7);
        assert_eq!(ProptestConfig::with_cases(99).cases, 7);
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(ProptestConfig::with_cases(99).cases, 99);
        std::env::set_var("PROPTEST_CASES", "junk");
        assert_eq!(ProptestConfig::default().cases, 64);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
    }

    #[test]
    fn runs_are_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 0..20);
        let collect = || {
            let mut all = Vec::new();
            TestRunner::new(ProptestConfig::with_cases(16)).run(&strat, |v| {
                all.push(v);
                Ok(())
            });
            all
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "proptest failed at case")]
    fn failures_panic_with_case_number() {
        TestRunner::new(ProptestConfig::with_cases(8)).run(&(0u32..10), |v| {
            prop_assert!(v < 5, "too big: {}", v);
            Ok(())
        });
    }
}
