//! Seeded Zipf sampling over item ranks.
//!
//! Implemented from scratch (no `rand_distr`): an exact inverse-CDF
//! sampler over a precomputed cumulative weight table with binary
//! search. Build cost is O(N), sampling O(log N). `theta = 0` degrades
//! to the uniform distribution; larger `theta` concentrates probability
//! on low ranks (item 0 is the most popular by construction).

use rand::Rng;

/// Exact Zipf(θ) sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    theta: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with exponent `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf sampler needs at least one item");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += (rank as f64).powf(-theta);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative, theta }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the sampler has exactly one item.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one item in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let total = *self.cumulative.last().expect("nonempty");
        let u = rng.random_range(0.0..total);
        // First index whose cumulative weight exceeds u.
        let idx = self.cumulative.partition_point(|&c| c <= u);
        idx.min(self.cumulative.len() - 1) as u64
    }

    /// Probability mass of item `rank` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn pmf(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().expect("nonempty");
        let w = ((rank + 1) as f64).powf(-self.theta);
        w / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(theta: f64, n: usize, draws: usize) -> Vec<u64> {
        let z = ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(1);
        let mut h = vec![0u64; n];
        for _ in 0..draws {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let h = histogram(0.0, 16, 64_000);
        let expect = 4_000.0;
        for &c in &h {
            assert!(
                (c as f64 - expect).abs() < expect * 0.15,
                "count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let h = histogram(1.2, 1000, 100_000);
        // Rank 0 should dominate the tail by a large factor.
        let head: u64 = h[..10].iter().sum();
        let tail: u64 = h[990..].iter().sum();
        assert!(head > tail * 50, "head {head} vs tail {tail}");
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let h1 = histogram(0.6, 100, 50_000);
        let h2 = histogram(1.4, 100, 50_000);
        assert!(h2[0] > h1[0]);
    }

    #[test]
    fn samples_in_range() {
        let z = ZipfSampler::new(7, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(50, 0.9);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = ZipfSampler::new(20, 1.1);
        for r in 1..20 {
            assert!(z.pmf(r) < z.pmf(r - 1));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let z = ZipfSampler::new(100, 1.0);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
