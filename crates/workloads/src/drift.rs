//! Non-stationary traffic schedules (UPWL v3).
//!
//! Every workload v1/v2 can express is *stationary*: one Zipf law, one
//! arrival process, forever. Real recommendation traffic drifts — the
//! popular catalog rotates over hours, flash crowds pile onto a few
//! items within seconds, and the offered rate follows a diurnal curve.
//! A static placement plan fit to the startup profile is exactly the
//! assumption drift breaks, so the serving engine needs traffic that
//! actually drifts to prove its replanner works.
//!
//! A [`DriftSchedule`] layers three deterministic modulations over the
//! existing seeded generation:
//!
//! * [`HotSetRotation`] — the item space is carved into `num_sets`
//!   contiguous hot sets of `set_size` rows; every `period_ns` of
//!   modeled time the active set advances, and each index draw lands in
//!   the active set with probability `hot_fraction` (otherwise the
//!   usual Zipf draw applies).
//! * [`FlashCrowd`] — a time window that overrides the active set,
//!   adds `extra_hot` to the hot fraction, and multiplies the arrival
//!   rate by `rate_boost`.
//! * [`DiurnalCurve`] — a sinusoidal arrival-rate modulation
//!   `1 + amplitude * sin(2π t / period_ns)` applied by warping
//!   inter-arrival gaps.
//!
//! All of it is a pure function of the schedule parameters and the
//! workload seed: the same schedule always yields bit-identical traces.

/// Rotating contiguous hot sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSetRotation {
    /// Number of hot sets the rotation cycles through.
    pub num_sets: usize,
    /// Rows per hot set; set `s` covers rows
    /// `[s * set_size, (s + 1) * set_size)`.
    pub set_size: usize,
    /// Modeled time between advances of the active set, ns.
    pub period_ns: u64,
    /// Probability that an index draw is redirected into the active
    /// set, in `[0, 1]`.
    pub hot_fraction: f64,
}

/// A flash-crowd spike: a window that pins the active hot set and
/// boosts both its share of draws and the arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Window start, modeled ns.
    pub start_ns: u64,
    /// Window length, modeled ns.
    pub duration_ns: u64,
    /// Hot-set id the crowd piles onto (its row range must fit the
    /// table, same bound as the rotation's sets).
    pub target_set: usize,
    /// Added to the rotation's `hot_fraction` inside the window
    /// (result capped at 1).
    pub extra_hot: f64,
    /// Arrival-rate multiplier inside the window (>= 1).
    pub rate_boost: f64,
}

/// Sinusoidal arrival-rate modulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCurve {
    /// Period of one full cycle, modeled ns.
    pub period_ns: u64,
    /// Peak deviation from the mean rate, in `[0, 1)`.
    pub amplitude: f64,
}

/// The full non-stationary schedule attached to a UPWL v3 workload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftSchedule {
    /// Rotating hot sets (None = popularity does not drift).
    pub rotation: Option<HotSetRotation>,
    /// Flash-crowd windows (require `rotation` to define set geometry).
    pub spikes: Vec<FlashCrowd>,
    /// Diurnal rate curve (None = flat offered rate).
    pub diurnal: Option<DiurnalCurve>,
}

/// The hot-set redirect in force at one instant: start row, set size
/// and redirect probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveHotSet {
    /// First row of the active set.
    pub start_row: u64,
    /// Rows in the set.
    pub rows: u64,
    /// Probability a draw lands in the set.
    pub hot_fraction: f64,
}

impl DriftSchedule {
    /// True when no modulation is configured at all.
    pub fn is_trivial(&self) -> bool {
        self.rotation.is_none() && self.spikes.is_empty() && self.diurnal.is_none()
    }

    /// Checks internal consistency and that every hot set the schedule
    /// can reference fits inside a table of `num_items` rows.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint —
    /// the loader maps it to `InvalidData` and the CLI to exit 2.
    pub fn validate(&self, num_items: usize) -> Result<(), String> {
        if let Some(rot) = &self.rotation {
            if rot.num_sets == 0 || rot.set_size == 0 {
                return Err("hot-set rotation needs num_sets >= 1 and set_size >= 1".into());
            }
            if rot.period_ns == 0 {
                return Err("hot-set rotation period must be positive".into());
            }
            if !(0.0..=1.0).contains(&rot.hot_fraction) {
                return Err(format!("hot_fraction {} outside [0, 1]", rot.hot_fraction));
            }
            let end = rot.num_sets as u64 * rot.set_size as u64;
            if end > num_items as u64 {
                return Err(format!(
                    "drift schedule references hot-set rows up to {end} but the table has only {num_items} rows"
                ));
            }
        }
        if !self.spikes.is_empty() && self.rotation.is_none() {
            return Err("flash-crowd spikes need a hot-set rotation to define set geometry".into());
        }
        for (i, sp) in self.spikes.iter().enumerate() {
            let set_size = self.rotation.as_ref().map_or(0, |r| r.set_size) as u64;
            let end = (sp.target_set as u64 + 1) * set_size;
            if end > num_items as u64 {
                return Err(format!(
                    "spike {i} targets hot set {} spanning rows up to {end} but the table has only {num_items} rows",
                    sp.target_set
                ));
            }
            if sp.duration_ns == 0 {
                return Err(format!("spike {i} has zero duration"));
            }
            if !(0.0..=1.0).contains(&sp.extra_hot) {
                return Err(format!(
                    "spike {i} extra_hot {} outside [0, 1]",
                    sp.extra_hot
                ));
            }
            if !sp.rate_boost.is_finite() || sp.rate_boost < 1.0 {
                return Err(format!(
                    "spike {i} rate_boost {} must be >= 1",
                    sp.rate_boost
                ));
            }
        }
        if let Some(d) = &self.diurnal {
            if d.period_ns == 0 {
                return Err("diurnal period must be positive".into());
            }
            if !(0.0..1.0).contains(&d.amplitude) {
                return Err(format!("diurnal amplitude {} outside [0, 1)", d.amplitude));
            }
        }
        Ok(())
    }

    /// The hot-set redirect in force at modeled time `t_ns`, if any.
    /// Spikes take precedence over the rotation (first matching window
    /// wins).
    pub fn active_hot_set(&self, t_ns: u64) -> Option<ActiveHotSet> {
        let rot = self.rotation.as_ref()?;
        let spike = self
            .spikes
            .iter()
            .find(|sp| t_ns >= sp.start_ns && t_ns - sp.start_ns < sp.duration_ns);
        let (set, frac) = match spike {
            Some(sp) => (
                sp.target_set as u64,
                (rot.hot_fraction + sp.extra_hot).min(1.0),
            ),
            None => (
                (t_ns / rot.period_ns) % rot.num_sets as u64,
                rot.hot_fraction,
            ),
        };
        Some(ActiveHotSet {
            start_row: set * rot.set_size as u64,
            rows: rot.set_size as u64,
            hot_fraction: frac,
        })
    }

    /// Arrival-rate multiplier at modeled time `t_ns` (diurnal curve
    /// times any active spike's `rate_boost`). Always positive.
    pub fn rate_multiplier(&self, t_ns: u64) -> f64 {
        let mut m = 1.0;
        if let Some(d) = &self.diurnal {
            let phase = (t_ns % d.period_ns) as f64 / d.period_ns as f64;
            m *= 1.0 + d.amplitude * (2.0 * std::f64::consts::PI * phase).sin();
        }
        if let Some(sp) = self
            .spikes
            .iter()
            .find(|sp| t_ns >= sp.start_ns && t_ns - sp.start_ns < sp.duration_ns)
        {
            m *= sp.rate_boost;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotation() -> HotSetRotation {
        HotSetRotation {
            num_sets: 4,
            set_size: 100,
            period_ns: 1_000_000,
            hot_fraction: 0.8,
        }
    }

    #[test]
    fn rotation_advances_with_time() {
        let s = DriftSchedule {
            rotation: Some(rotation()),
            ..DriftSchedule::default()
        };
        assert_eq!(s.active_hot_set(0).unwrap().start_row, 0);
        assert_eq!(s.active_hot_set(1_000_000).unwrap().start_row, 100);
        assert_eq!(s.active_hot_set(3_999_999).unwrap().start_row, 300);
        // Wraps around after num_sets periods.
        assert_eq!(s.active_hot_set(4_000_000).unwrap().start_row, 0);
    }

    #[test]
    fn spike_overrides_rotation_and_boosts_rate() {
        let s = DriftSchedule {
            rotation: Some(rotation()),
            spikes: vec![FlashCrowd {
                start_ns: 500_000,
                duration_ns: 200_000,
                target_set: 3,
                extra_hot: 0.15,
                rate_boost: 2.0,
            }],
            diurnal: None,
        };
        let inside = s.active_hot_set(600_000).unwrap();
        assert_eq!(inside.start_row, 300);
        assert!((inside.hot_fraction - 0.95).abs() < 1e-12);
        assert_eq!(s.rate_multiplier(600_000), 2.0);
        // Outside the window the rotation rules.
        assert_eq!(s.active_hot_set(499_999).unwrap().start_row, 0);
        assert_eq!(s.rate_multiplier(499_999), 1.0);
        assert_eq!(s.active_hot_set(700_000).unwrap().start_row, 0);
    }

    #[test]
    fn diurnal_multiplier_oscillates_and_stays_positive() {
        let s = DriftSchedule {
            diurnal: Some(DiurnalCurve {
                period_ns: 1_000_000,
                amplitude: 0.5,
            }),
            ..DriftSchedule::default()
        };
        let peak = s.rate_multiplier(250_000);
        let trough = s.rate_multiplier(750_000);
        assert!((peak - 1.5).abs() < 1e-9);
        assert!((trough - 0.5).abs() < 1e-9);
        for t in (0..2_000_000u64).step_by(10_000) {
            assert!(s.rate_multiplier(t) > 0.0);
        }
    }

    #[test]
    fn validate_rejects_out_of_range_hot_sets() {
        let s = DriftSchedule {
            rotation: Some(HotSetRotation {
                num_sets: 8,
                set_size: 100,
                period_ns: 1,
                hot_fraction: 0.5,
            }),
            ..DriftSchedule::default()
        };
        let err = s.validate(500).unwrap_err();
        assert!(err.contains("800"), "{err}");
        assert!(s.validate(800).is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_spike_target() {
        let s = DriftSchedule {
            rotation: Some(rotation()),
            spikes: vec![FlashCrowd {
                start_ns: 0,
                duration_ns: 1,
                target_set: 9,
                extra_hot: 0.0,
                rate_boost: 1.0,
            }],
            diurnal: None,
        };
        let err = s.validate(500).unwrap_err();
        assert!(err.contains("hot set 9"), "{err}");
    }

    #[test]
    fn validate_rejects_spikes_without_rotation() {
        let s = DriftSchedule {
            spikes: vec![FlashCrowd {
                start_ns: 0,
                duration_ns: 1,
                target_set: 0,
                extra_hot: 0.0,
                rate_boost: 1.0,
            }],
            ..DriftSchedule::default()
        };
        assert!(s.validate(1000).is_err());
    }

    #[test]
    fn validate_rejects_bad_scalars() {
        let mut r = rotation();
        r.hot_fraction = 1.5;
        let s = DriftSchedule {
            rotation: Some(r),
            ..DriftSchedule::default()
        };
        assert!(s.validate(1000).is_err());
        let s = DriftSchedule {
            diurnal: Some(DiurnalCurve {
                period_ns: 1,
                amplitude: 1.0,
            }),
            ..DriftSchedule::default()
        };
        assert!(s.validate(1000).is_err());
    }
}
