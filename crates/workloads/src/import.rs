//! Importing real access traces.
//!
//! The paper profiles "historical user-item access traces" to drive its
//! partitioners. This module parses such traces from a simple text
//! format — one sample per line, whitespace- or comma-separated item
//! ids — and converts them into the workspace's [`Workload`] form, so
//! users with real data (MovieLens exports, production logs) can run
//! the full pipeline on it.

use crate::spec::{CooccurConfig, DatasetSpec, Hotness};
use crate::trace::{TraceConfig, Workload};
use dlrm_model::{QueryBatch, SparseInput};
use std::io::{self, BufRead, BufReader, Read};

/// Options for [`import_text_trace`].
#[derive(Debug, Clone)]
pub struct ImportConfig {
    /// Name recorded in the resulting spec.
    pub name: String,
    /// Number of embedding tables to replicate the trace into (the
    /// paper duplicates each dataset into 8 EMTs).
    pub num_tables: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// Dense features per sample (filled deterministically).
    pub num_dense: usize,
}

impl Default for ImportConfig {
    fn default() -> Self {
        ImportConfig {
            name: "imported".into(),
            num_tables: 8,
            batch_size: 64,
            num_dense: 13,
        }
    }
}

/// Parses a text trace: one sample per line, items separated by spaces
/// or commas; empty lines and `#` comments are skipped. Returns a
/// [`Workload`] whose spec reflects the measured item count and
/// reduction (trailing samples that do not fill a batch are dropped).
///
/// # Errors
///
/// I/O errors and unparseable item ids.
pub fn import_text_trace<R: Read>(reader: R, config: &ImportConfig) -> io::Result<Workload> {
    let mut samples: Vec<Vec<u64>> = Vec::new();
    let mut max_item = 0u64;
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut sample = Vec::new();
        for tok in line.split([' ', '\t', ',']).filter(|t| !t.is_empty()) {
            let item: u64 = tok.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: '{tok}' is not an item id", line_no + 1),
                )
            })?;
            max_item = max_item.max(item);
            sample.push(item);
        }
        if !sample.is_empty() {
            samples.push(sample);
        }
    }
    if samples.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trace contains no samples",
        ));
    }

    let num_items = (max_item + 1) as usize;
    let total: usize = samples.iter().map(Vec::len).sum();
    let avg_reduction = total as f64 / samples.len() as f64;
    let num_batches = samples.len() / config.batch_size;
    if num_batches == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} samples cannot fill a batch of {}",
                samples.len(),
                config.batch_size
            ),
        ));
    }

    let mut batches = Vec::with_capacity(num_batches);
    for b in 0..num_batches {
        let window = &samples[b * config.batch_size..(b + 1) * config.batch_size];
        // Deterministic placeholder dense features derived from sample
        // contents (imported traces carry no dense side).
        let dense: Vec<f32> = window
            .iter()
            .flat_map(|s| {
                let h = s
                    .iter()
                    .fold(0u64, |a, &i| a.wrapping_mul(31).wrapping_add(i));
                (0..config.num_dense).map(move |d| (((h >> (d % 32)) & 0xFF) as f32) / 255.0 - 0.5)
            })
            .collect();
        let sparse: Vec<SparseInput> = (0..config.num_tables)
            .map(|_| SparseInput::from_samples(window.iter()))
            .collect();
        batches.push(
            QueryBatch::new(dense, config.num_dense, sparse)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        );
    }

    let hotness = if avg_reduction < 100.0 {
        Hotness::Low
    } else if avg_reduction < 200.0 {
        Hotness::Medium
    } else {
        Hotness::High
    };
    Ok(Workload {
        spec: DatasetSpec {
            name: config.name.clone(),
            short: config.name.chars().take(8).collect(),
            hotness,
            avg_reduction,
            num_items,
            zipf_theta: f64::NAN, // unknown for real traces
            cooccur: CooccurConfig {
                cluster_rate: 0.0,
                ..CooccurConfig::default()
            },
        },
        config: TraceConfig {
            num_tables: config.num_tables,
            batch_size: config.batch_size,
            num_batches,
            num_dense: config.num_dense,
            seed: 0,
        },
        batches,
        arrivals: crate::arrival::ArrivalTrace::closed_loop(),
        drift: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
1 2 3
4,5
7\t8\t9

2 3
1 9
5 6
";

    #[test]
    fn parses_mixed_separators_and_comments() {
        let cfg = ImportConfig {
            batch_size: 2,
            num_tables: 2,
            ..ImportConfig::default()
        };
        let w = import_text_trace(SAMPLE.as_bytes(), &cfg).unwrap();
        assert_eq!(w.spec.num_items, 10); // max id 9
        assert_eq!(w.batches.len(), 3); // 6 samples / 2
        assert_eq!(w.batches[0].sparse[0].sample(0), &[1, 2, 3]);
        assert_eq!(w.batches[0].sparse[0].sample(1), &[4, 5]);
        assert_eq!(w.batches[0].sparse.len(), 2);
        // Avg reduction measured from the trace.
        assert!((w.spec.avg_reduction - 14.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn batches_validate_and_dense_is_deterministic() {
        let cfg = ImportConfig {
            batch_size: 3,
            ..ImportConfig::default()
        };
        let a = import_text_trace(SAMPLE.as_bytes(), &cfg).unwrap();
        let b = import_text_trace(SAMPLE.as_bytes(), &cfg).unwrap();
        assert_eq!(a.batches, b.batches);
        for batch in &a.batches {
            batch.validate().unwrap();
        }
    }

    #[test]
    fn rejects_garbage_tokens() {
        let cfg = ImportConfig::default();
        assert!(import_text_trace("1 two 3".as_bytes(), &cfg).is_err());
    }

    #[test]
    fn rejects_empty_and_underfilled_traces() {
        let cfg = ImportConfig {
            batch_size: 64,
            ..ImportConfig::default()
        };
        assert!(import_text_trace("".as_bytes(), &cfg).is_err());
        assert!(import_text_trace("1 2 3".as_bytes(), &cfg).is_err());
    }

    #[test]
    fn imported_workload_drives_the_profiler() {
        use crate::profile::FreqProfile;
        let cfg = ImportConfig {
            batch_size: 2,
            num_tables: 1,
            ..ImportConfig::default()
        };
        let w = import_text_trace(SAMPLE.as_bytes(), &cfg).unwrap();
        let p = FreqProfile::from_inputs(w.spec.num_items, w.table_inputs(0));
        assert_eq!(p.count(1), 2);
        assert_eq!(p.count(9), 2);
        assert_eq!(p.total_accesses(), 14);
    }
}
