//! Dataset specifications matched to the paper's Table 1.
//!
//! The real datasets (Amazon reviews, Meta's FBGEMM embedding-lookup
//! traces, GoodReads, MovieLens, Twitch) are not redistributable inside
//! this repository, so each is replaced by a *specification* capturing
//! the properties the UpDLRM algorithms consume: item count, average
//! reduction (multi-hot length), popularity skew and co-occurrence
//! structure. Traces are synthesized deterministically from these specs.

/// Hotness class from Table 1 (grouped by average reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Hotness {
    /// Avg.Reduction below ~100 (AmazonClothes, AmazonHome).
    Low,
    /// Avg.Reduction ~100–200 (MetaFBGEMM 1/2).
    Medium,
    /// Avg.Reduction above ~200 (GoodReads 1/2).
    High,
}

impl std::fmt::Display for Hotness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Hotness::Low => write!(f, "Low Hot"),
            Hotness::Medium => write!(f, "Medium Hot"),
            Hotness::High => write!(f, "High Hot"),
        }
    }
}

/// Co-occurrence structure planted in a synthetic trace so that a
/// GRACE-style miner has real item combinations to find.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CooccurConfig {
    /// Items per planted cluster (combinations of this size co-occur).
    pub cluster_size: usize,
    /// Probability that a query fills its next slots from a cluster
    /// rather than an independent Zipf draw.
    pub cluster_rate: f64,
    /// Fraction of the item space (most popular first) organized into
    /// clusters.
    pub clustered_fraction: f64,
}

impl Default for CooccurConfig {
    fn default() -> Self {
        CooccurConfig {
            cluster_size: 4,
            cluster_rate: 0.35,
            clustered_fraction: 0.05,
        }
    }
}

/// Specification of one workload (one row of Table 1, or a trace
/// dataset used in Figs. 5/6).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetSpec {
    /// Full dataset name, e.g. `"AmazonClothes"`.
    pub name: String,
    /// Paper's short tag, e.g. `"clo"`.
    pub short: String,
    /// Hotness class.
    pub hotness: Hotness,
    /// Average multi-hot reduction (lookups per sample per table).
    pub avg_reduction: f64,
    /// Number of distinct items (embedding-table rows).
    pub num_items: usize,
    /// Zipf exponent of item popularity (0 = uniform).
    pub zipf_theta: f64,
    /// Planted co-occurrence structure.
    pub cooccur: CooccurConfig,
}

impl DatasetSpec {
    /// The six Table 1 workloads, in paper order.
    ///
    /// Skew exponents are chosen per hotness class: the paper observes
    /// `clo` is "quite balanced" with a low cache rate, while the
    /// GoodReads datasets are highly skewed.
    pub fn paper_six() -> Vec<DatasetSpec> {
        vec![
            Self::amazon_clothes(),
            Self::amazon_home(),
            Self::meta_fbgemm1(),
            Self::meta_fbgemm2(),
            Self::goodreads(),
            Self::goodreads2(),
        ]
    }

    /// Looks a dataset up by its paper short tag (`clo`, `home`,
    /// `meta1`, `meta2`, `read`, `read2`) or trace name (`movie`,
    /// `twitch`). Returns `None` for unknown tags.
    pub fn by_short_tag(tag: &str) -> Option<DatasetSpec> {
        match tag {
            "clo" => Some(Self::amazon_clothes()),
            "home" => Some(Self::amazon_home()),
            "meta1" => Some(Self::meta_fbgemm1()),
            "meta2" => Some(Self::meta_fbgemm2()),
            "read" => Some(Self::goodreads()),
            "read2" => Some(Self::goodreads2()),
            "movie" => Some(Self::movie()),
            "twitch" => Some(Self::twitch()),
            _ => None,
        }
    }

    /// AmazonClothes — low hot, balanced access pattern.
    pub fn amazon_clothes() -> DatasetSpec {
        DatasetSpec {
            name: "AmazonClothes".into(),
            short: "clo".into(),
            hotness: Hotness::Low,
            avg_reduction: 52.91,
            num_items: 2_685_059,
            zipf_theta: 0.35,
            cooccur: CooccurConfig {
                cluster_rate: 0.08,
                ..CooccurConfig::default()
            },
        }
    }

    /// AmazonHome — low hot.
    pub fn amazon_home() -> DatasetSpec {
        DatasetSpec {
            name: "AmazonHome".into(),
            short: "home".into(),
            hotness: Hotness::Low,
            avg_reduction: 67.56,
            num_items: 1_301_225,
            zipf_theta: 0.55,
            cooccur: CooccurConfig {
                cluster_rate: 0.15,
                ..CooccurConfig::default()
            },
        }
    }

    /// MetaFBGEMM1 — medium hot (Meta's embedding-lookup synthetic
    /// dataset, table 1 of the dlrm_datasets release).
    pub fn meta_fbgemm1() -> DatasetSpec {
        DatasetSpec {
            name: "MetaFBGEMM1".into(),
            short: "meta1".into(),
            hotness: Hotness::Medium,
            avg_reduction: 107.2,
            num_items: 5_783_210,
            zipf_theta: 0.85,
            cooccur: CooccurConfig {
                cluster_rate: 0.30,
                ..CooccurConfig::default()
            },
        }
    }

    /// MetaFBGEMM2 — medium hot.
    pub fn meta_fbgemm2() -> DatasetSpec {
        DatasetSpec {
            name: "MetaFBGEMM2".into(),
            short: "meta2".into(),
            hotness: Hotness::Medium,
            avg_reduction: 188.6,
            num_items: 5_999_981,
            zipf_theta: 0.95,
            cooccur: CooccurConfig {
                cluster_rate: 0.35,
                ..CooccurConfig::default()
            },
        }
    }

    /// GoodReads — high hot, strongly skewed.
    pub fn goodreads() -> DatasetSpec {
        DatasetSpec {
            name: "GoodReads".into(),
            short: "read".into(),
            hotness: Hotness::High,
            avg_reduction: 245.8,
            num_items: 2_360_650,
            zipf_theta: 1.10,
            cooccur: CooccurConfig {
                cluster_rate: 0.45,
                ..CooccurConfig::default()
            },
        }
    }

    /// GoodReads2 — high hot, the most reduction-heavy workload.
    pub fn goodreads2() -> DatasetSpec {
        DatasetSpec {
            name: "GoodReads2".into(),
            short: "read2".into(),
            hotness: Hotness::High,
            avg_reduction: 374.08,
            num_items: 2_360_650,
            zipf_theta: 1.15,
            cooccur: CooccurConfig {
                cluster_rate: 0.50,
                ..CooccurConfig::default()
            },
        }
    }

    /// MovieLens-style trace used by Figs. 5/6 — heavily skewed
    /// (the paper's 8-block histogram shows a ~340x max/min ratio).
    pub fn movie() -> DatasetSpec {
        DatasetSpec {
            name: "Movie".into(),
            short: "movie".into(),
            hotness: Hotness::Medium,
            avg_reduction: 80.0,
            num_items: 500_000,
            zipf_theta: 1.20,
            cooccur: CooccurConfig {
                cluster_rate: 0.40,
                ..CooccurConfig::default()
            },
        }
    }

    /// Twitch live-streaming trace used by Fig. 5.
    pub fn twitch() -> DatasetSpec {
        DatasetSpec {
            name: "Twitch".into(),
            short: "twitch".into(),
            hotness: Hotness::Medium,
            avg_reduction: 60.0,
            num_items: 800_000,
            zipf_theta: 1.05,
            cooccur: CooccurConfig {
                cluster_rate: 0.30,
                ..CooccurConfig::default()
            },
        }
    }

    /// A balanced synthetic spec for the Fig. 11 sensitivity sweep:
    /// uniform item popularity, no planted co-occurrence, configurable
    /// reduction.
    pub fn balanced_synthetic(num_items: usize, avg_reduction: f64) -> DatasetSpec {
        DatasetSpec {
            name: format!("Synthetic(red={avg_reduction})"),
            short: "syn".into(),
            hotness: Hotness::Medium,
            avg_reduction,
            num_items,
            zipf_theta: 0.0,
            cooccur: CooccurConfig {
                cluster_rate: 0.0,
                ..CooccurConfig::default()
            },
        }
    }

    /// Returns a copy with the item count scaled by `1/factor`
    /// (minimum 64 items), for fast tests and benches. Reduction and
    /// skew are preserved, so algorithmic behaviour is unchanged.
    pub fn scaled_down(&self, factor: usize) -> DatasetSpec {
        let mut s = self.clone();
        s.num_items = (self.num_items / factor.max(1)).max(64);
        s
    }

    /// Size in bytes of one embedding table for this dataset at
    /// dimension `dim` with f32 storage.
    pub fn table_bytes(&self, dim: usize) -> usize {
        self.num_items * dim * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_six_matches_table_1() {
        let six = DatasetSpec::paper_six();
        assert_eq!(six.len(), 6);
        let shorts: Vec<&str> = six.iter().map(|s| s.short.as_str()).collect();
        assert_eq!(
            shorts,
            vec!["clo", "home", "meta1", "meta2", "read", "read2"]
        );
        // Exact Table 1 numbers.
        assert_eq!(six[0].num_items, 2_685_059);
        assert_eq!(six[1].num_items, 1_301_225);
        assert_eq!(six[2].num_items, 5_783_210);
        assert_eq!(six[3].num_items, 5_999_981);
        assert_eq!(six[4].num_items, 2_360_650);
        assert_eq!(six[5].num_items, 2_360_650);
        assert!((six[0].avg_reduction - 52.91).abs() < 1e-9);
        assert!((six[5].avg_reduction - 374.08).abs() < 1e-9);
    }

    #[test]
    fn hotness_classes_follow_reduction_order() {
        let six = DatasetSpec::paper_six();
        assert_eq!(six[0].hotness, Hotness::Low);
        assert_eq!(six[2].hotness, Hotness::Medium);
        assert_eq!(six[4].hotness, Hotness::High);
        // Reductions increase across the table.
        for w in six.windows(2) {
            assert!(w[0].avg_reduction < w[1].avg_reduction);
        }
    }

    #[test]
    fn high_hot_is_more_skewed_than_low_hot() {
        assert!(DatasetSpec::goodreads().zipf_theta > DatasetSpec::amazon_clothes().zipf_theta);
    }

    #[test]
    fn scaled_down_preserves_shape() {
        let s = DatasetSpec::goodreads().scaled_down(1000);
        assert_eq!(s.num_items, 2360);
        assert_eq!(s.avg_reduction, DatasetSpec::goodreads().avg_reduction);
        assert_eq!(s.zipf_theta, DatasetSpec::goodreads().zipf_theta);
        // Floors at 64 items.
        assert_eq!(s.scaled_down(usize::MAX).num_items, 64);
    }

    #[test]
    fn table_bytes_math() {
        let s = DatasetSpec::balanced_synthetic(1000, 50.0);
        assert_eq!(s.table_bytes(32), 1000 * 32 * 4);
    }

    #[test]
    fn hotness_display() {
        assert_eq!(Hotness::High.to_string(), "High Hot");
    }
}
