//! Access-frequency profiling — the `obj_freq` input of Algorithm 1.
//!
//! UpDLRM's non-uniform and cache-aware partitioners consume the
//! historical access frequency of every item. This module builds that
//! profile from a trace, and computes the row-block histograms of the
//! paper's Fig. 5 (8 blocks, showing up to ~340x imbalance) plus skew
//! metrics used throughout the evaluation.

use dlrm_model::SparseInput;

/// Per-item access counts for one embedding table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FreqProfile {
    counts: Vec<u64>,
    total: u64,
}

impl FreqProfile {
    /// An all-zero profile over `num_items` items.
    pub fn new(num_items: usize) -> Self {
        FreqProfile {
            counts: vec![0; num_items],
            total: 0,
        }
    }

    /// Builds a profile by counting every index in `inputs`.
    ///
    /// Out-of-range indices are ignored (they cannot occur in traces
    /// produced by this workspace but may in user-supplied ones).
    pub fn from_inputs<'a>(
        num_items: usize,
        inputs: impl IntoIterator<Item = &'a SparseInput>,
    ) -> Self {
        let mut p = Self::new(num_items);
        for input in inputs {
            p.record_input(input);
        }
        p
    }

    /// Adds one sparse input's accesses to the profile.
    pub fn record_input(&mut self, input: &SparseInput) {
        for &i in &input.indices {
            if let Some(c) = self.counts.get_mut(i as usize) {
                *c += 1;
                self.total += 1;
            }
        }
    }

    /// Adds a single access.
    pub fn record(&mut self, item: u64) {
        if let Some(c) = self.counts.get_mut(item as usize) {
            *c += 1;
            self.total += 1;
        }
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.counts.len()
    }

    /// Total recorded accesses.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Access count of one item (0 for out-of-range).
    pub fn count(&self, item: u64) -> u64 {
        self.counts.get(item as usize).copied().unwrap_or(0)
    }

    /// Borrow the raw per-item counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Item ids sorted by descending frequency (ties by id) — the
    /// "sort obj_freq in descending order" step of Algorithm 1.
    pub fn items_by_frequency(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = (0..self.counts.len() as u64).collect();
        ids.sort_by_key(|&i| (std::cmp::Reverse(self.counts[i as usize]), i));
        ids
    }

    /// [`FreqProfile::items_by_frequency`] restricted to items `< rows`.
    ///
    /// A profile may legitimately cover more items than a table has rows
    /// (partitioners only require `num_items() >= rows`), and the
    /// hottest items can be the out-of-range ones. Every placement
    /// routine that indexes per-row state by hot item must go through
    /// this shared guard — the partitioners' replica blocks and the
    /// placement planner's tier assignment both used to duplicate the
    /// skip inline, and one copy once indexed out of bounds and panicked.
    pub fn items_by_frequency_in_range(&self, rows: usize) -> Vec<u64> {
        let mut ids: Vec<u64> = (0..self.counts.len().min(rows) as u64).collect();
        ids.sort_by_key(|&i| (std::cmp::Reverse(self.counts[i as usize]), i));
        ids
    }

    /// Total accesses per row block when rows are split into
    /// `num_blocks` contiguous equal blocks (Fig. 5's histogram).
    pub fn block_histogram(&self, num_blocks: usize) -> Vec<u64> {
        if num_blocks == 0 || self.counts.is_empty() {
            return Vec::new();
        }
        let n = self.counts.len();
        let mut hist = vec![0u64; num_blocks];
        for (i, &c) in self.counts.iter().enumerate() {
            let b = (i * num_blocks / n).min(num_blocks - 1);
            hist[b] += c;
        }
        hist
    }

    /// Max/min ratio across `num_blocks` blocks — the paper quotes
    /// ~340x for its most skewed dataset. Empty blocks count as 1
    /// access to keep the ratio finite.
    pub fn block_skew(&self, num_blocks: usize) -> f64 {
        let hist = self.block_histogram(num_blocks);
        if hist.is_empty() {
            return 1.0;
        }
        let max = *hist.iter().max().expect("nonempty") as f64;
        let min = *hist.iter().min().expect("nonempty") as f64;
        max / min.max(1.0)
    }

    /// Merges another profile (e.g. from another table replica) into
    /// this one.
    ///
    /// # Panics
    ///
    /// Panics if the item counts differ.
    pub fn merge(&mut self, other: &FreqProfile) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "profile size mismatch"
        );
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use crate::trace::{TraceConfig, Workload};

    #[test]
    fn counts_every_index() {
        let input = SparseInput::from_samples([vec![0u64, 1, 1], vec![2]]);
        let p = FreqProfile::from_inputs(4, [&input]);
        assert_eq!(p.counts(), &[1, 2, 1, 0]);
        assert_eq!(p.total_accesses(), 4);
        assert_eq!(p.count(1), 2);
    }

    #[test]
    fn out_of_range_indices_ignored() {
        let input = SparseInput::from_samples([vec![99u64]]);
        let p = FreqProfile::from_inputs(4, [&input]);
        assert_eq!(p.total_accesses(), 0);
    }

    #[test]
    fn items_by_frequency_sorts_descending_stable() {
        let mut p = FreqProfile::new(4);
        for _ in 0..5 {
            p.record(2);
        }
        for _ in 0..5 {
            p.record(0);
        }
        p.record(3);
        let order = p.items_by_frequency();
        assert_eq!(order, vec![0, 2, 3, 1]); // ties broken by id
    }

    #[test]
    fn items_by_frequency_in_range_drops_foreign_items() {
        // Items 4..8 (outside a 4-row table) are the hottest.
        let mut p = FreqProfile::new(8);
        for i in 4..8u64 {
            for _ in 0..100 {
                p.record(i);
            }
        }
        p.record(2);
        p.record(2);
        p.record(0);
        let order = p.items_by_frequency_in_range(4);
        assert_eq!(order, vec![2, 0, 1, 3]);
        assert!(order.iter().all(|&i| i < 4));
        // With rows >= num_items it degenerates to the unrestricted sort.
        assert_eq!(p.items_by_frequency_in_range(8), p.items_by_frequency());
        assert_eq!(p.items_by_frequency_in_range(100), p.items_by_frequency());
    }

    #[test]
    fn block_histogram_partitions_all_accesses() {
        let mut p = FreqProfile::new(16);
        for i in 0..16 {
            for _ in 0..=i {
                p.record(i as u64);
            }
        }
        let hist = p.block_histogram(4);
        assert_eq!(hist.len(), 4);
        assert_eq!(hist.iter().sum::<u64>(), p.total_accesses());
        // Later blocks hold higher-id items which we made hotter.
        assert!(hist[3] > hist[0]);
    }

    #[test]
    fn skewed_dataset_shows_large_block_skew() {
        // The Fig. 5 observation: heavily skewed datasets show orders of
        // magnitude difference between the hottest and coldest block.
        let spec = DatasetSpec::movie().scaled_down(100);
        let w = Workload::generate(
            &spec,
            TraceConfig {
                num_batches: 8,
                ..TraceConfig::default()
            },
        );
        let p = FreqProfile::from_inputs(spec.num_items, w.table_inputs(0));
        let skew = p.block_skew(8);
        assert!(
            skew > 50.0,
            "movie-like trace should be heavily skewed, got {skew}"
        );
    }

    #[test]
    fn balanced_dataset_shows_no_block_skew() {
        let spec = DatasetSpec::balanced_synthetic(4096, 50.0);
        let w = Workload::generate(
            &spec,
            TraceConfig {
                num_batches: 8,
                ..TraceConfig::default()
            },
        );
        let p = FreqProfile::from_inputs(spec.num_items, w.table_inputs(0));
        assert!(p.block_skew(8) < 1.3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FreqProfile::new(3);
        a.record(0);
        let mut b = FreqProfile::new(3);
        b.record(0);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 0, 1]);
        assert_eq!(a.total_accesses(), 3);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = FreqProfile::new(3);
        a.merge(&FreqProfile::new(4));
    }

    #[test]
    fn empty_profile_edge_cases() {
        let p = FreqProfile::new(0);
        assert!(p.block_histogram(8).is_empty());
        assert_eq!(p.block_skew(8), 1.0);
        assert!(p.items_by_frequency().is_empty());
    }
}
