//! Zero-copy packed embedding-table persistence.
//!
//! Building realistic embedding tables dominates cold-start time: a
//! GoodReads-scale table set is hundreds of megabytes of RNG output.
//! This module persists built tables in a page-aligned binary format
//! (`updlrm pack`) that loads by memory-mapping the file and handing
//! out borrowed [`TableView`]s straight over the mapped bytes — no
//! parse, no copy, no allocation proportional to table size.
//!
//! ## On-disk layout (version 1, little-endian)
//!
//! ```text
//! 0..4     magic "UPTB"
//! 4..8     format version (u32, = 1)
//! 8..12    table count (u32)
//! 12..16   reserved (zero)
//! 16..24   FNV-1a 64 checksum over all table data sections, file order
//! 24..     directory: per table { rows u64, dim u64, offset u64, bytes u64 }
//! ```
//!
//! The header region is zero-padded to [`PAGE`] bytes and every table's
//! f32 data section starts on a [`PAGE`]-aligned offset, so a mapped
//! section reinterprets as `&[f32]` in place (little-endian hosts).
//! Hosts where the in-place reinterpret is unavailable (big-endian, or
//! a misaligned fallback read) decode into an owned buffer at open —
//! same API, no silent wrong answers.
//!
//! Corrupt or foreign files are rejected with a typed [`PackError`]
//! (bad magic, unsupported version, checksum mismatch, truncation);
//! the CLI maps these to exit code 2 like every other argument error.

use dlrm_model::{EmbeddingTable, TableView};
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Alignment of the header region and every data section.
pub const PAGE: usize = 4096;

/// File magic: "UPTB" (UpDLRM packed tables).
pub const MAGIC: [u8; 4] = *b"UPTB";

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_FIXED: usize = 24;
const DIR_ENTRY: usize = 32;

/// Errors opening or validating a packed table file.
#[derive(Debug)]
pub enum PackError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The data sections do not hash to the header checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed over the file's data sections.
        actual: u64,
    },
    /// Structurally invalid (truncated, overlapping or misaligned
    /// sections, zero dimensions).
    Malformed(String),
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Io(e) => write!(f, "packed tables: {e}"),
            PackError::BadMagic => write!(f, "packed tables: bad magic (not a UPTB file)"),
            PackError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "packed tables: unsupported format version {v} (expected {FORMAT_VERSION})"
                )
            }
            PackError::ChecksumMismatch { expected, actual } => write!(
                f,
                "packed tables: checksum mismatch (header {expected:#018x}, data {actual:#018x})"
            ),
            PackError::Malformed(m) => write!(f, "packed tables: malformed file: {m}"),
        }
    }
}

impl std::error::Error for PackError {}

impl From<std::io::Error> for PackError {
    fn from(e: std::io::Error) -> Self {
        PackError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes`, seeded by `state` (chain across
/// sections by threading the return value back in).
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// FNV-1a offset basis.
const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;

fn align_up(v: usize, a: usize) -> usize {
    v.div_ceil(a) * a
}

#[derive(Debug, Clone, Copy)]
struct DirEntry {
    rows: usize,
    dim: usize,
    offset: usize,
    bytes: usize,
}

/// Serializes `tables` into the version-1 packed format.
///
/// # Errors
///
/// Propagates writer errors; rejects empty tables (which the format
/// cannot represent).
pub fn write_packed<W: Write>(tables: &[EmbeddingTable], w: &mut W) -> Result<(), PackError> {
    let mut dir = Vec::with_capacity(tables.len());
    let mut offset = align_up(HEADER_FIXED + tables.len() * DIR_ENTRY, PAGE);
    for t in tables {
        if t.rows() == 0 || t.dim() == 0 {
            return Err(PackError::Malformed("empty table".into()));
        }
        let bytes = t.rows() * t.dim() * 4;
        dir.push(DirEntry {
            rows: t.rows(),
            dim: t.dim(),
            offset,
            bytes,
        });
        offset = align_up(offset + bytes, PAGE);
    }
    let mut checksum = FNV_SEED;
    let mut le_sections = Vec::with_capacity(tables.len());
    for t in tables {
        let le = t.to_le_bytes();
        checksum = fnv1a(checksum, &le);
        le_sections.push(le);
    }

    let header_len = align_up(HEADER_FIXED + tables.len() * DIR_ENTRY, PAGE);
    let mut header = Vec::with_capacity(header_len);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    header.extend_from_slice(&checksum.to_le_bytes());
    for e in &dir {
        header.extend_from_slice(&(e.rows as u64).to_le_bytes());
        header.extend_from_slice(&(e.dim as u64).to_le_bytes());
        header.extend_from_slice(&(e.offset as u64).to_le_bytes());
        header.extend_from_slice(&(e.bytes as u64).to_le_bytes());
    }
    header.resize(header_len, 0);
    w.write_all(&header)?;

    let mut pos = header_len;
    for (e, le) in dir.iter().zip(&le_sections) {
        if pos < e.offset {
            w.write_all(&vec![0u8; e.offset - pos])?;
        }
        w.write_all(le)?;
        pos = e.offset + e.bytes;
    }
    Ok(())
}

/// Writes `tables` to `path` in the packed format (see [`write_packed`]).
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn save_packed<P: AsRef<Path>>(tables: &[EmbeddingTable], path: P) -> Result<(), PackError> {
    let mut f = File::create(path)?;
    write_packed(tables, &mut f)?;
    Ok(())
}

#[cfg(unix)]
mod sys {
    //! Minimal read-only `mmap` binding. `std` already links libc on
    //! unix targets, so the raw symbols are available without adding a
    //! crate dependency.
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private file mapping, unmapped on drop.
    #[derive(Debug)]
    pub struct Map {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // The mapping is immutable (PROT_READ, MAP_PRIVATE) for its whole
    // lifetime, so shared references to it are safe across threads.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        /// Maps `len` bytes of `file` read-only, or `None` if the
        /// kernel refuses (caller falls back to a buffered read).
        pub fn new(file: &File, len: usize) -> Option<Map> {
            if len == 0 {
                return None;
            }
            // SAFETY: mapping a valid fd read-only with a null hint
            // has no preconditions; failure returns MAP_FAILED.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                None
            } else {
                Some(Map { ptr, len })
            }
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping held
            // for self's lifetime.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: ptr/len came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Backing storage of an opened packed file.
#[derive(Debug)]
enum Storage {
    /// Memory-mapped file (the zero-copy path).
    #[cfg(unix)]
    Mapped(sys::Map),
    /// Whole-file buffered read (fallback when mapping is unavailable).
    Owned(Vec<u8>),
}

impl Storage {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Storage::Mapped(m) => m.as_slice(),
            Storage::Owned(v) => v,
        }
    }
}

/// An opened packed table file: validated header plus backing bytes.
///
/// [`PackedTables::view`] hands out [`TableView`]s borrowing the
/// backing storage directly — on the mmap path the table data is never
/// copied into the heap.
#[derive(Debug)]
pub struct PackedTables {
    storage: Storage,
    dir: Vec<DirEntry>,
    /// Per-table owned decode, populated only when the in-place f32
    /// reinterpret is unavailable (big-endian host or misaligned
    /// fallback buffer).
    owned: Vec<Option<Vec<f32>>>,
    mapped: bool,
}

impl PackedTables {
    /// Opens and validates `path`.
    ///
    /// # Errors
    ///
    /// [`PackError::BadMagic`], [`PackError::UnsupportedVersion`],
    /// [`PackError::ChecksumMismatch`] or [`PackError::Malformed`] for
    /// invalid files; [`PackError::Io`] for filesystem failures.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, PackError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len() as usize;
        let storage = match () {
            #[cfg(unix)]
            () => match sys::Map::new(&file, file_len) {
                Some(m) => Storage::Mapped(m),
                None => {
                    let mut buf = Vec::with_capacity(file_len);
                    file.read_to_end(&mut buf)?;
                    Storage::Owned(buf)
                }
            },
            #[cfg(not(unix))]
            () => {
                let mut buf = Vec::with_capacity(file_len);
                file.read_to_end(&mut buf)?;
                Storage::Owned(buf)
            }
        };
        Self::from_storage(storage)
    }

    fn from_storage(storage: Storage) -> Result<Self, PackError> {
        #[cfg(unix)]
        let mapped = matches!(&storage, Storage::Mapped(_));
        #[cfg(not(unix))]
        let mapped = false;
        let bytes = storage.bytes();
        if bytes.len() < HEADER_FIXED {
            return Err(PackError::Malformed("shorter than the fixed header".into()));
        }
        if bytes[0..4] != MAGIC {
            return Err(PackError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(PackError::UnsupportedVersion(version));
        }
        let n_tables = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let expected = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let dir_end = HEADER_FIXED + n_tables * DIR_ENTRY;
        if bytes.len() < dir_end {
            return Err(PackError::Malformed("truncated directory".into()));
        }
        let mut dir = Vec::with_capacity(n_tables);
        let u = |i: usize| -> usize {
            u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes")) as usize
        };
        for t in 0..n_tables {
            let base = HEADER_FIXED + t * DIR_ENTRY;
            let e = DirEntry {
                rows: u(base),
                dim: u(base + 8),
                offset: u(base + 16),
                bytes: u(base + 24),
            };
            if e.rows == 0 || e.dim == 0 {
                return Err(PackError::Malformed(format!("table {t}: empty dimensions")));
            }
            if e.bytes != e.rows * e.dim * 4 {
                return Err(PackError::Malformed(format!(
                    "table {t}: section is {} bytes for {}x{}",
                    e.bytes, e.rows, e.dim
                )));
            }
            if !e.offset.is_multiple_of(PAGE) {
                return Err(PackError::Malformed(format!(
                    "table {t}: section offset {} not page-aligned",
                    e.offset
                )));
            }
            if e.offset < dir_end || e.offset + e.bytes > bytes.len() {
                return Err(PackError::Malformed(format!(
                    "table {t}: section {}..{} outside file of {} bytes",
                    e.offset,
                    e.offset + e.bytes,
                    bytes.len()
                )));
            }
            dir.push(e);
        }
        let mut actual = FNV_SEED;
        for e in &dir {
            actual = fnv1a(actual, &bytes[e.offset..e.offset + e.bytes]);
        }
        if actual != expected {
            return Err(PackError::ChecksumMismatch { expected, actual });
        }
        // Decode eagerly wherever the zero-copy reinterpret is
        // unavailable, so `view` is infallible.
        let mut owned: Vec<Option<Vec<f32>>> = vec![None; dir.len()];
        for (t, e) in dir.iter().enumerate() {
            let section = &bytes[e.offset..e.offset + e.bytes];
            if reinterpret_f32(section).is_none() {
                owned[t] = Some(
                    section
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                        .collect(),
                );
            }
        }
        Ok(PackedTables {
            storage,
            dir,
            owned,
            mapped,
        })
    }

    /// Number of tables in the file.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// Whether the file holds no tables.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// Whether the backing storage is a memory mapping (as opposed to
    /// the buffered-read fallback).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// A zero-copy view of table `t` (panics if `t` is out of range —
    /// the count is validated at open).
    pub fn view(&self, t: usize) -> TableView<'_> {
        let e = self.dir[t];
        let data: &[f32] = match &self.owned[t] {
            Some(v) => v,
            None => {
                let section = &self.storage.bytes()[e.offset..e.offset + e.bytes];
                reinterpret_f32(section).expect("checked reinterpretable at open")
            }
        };
        TableView::new(e.rows, e.dim, data).expect("directory validated at open")
    }

    /// All tables as zero-copy views, in file order.
    pub fn views(&self) -> Vec<TableView<'_>> {
        (0..self.len()).map(|t| self.view(t)).collect()
    }

    /// Copies every table out into owned [`EmbeddingTable`]s (one
    /// memcpy each) — for consumers that need ownership, e.g. engine
    /// construction.
    ///
    /// # Errors
    ///
    /// Never fails on a file that passed [`PackedTables::open`]
    /// validation; the `Result` mirrors [`EmbeddingTable::from_view`].
    pub fn to_tables(&self) -> Result<Vec<EmbeddingTable>, dlrm_model::ModelError> {
        (0..self.len())
            .map(|t| EmbeddingTable::from_view(&self.view(t)))
            .collect()
    }
}

/// Reinterprets little-endian f32 bytes in place when the host layout
/// allows it (little-endian and 4-byte aligned); `None` otherwise.
fn reinterpret_f32(bytes: &[u8]) -> Option<&[f32]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: f32 has no invalid bit patterns and align_to verifies
        // alignment; on a little-endian host the byte order matches the
        // file format.
        let (prefix, mid, suffix) = unsafe { bytes.align_to::<f32>() };
        if prefix.is_empty() && suffix.is_empty() {
            return Some(mid);
        }
        None
    }
    #[cfg(not(target_endian = "little"))]
    {
        let _ = bytes;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Seek, SeekFrom};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("updlrm-pack-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_tables() -> Vec<EmbeddingTable> {
        vec![
            EmbeddingTable::random(37, 8, 1.5, 1).unwrap(),
            EmbeddingTable::random_integer_valued(64, 16, 3, 2).unwrap(),
            EmbeddingTable::random(5, 4, 0.25, 3).unwrap(),
        ]
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let tables = sample_tables();
        let path = tmp("roundtrip");
        save_packed(&tables, &path).unwrap();
        let packed = PackedTables::open(&path).unwrap();
        assert_eq!(packed.len(), tables.len());
        for (t, table) in tables.iter().enumerate() {
            let v = packed.view(t);
            assert_eq!(v.rows(), table.rows());
            assert_eq!(v.dim(), table.dim());
            let a: Vec<u32> = table.as_slice().iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = v.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "table {t}");
        }
        let owned = packed.to_tables().unwrap();
        assert_eq!(owned, tables);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn two_writes_are_byte_identical() {
        let tables = sample_tables();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_packed(&tables, &mut a).unwrap();
        write_packed(&tables, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sections_are_page_aligned() {
        let tables = sample_tables();
        let mut buf = Vec::new();
        write_packed(&tables, &mut buf).unwrap();
        let n = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        assert_eq!(n, 3);
        for t in 0..n {
            let base = HEADER_FIXED + t * DIR_ENTRY;
            let off = u64::from_le_bytes(buf[base + 16..base + 24].try_into().unwrap()) as usize;
            assert_eq!(off % PAGE, 0, "table {t} offset {off}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE000000000000000000000000").unwrap();
        assert!(matches!(
            PackedTables::open(&path),
            Err(PackError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_is_rejected() {
        let tables = sample_tables();
        let path = tmp("version");
        save_packed(&tables, &path).unwrap();
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(4)).unwrap();
        f.write_all(&99u32.to_le_bytes()).unwrap();
        drop(f);
        assert!(matches!(
            PackedTables::open(&path),
            Err(PackError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_data_bit_fails_checksum() {
        let tables = sample_tables();
        let path = tmp("checksum");
        save_packed(&tables, &path).unwrap();
        // Flip one byte inside the first data section.
        let mut bytes = std::fs::read(&path).unwrap();
        let off = u64::from_le_bytes(
            bytes[HEADER_FIXED + 16..HEADER_FIXED + 24]
                .try_into()
                .unwrap(),
        ) as usize;
        bytes[off + 5] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PackedTables::open(&path),
            Err(PackError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let tables = sample_tables();
        let path = tmp("truncated");
        save_packed(&tables, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 64]).unwrap();
        assert!(matches!(
            PackedTables::open(&path),
            Err(PackError::Malformed(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn view_partial_sum_matches_owned_table() {
        let tables = sample_tables();
        let path = tmp("psum");
        save_packed(&tables, &path).unwrap();
        let packed = PackedTables::open(&path).unwrap();
        let idx = [0u64, 3, 3, 30];
        let a = tables[0].partial_sum(&idx).unwrap();
        let b = packed.view(0).partial_sum(&idx).unwrap();
        let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
        let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(ab, bb);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn unix_open_uses_mmap() {
        let tables = sample_tables();
        let path = tmp("mapped");
        save_packed(&tables, &path).unwrap();
        let packed = PackedTables::open(&path).unwrap();
        assert!(packed.is_mapped(), "unix open should take the mmap path");
        std::fs::remove_file(&path).ok();
    }
}
