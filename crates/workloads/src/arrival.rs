//! Open-loop arrival processes on modeled time.
//!
//! A closed-loop harness (the `run` path) feeds the engine a new batch
//! the instant the previous one finishes, so it measures capacity but
//! never queueing. Real recommendation traffic is open-loop: requests
//! arrive on their own clock regardless of whether the server keeps
//! up. This module stamps each query of a [`Workload`](crate::Workload)
//! with a deterministic arrival timestamp (integer nanoseconds of
//! modeled time) drawn from a seeded process, so the scheduler can
//! replay identical traffic across runs and machines.
//!
//! Two processes are provided:
//!
//! * [`ArrivalProcess::Poisson`] — exponential inter-arrivals at a
//!   fixed rate, the classic open-loop baseline.
//! * [`ArrivalProcess::Bursty`] — a two-state Markov-modulated Poisson
//!   process (MMPP-2) alternating between a burst state and a quiet
//!   state whose rates are chosen so the long-run mean equals `qps`.
//!   This is the shape that exposes tail-latency and shedding behavior
//!   a flat Poisson stream hides.
//!
//! Everything is driven by the vendored `StdRng`, which only exposes
//! uniform draws, so exponential variates are hand-rolled via inverse
//! transform: `dt = -ln(1 - u) / rate`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nanoseconds per second, the conversion between QPS and modeled time.
pub const NS_PER_SEC: f64 = 1e9;

/// How query arrival times are produced.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ArrivalProcess {
    /// No arrival times: the legacy regime where the caller feeds
    /// batches back-to-back. UPWL v1 files load as this.
    #[default]
    ClosedLoop,
    /// Exponential inter-arrivals at `qps` requests per second.
    Poisson {
        /// Mean offered rate, requests per second.
        qps: f64,
        /// RNG seed for the inter-arrival draws.
        seed: u64,
    },
    /// Two-state MMPP: bursts at `qps * burst_factor`, quiet periods at
    /// a compensating lower rate so the long-run mean stays `qps`.
    Bursty {
        /// Long-run mean offered rate, requests per second.
        qps: f64,
        /// Rate multiplier while in the burst state (> 1).
        burst_factor: f64,
        /// Long-run fraction of time spent in the burst state (in
        /// (0, 1), and `burst_factor * burst_fraction` must stay < 1
        /// for the quiet-state rate to remain positive).
        burst_fraction: f64,
        /// RNG seed for dwell and inter-arrival draws.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `qps` with the given seed.
    pub fn poisson(qps: f64, seed: u64) -> Self {
        ArrivalProcess::Poisson { qps, seed }
    }

    /// Bursty arrivals at mean `qps` with the default burst shape
    /// (4x rate bursts covering 20% of modeled time).
    pub fn bursty(qps: f64, seed: u64) -> Self {
        ArrivalProcess::Bursty {
            qps,
            burst_factor: 4.0,
            burst_fraction: 0.2,
            seed,
        }
    }

    /// The configured mean rate, if the process is open-loop.
    pub fn offered_qps(&self) -> Option<f64> {
        match *self {
            ArrivalProcess::ClosedLoop => None,
            ArrivalProcess::Poisson { qps, .. } | ArrivalProcess::Bursty { qps, .. } => Some(qps),
        }
    }

    /// True for the closed-loop sentinel.
    pub fn is_closed_loop(&self) -> bool {
        matches!(self, ArrivalProcess::ClosedLoop)
    }

    /// Short human/CLI tag: `closed`, `poisson` or `bursty`.
    pub fn tag(&self) -> &'static str {
        match self {
            ArrivalProcess::ClosedLoop => "closed",
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }

    /// The instantaneous-rate envelope `(min_qps, max_qps)` the process
    /// can ever offer, or `None` for the closed-loop sentinel.
    ///
    /// Poisson is flat (`qps, qps`). The MMPP's two states bound it:
    /// the quiet state runs at `qps * (1 - burst_factor *
    /// burst_fraction) / (1 - burst_fraction)` and the burst state at
    /// `qps * burst_factor`, so any measured rate over a stamped trace
    /// must land inside this envelope (up to finite-sample noise) —
    /// the property `arrival_props.rs` checks.
    pub fn rate_bounds(&self) -> Option<(f64, f64)> {
        match *self {
            ArrivalProcess::ClosedLoop => None,
            ArrivalProcess::Poisson { qps, .. } => Some((qps, qps)),
            ArrivalProcess::Bursty {
                qps,
                burst_factor,
                burst_fraction,
                ..
            } => {
                let quiet = qps * (1.0 - burst_factor * burst_fraction) / (1.0 - burst_fraction);
                Some((quiet, qps * burst_factor))
            }
        }
    }
}

/// Per-query arrival timestamps plus the process that generated them.
///
/// `times_ns[k]` is the arrival time of global query `k` (query `k`
/// of the workload in batch-major order) in modeled nanoseconds from
/// the start of the trace. Times are strictly increasing: the f64
/// inter-arrival draws are strictly positive, and integer stamping
/// rounds up to `previous + 1` whenever rounding would collapse two
/// arrivals onto the same nanosecond, so every stamped inter-arrival
/// is at least 1 ns (which also caps a stampable process at 1 query
/// per ns = 1e9 QPS). An empty vector is the closed-loop sentinel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArrivalTrace {
    /// The generating process (parameters travel with the trace so a
    /// saved workload reproduces its schedule exactly).
    pub process: ArrivalProcess,
    /// Arrival time of each query, ns, strictly increasing.
    pub times_ns: Vec<u64>,
}

/// One exponential variate with the given rate (events per ns).
fn exp_ns(rng: &mut StdRng, rate_per_ns: f64) -> f64 {
    debug_assert!(rate_per_ns > 0.0);
    let u: f64 = rng.random_range(0.0..1.0);
    -(1.0 - u).ln() / rate_per_ns
}

impl ArrivalTrace {
    /// The closed-loop sentinel: no arrival times.
    pub fn closed_loop() -> Self {
        ArrivalTrace::default()
    }

    /// Generates `n` arrival timestamps from `process`.
    ///
    /// Deterministic in the process parameters (including its seed):
    /// the same call always yields bit-identical timestamps.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `qps`, `burst_factor < 1`, or a
    /// `burst_fraction` outside `(0, 1)` / incompatible with
    /// `burst_factor` — callers (CLI, benches) validate first.
    pub fn generate(process: ArrivalProcess, n: usize) -> Self {
        let times_ns = match process {
            ArrivalProcess::ClosedLoop => Vec::new(),
            ArrivalProcess::Poisson { qps, seed } => {
                assert!(qps > 0.0, "poisson qps must be positive");
                let mut rng = StdRng::seed_from_u64(seed);
                let rate = qps / NS_PER_SEC;
                let mut t = 0.0f64;
                let mut last = 0u64;
                (0..n)
                    .map(|_| {
                        t += exp_ns(&mut rng, rate);
                        // Strictly increasing integer stamps: rounding
                        // may collapse sub-ns gaps, so floor at +1 ns.
                        last = (t.round() as u64).max(last + 1);
                        last
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                qps,
                burst_factor,
                burst_fraction,
                seed,
            } => {
                assert!(qps > 0.0, "bursty qps must be positive");
                assert!(burst_factor >= 1.0, "burst_factor must be >= 1");
                assert!(
                    burst_fraction > 0.0 && burst_fraction < 1.0,
                    "burst_fraction must be in (0, 1)"
                );
                assert!(
                    burst_factor * burst_fraction < 1.0,
                    "burst_factor * burst_fraction must be < 1 so the quiet rate stays positive"
                );
                let mut rng = StdRng::seed_from_u64(seed);
                let rate_burst = qps * burst_factor / NS_PER_SEC;
                // Quiet rate compensates so the time-weighted mean is qps.
                let rate_quiet = qps * (1.0 - burst_factor * burst_fraction)
                    / (1.0 - burst_fraction)
                    / NS_PER_SEC;
                // Dwell means: one burst/quiet cycle spans ~200 mean
                // arrivals, so a trace of a few thousand queries sees
                // multiple bursts.
                let cycle_ns = 200.0 / (qps / NS_PER_SEC);
                let mean_burst_ns = burst_fraction * cycle_ns;
                let mean_quiet_ns = (1.0 - burst_fraction) * cycle_ns;
                let mut t = 0.0f64;
                let mut last = 0u64;
                let mut in_burst = false;
                let mut state_end = exp_ns(&mut rng, 1.0 / mean_quiet_ns);
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let rate = if in_burst { rate_burst } else { rate_quiet };
                    let dt = exp_ns(&mut rng, rate);
                    if t + dt <= state_end {
                        t += dt;
                        // Same strictly-increasing stamping as Poisson.
                        last = (t.round() as u64).max(last + 1);
                        out.push(last);
                    } else {
                        // Memorylessness lets us discard the partial
                        // draw and restart from the state boundary.
                        t = state_end;
                        in_burst = !in_burst;
                        let mean = if in_burst {
                            mean_burst_ns
                        } else {
                            mean_quiet_ns
                        };
                        state_end = t + exp_ns(&mut rng, 1.0 / mean);
                    }
                }
                out
            }
        };
        ArrivalTrace { process, times_ns }
    }

    /// True when no arrival times are attached (closed-loop regime).
    pub fn is_closed_loop(&self) -> bool {
        self.times_ns.is_empty()
    }

    /// Number of stamped queries.
    pub fn len(&self) -> usize {
        self.times_ns.len()
    }

    /// True when no timestamps are attached.
    pub fn is_empty(&self) -> bool {
        self.times_ns.is_empty()
    }

    /// Timestamp of the last arrival, ns (0 when closed-loop).
    pub fn last_arrival_ns(&self) -> u64 {
        self.times_ns.last().copied().unwrap_or(0)
    }

    /// Empirical offered rate: queries per second of modeled time over
    /// the span of the trace (0 when closed-loop).
    pub fn measured_offered_qps(&self) -> f64 {
        let last = self.last_arrival_ns();
        if last == 0 {
            0.0
        } else {
            self.times_ns.len() as f64 * NS_PER_SEC / last as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let a = ArrivalTrace::generate(ArrivalProcess::poisson(10_000.0, 7), 500);
        let b = ArrivalTrace::generate(ArrivalProcess::poisson(10_000.0, 7), 500);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.times_ns.windows(2).all(|w| w[0] < w[1]));
        let c = ArrivalTrace::generate(ArrivalProcess::poisson(10_000.0, 8), 500);
        assert_ne!(a.times_ns, c.times_ns, "seed must matter");
    }

    #[test]
    fn poisson_mean_rate_tracks_qps() {
        let qps = 50_000.0;
        let t = ArrivalTrace::generate(ArrivalProcess::poisson(qps, 3), 4000);
        let measured = t.measured_offered_qps();
        assert!(
            (measured - qps).abs() < qps * 0.1,
            "measured {measured} vs requested {qps}"
        );
    }

    #[test]
    fn bursty_mean_rate_tracks_qps_and_is_burstier() {
        let qps = 50_000.0;
        let n = 8000;
        let p = ArrivalTrace::generate(ArrivalProcess::poisson(qps, 3), n);
        let b = ArrivalTrace::generate(ArrivalProcess::bursty(qps, 3), n);
        assert!(b.times_ns.windows(2).all(|w| w[0] < w[1]));
        let measured = b.measured_offered_qps();
        assert!(
            (measured - qps).abs() < qps * 0.2,
            "measured {measured} vs requested {qps}"
        );
        // Squared coefficient of variation of inter-arrivals: 1 for
        // Poisson, > 1 for MMPP.
        let scv = |t: &ArrivalTrace| {
            let dts: Vec<f64> = t
                .times_ns
                .windows(2)
                .map(|w| (w[1] - w[0]) as f64)
                .collect();
            let mean = dts.iter().sum::<f64>() / dts.len() as f64;
            let var = dts.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dts.len() as f64;
            var / (mean * mean)
        };
        let (scv_p, scv_b) = (scv(&p), scv(&b));
        assert!(
            scv_b > scv_p * 1.5,
            "bursty SCV {scv_b} should exceed poisson SCV {scv_p}"
        );
    }

    #[test]
    fn closed_loop_is_the_empty_sentinel() {
        let t = ArrivalTrace::generate(ArrivalProcess::ClosedLoop, 100);
        assert!(t.is_closed_loop());
        assert_eq!(t.last_arrival_ns(), 0);
        assert_eq!(t.measured_offered_qps(), 0.0);
        assert_eq!(ArrivalTrace::closed_loop(), ArrivalTrace::default());
    }
}
