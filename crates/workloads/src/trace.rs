//! Multi-hot trace synthesis.
//!
//! Generates the inference request stream a recommendation service
//! would see: batches of samples, each carrying one multi-hot index
//! list per embedding table. Index draws follow the spec's Zipf
//! popularity with planted co-occurrence clusters (so that partial-sum
//! cache mining has real structure to discover), and per-sample list
//! lengths average to the spec's `Avg.Reduction`.

use crate::arrival::{ArrivalProcess, ArrivalTrace};
use crate::drift::{ActiveHotSet, DriftSchedule};
use crate::spec::DatasetSpec;
use crate::zipf::ZipfSampler;
use dlrm_model::{QueryBatch, SparseInput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Shape of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceConfig {
    /// Embedding tables per model (the paper duplicates each dataset
    /// into 8 EMTs).
    pub num_tables: usize,
    /// Samples per batch (the paper uses 64).
    pub batch_size: usize,
    /// Number of batches (the paper samples 12,800 inferences = 200
    /// batches of 64).
    pub num_batches: usize,
    /// Dense features per sample (13, Criteo-style).
    pub num_dense: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_tables: 8,
            batch_size: 64,
            num_batches: 10,
            num_dense: 13,
            seed: 0xDA7A,
        }
    }
}

impl TraceConfig {
    /// The paper's evaluation shape: 8 tables, batch 64, 12,800
    /// inferences (200 batches).
    pub fn paper_eval(seed: u64) -> Self {
        TraceConfig {
            num_tables: 8,
            batch_size: 64,
            num_batches: 200,
            num_dense: 13,
            seed,
        }
    }
}

/// A generated workload: the spec it came from plus the request batches.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Originating dataset specification.
    pub spec: DatasetSpec,
    /// Generation parameters.
    pub config: TraceConfig,
    /// The request stream.
    pub batches: Vec<QueryBatch>,
    /// Per-query arrival timestamps (empty = closed-loop).
    pub arrivals: ArrivalTrace,
    /// Non-stationary schedule the trace was generated under (None =
    /// stationary v1/v2 workload).
    pub drift: Option<DriftSchedule>,
}

impl Workload {
    /// Synthesizes a workload from `spec` deterministically in
    /// `config.seed`.
    pub fn generate(spec: &DatasetSpec, config: TraceConfig) -> Workload {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let item_sampler = ZipfSampler::new(spec.num_items, spec.zipf_theta);
        let cluster_sampler = ClusterPlan::new(spec);

        let mut batches = Vec::with_capacity(config.num_batches);
        for _ in 0..config.num_batches {
            let dense: Vec<f32> = (0..config.batch_size * config.num_dense)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect();
            let sparse: Vec<SparseInput> = (0..config.num_tables)
                .map(|_| {
                    SparseInput::from_samples(
                        (0..config.batch_size)
                            .map(|_| {
                                sample_multi_hot(
                                    spec,
                                    &item_sampler,
                                    &cluster_sampler,
                                    None,
                                    &mut rng,
                                )
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            batches.push(
                QueryBatch::new(dense, config.num_dense, sparse)
                    .expect("generated batches are valid by construction"),
            );
        }
        Workload {
            spec: spec.clone(),
            config,
            batches,
            arrivals: ArrivalTrace::closed_loop(),
            drift: None,
        }
    }

    /// Synthesizes a non-stationary (UPWL v3) workload: arrivals come
    /// from `process` warped by the schedule's rate modulation, and
    /// each sample's index draws are redirected into the hot set active
    /// at that sample's arrival time. Deterministic in `config.seed`
    /// and the process seed.
    ///
    /// # Panics
    ///
    /// Panics when the schedule fails [`DriftSchedule::validate`]
    /// against `spec.num_items` or when `process` is closed-loop —
    /// drift is a function of arrival time, so there must be one.
    /// Callers (CLI, benches) validate first.
    pub fn generate_drifting(
        spec: &DatasetSpec,
        config: TraceConfig,
        drift: DriftSchedule,
        process: ArrivalProcess,
    ) -> Workload {
        drift
            .validate(spec.num_items)
            .expect("drift schedule must validate against the spec");
        assert!(
            !process.is_closed_loop(),
            "drifting workloads need open-loop arrivals"
        );
        let num_queries = config.batch_size * config.num_batches;

        // Warp the base arrival gaps by the rate multiplier evaluated
        // at the warped clock: dt' = dt / m(t'). A spike compresses
        // gaps (flash crowd), the diurnal curve stretches and squeezes
        // them sinusoidally.
        let base = ArrivalTrace::generate(process, num_queries);
        let mut times_ns = Vec::with_capacity(num_queries);
        let mut prev_base = 0u64;
        let mut t = 0.0f64;
        let mut last = 0u64;
        for &tb in &base.times_ns {
            let dt = tb.saturating_sub(prev_base) as f64;
            prev_base = tb;
            t += dt / drift.rate_multiplier(t.round() as u64);
            // Same strictly-increasing integer stamping as
            // `ArrivalTrace::generate`: a rate boost can compress a
            // warped gap below 1 ns, so floor at `previous + 1`.
            last = (t.round() as u64).max(last + 1);
            times_ns.push(last);
        }
        let arrivals = ArrivalTrace { process, times_ns };

        let mut rng = StdRng::seed_from_u64(config.seed);
        let item_sampler = ZipfSampler::new(spec.num_items, spec.zipf_theta);
        let cluster_sampler = ClusterPlan::new(spec);
        let mut batches = Vec::with_capacity(config.num_batches);
        for b in 0..config.num_batches {
            let dense: Vec<f32> = (0..config.batch_size * config.num_dense)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect();
            let sparse: Vec<SparseInput> = (0..config.num_tables)
                .map(|_| {
                    SparseInput::from_samples(
                        (0..config.batch_size)
                            .map(|s| {
                                let k = b * config.batch_size + s;
                                let hot = drift.active_hot_set(arrivals.times_ns[k]);
                                sample_multi_hot(
                                    spec,
                                    &item_sampler,
                                    &cluster_sampler,
                                    hot,
                                    &mut rng,
                                )
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            batches.push(
                QueryBatch::new(dense, config.num_dense, sparse)
                    .expect("generated batches are valid by construction"),
            );
        }
        Workload {
            spec: spec.clone(),
            config,
            batches,
            arrivals,
            drift: Some(drift),
        }
    }

    /// Total queries (samples) across all batches.
    pub fn num_queries(&self) -> usize {
        self.batches.iter().map(QueryBatch::batch_size).sum()
    }

    /// Stamps every query with an arrival time drawn from `process`,
    /// replacing any existing arrival trace. Timestamps are in
    /// batch-major query order (query `k` lives in batch
    /// `k / batch_size`, sample `k % batch_size`).
    pub fn stamp_arrivals(&mut self, process: ArrivalProcess) {
        self.arrivals = ArrivalTrace::generate(process, self.num_queries());
    }

    /// Total lookups across all batches and tables.
    pub fn total_lookups(&self) -> usize {
        self.batches
            .iter()
            .map(|b| {
                b.sparse
                    .iter()
                    .map(SparseInput::total_lookups)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Empirical average reduction over the generated trace.
    pub fn measured_avg_reduction(&self) -> f64 {
        let samples: usize = self
            .batches
            .iter()
            .map(|b| b.sparse.iter().map(SparseInput::batch_size).sum::<usize>())
            .sum();
        if samples == 0 {
            0.0
        } else {
            self.total_lookups() as f64 / samples as f64
        }
    }

    /// Iterator over all sparse inputs of one table across batches.
    pub fn table_inputs(&self, table: usize) -> impl Iterator<Item = &SparseInput> + '_ {
        self.batches.iter().map(move |b| &b.sparse[table])
    }
}

/// Where the planted co-occurrence clusters live in the item space.
#[derive(Debug)]
struct ClusterPlan {
    /// Number of clusters (0 disables co-occurrence).
    num_clusters: usize,
    cluster_size: usize,
    cluster_rate: f64,
    sampler: Option<ZipfSampler>,
}

impl ClusterPlan {
    fn new(spec: &DatasetSpec) -> ClusterPlan {
        let clustered_items = (spec.num_items as f64 * spec.cooccur.clustered_fraction) as usize;
        let num_clusters = clustered_items / spec.cooccur.cluster_size.max(1);
        let sampler = (num_clusters > 0 && spec.cooccur.cluster_rate > 0.0)
            .then(|| ZipfSampler::new(num_clusters, spec.zipf_theta.max(0.5)));
        ClusterPlan {
            num_clusters,
            cluster_size: spec.cooccur.cluster_size,
            cluster_rate: spec.cooccur.cluster_rate,
            sampler,
        }
    }

    /// Items of cluster `c`: consecutive ids among the most popular.
    fn members(&self, c: u64) -> impl Iterator<Item = u64> {
        let start = c * self.cluster_size as u64;
        start..start + self.cluster_size as u64
    }
}

/// Draws one sample's distinct multi-hot index list. With `hot` set,
/// each draw is redirected uniformly into the active hot set with the
/// schedule's probability before the Zipf/cluster machinery runs; with
/// `hot = None` the draw sequence is bit-identical to the stationary
/// generator.
fn sample_multi_hot(
    spec: &DatasetSpec,
    items: &ZipfSampler,
    clusters: &ClusterPlan,
    hot: Option<ActiveHotSet>,
    rng: &mut StdRng,
) -> Vec<u64> {
    // Per-sample length: uniform in [0.5, 1.5] * avg so the mean matches
    // the spec while lengths vary as in real traces.
    let target = (spec.avg_reduction * rng.random_range(0.5..1.5))
        .round()
        .max(1.0) as usize;
    let target = target.min(spec.num_items);
    let mut out = Vec::with_capacity(target);
    let mut seen = HashSet::with_capacity(target * 2);
    let mut attempts = 0usize;
    let max_attempts = target * 20 + 64;
    while out.len() < target && attempts < max_attempts {
        attempts += 1;
        if let Some(h) = hot {
            if h.hot_fraction > 0.0 && rng.random_bool(h.hot_fraction) {
                let item = h.start_row + rng.random_range(0..h.rows);
                if seen.insert(item) {
                    out.push(item);
                }
                continue;
            }
        }
        let take_cluster = clusters
            .sampler
            .as_ref()
            .is_some_and(|_| rng.random_bool(clusters.cluster_rate));
        if take_cluster {
            let c = clusters.sampler.as_ref().expect("checked").sample(rng);
            debug_assert!((c as usize) < clusters.num_clusters);
            for item in clusters.members(c) {
                if out.len() >= target {
                    break;
                }
                if seen.insert(item) {
                    out.push(item);
                }
            }
        } else {
            let item = items.sample(rng);
            if seen.insert(item) {
                out.push(item);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec::goodreads().scaled_down(1000) // 2360 items
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let cfg = TraceConfig {
            num_batches: 2,
            ..TraceConfig::default()
        };
        let a = Workload::generate(&spec, cfg);
        let b = Workload::generate(&spec, cfg);
        assert_eq!(a.batches, b.batches);
    }

    #[test]
    fn measured_reduction_tracks_spec() {
        let spec = small_spec();
        let cfg = TraceConfig {
            num_batches: 6,
            ..TraceConfig::default()
        };
        let w = Workload::generate(&spec, cfg);
        let measured = w.measured_avg_reduction();
        assert!(
            (measured - spec.avg_reduction).abs() < spec.avg_reduction * 0.15,
            "measured {measured} vs spec {}",
            spec.avg_reduction
        );
    }

    #[test]
    fn indices_in_range_and_distinct_per_sample() {
        let spec = small_spec();
        let w = Workload::generate(
            &spec,
            TraceConfig {
                num_batches: 2,
                ..TraceConfig::default()
            },
        );
        for b in &w.batches {
            for s in &b.sparse {
                for sample_idx in 0..s.batch_size() {
                    let sample = s.sample(sample_idx);
                    assert!(sample.iter().all(|&i| (i as usize) < spec.num_items));
                    let set: HashSet<u64> = sample.iter().copied().collect();
                    assert_eq!(set.len(), sample.len(), "duplicate index in sample");
                }
            }
        }
    }

    #[test]
    fn shape_matches_config() {
        let spec = small_spec();
        let cfg = TraceConfig {
            num_tables: 3,
            batch_size: 16,
            num_batches: 4,
            num_dense: 5,
            seed: 1,
        };
        let w = Workload::generate(&spec, cfg);
        assert_eq!(w.batches.len(), 4);
        for b in &w.batches {
            assert_eq!(b.sparse.len(), 3);
            assert_eq!(b.batch_size(), 16);
            assert_eq!(b.dense.len(), 16 * 5);
        }
    }

    #[test]
    fn balanced_synthetic_has_no_skew() {
        // With theta = 0 the most popular block should see roughly the
        // same traffic as the least popular one.
        let spec = DatasetSpec::balanced_synthetic(1024, 40.0);
        let w = Workload::generate(
            &spec,
            TraceConfig {
                num_batches: 8,
                ..TraceConfig::default()
            },
        );
        let mut counts = vec![0u64; 1024];
        for b in &w.batches {
            for s in &b.sparse {
                for &i in &s.indices {
                    counts[i as usize] += 1;
                }
            }
        }
        let head: u64 = counts[..128].iter().sum();
        let tail: u64 = counts[896..].iter().sum();
        let ratio = head as f64 / tail.max(1) as f64;
        assert!(ratio < 1.5, "balanced trace too skewed: {ratio}");
    }

    #[test]
    fn cooccurrence_is_planted() {
        // Items of the same cluster should co-occur far more often than
        // random pairs: check pair (0, 1) vs (0, large non-cluster id).
        let mut spec = small_spec();
        spec.cooccur.cluster_rate = 0.6;
        let w = Workload::generate(
            &spec,
            TraceConfig {
                num_batches: 8,
                ..TraceConfig::default()
            },
        );
        let mut co01 = 0u64;
        let mut co0x = 0u64;
        let far = (spec.num_items - 10) as u64;
        for b in &w.batches {
            for s in &b.sparse {
                for smp in s.iter() {
                    let has0 = smp.contains(&0);
                    if has0 && smp.contains(&1) {
                        co01 += 1;
                    }
                    if has0 && smp.contains(&far) {
                        co0x += 1;
                    }
                }
            }
        }
        assert!(
            co01 > co0x * 3,
            "cluster pair co-occurs {co01}, random pair {co0x}"
        );
    }

    #[test]
    fn drifting_generation_is_deterministic_and_concentrated() {
        use crate::drift::{DriftSchedule, HotSetRotation};
        let spec = small_spec();
        let cfg = TraceConfig {
            num_tables: 2,
            num_batches: 6,
            ..TraceConfig::default()
        };
        let drift = DriftSchedule {
            rotation: Some(HotSetRotation {
                num_sets: 4,
                set_size: 256,
                period_ns: 2_000_000,
                hot_fraction: 0.9,
            }),
            ..DriftSchedule::default()
        };
        let process = ArrivalProcess::poisson(50_000.0, 3);
        let a = Workload::generate_drifting(&spec, cfg, drift.clone(), process);
        let b = Workload::generate_drifting(&spec, cfg, drift.clone(), process);
        assert_eq!(a, b);
        assert_eq!(a.arrivals.len(), a.num_queries());
        assert!(a.arrivals.times_ns.windows(2).all(|w| w[0] < w[1]));
        // Each query's indices should concentrate in the hot set active
        // at its arrival time.
        let mut in_hot = 0u64;
        let mut total = 0u64;
        for (bi, batch) in a.batches.iter().enumerate() {
            for sp in &batch.sparse {
                for (s, sample) in sp.iter().enumerate() {
                    let k = bi * cfg.batch_size + s;
                    let h = drift.active_hot_set(a.arrivals.times_ns[k]).unwrap();
                    total += sample.len() as u64;
                    in_hot += sample
                        .iter()
                        .filter(|&&i| i >= h.start_row && i < h.start_row + h.rows)
                        .count() as u64;
                }
            }
        }
        // Distinct-draw dedup within a sample dilutes the redirect
        // probability, so the realized share sits below hot_fraction.
        let frac = in_hot as f64 / total as f64;
        assert!(frac > 0.55, "hot-set concentration too low: {frac}");
        // Stationary generation is untouched by the drift machinery.
        assert_eq!(Workload::generate(&spec, cfg).drift, None);
    }

    #[test]
    fn paper_eval_config_is_12800_inferences() {
        let c = TraceConfig::paper_eval(0);
        assert_eq!(c.batch_size * c.num_batches, 12_800);
        assert_eq!(c.num_tables, 8);
    }
}
