//! # workloads — synthetic recommendation workloads
//!
//! The UpDLRM paper evaluates on six real-world datasets (Table 1) plus
//! MovieLens/Twitch/GoodReads access traces. Those datasets cannot ship
//! with this repository, so this crate synthesizes workloads that match
//! the properties UpDLRM's algorithms actually consume:
//!
//! * item counts and average multi-hot reduction exactly as in Table 1,
//! * Zipf popularity skew per hotness class (reproducing Fig. 5's
//!   row-block imbalance),
//! * planted co-occurrence clusters so partial-sum cache mining
//!   (GRACE-style) finds real structure,
//! * deterministic generation from a seed.
//!
//! ## Example
//!
//! ```rust
//! use workloads::{DatasetSpec, FreqProfile, TraceConfig, Workload};
//!
//! let spec = DatasetSpec::goodreads().scaled_down(1000);
//! let workload = Workload::generate(&spec, TraceConfig { num_batches: 2, ..TraceConfig::default() });
//! let profile = FreqProfile::from_inputs(spec.num_items, workload.table_inputs(0));
//! assert!(profile.block_skew(8) > 1.0); // GoodReads-like traces are skewed
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod drift;
pub mod import;
pub mod io;
pub mod pack;
pub mod profile;
pub mod spec;
pub mod trace;
pub mod zipf;

pub use arrival::{ArrivalProcess, ArrivalTrace, NS_PER_SEC};
pub use drift::{ActiveHotSet, DiurnalCurve, DriftSchedule, FlashCrowd, HotSetRotation};
pub use import::{import_text_trace, ImportConfig};
pub use pack::{save_packed, write_packed, PackError, PackedTables};
pub use profile::FreqProfile;
pub use spec::{CooccurConfig, DatasetSpec, Hotness};
pub use trace::{TraceConfig, Workload};
pub use zipf::ZipfSampler;
