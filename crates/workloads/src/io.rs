//! Binary persistence for generated workloads.
//!
//! Regenerating multi-hundred-megabyte traces for every experiment run
//! is wasteful; this module serializes a [`Workload`] into a compact
//! little-endian binary format (magic `UPWL`) and reads it back. The
//! format is self-contained — spec, trace configuration and arrival
//! schedule travel with the batches — so a saved trace reproduces an
//! experiment exactly.
//!
//! ## Versions
//!
//! * **v1** — spec + config + batches. Still loads: the arrival trace
//!   defaults to the closed-loop sentinel.
//! * **v2** — v1 plus an arrival block between the config and the
//!   batches: a process tag (`0` closed-loop, `1` Poisson, `2`
//!   bursty), the process parameters, and the per-query timestamps.
//! * **v3** (current) — v2 plus a drift block between the arrivals and
//!   the batches: an optional hot-set rotation (`num_sets`, `set_size`,
//!   `period_ns`, `hot_fraction`), a list of flash-crowd spikes
//!   (`start_ns`, `duration_ns`, `target_set`, `extra_hot`,
//!   `rate_boost`) and an optional diurnal curve (`period_ns`,
//!   `amplitude`). [`Workload::save`] stamps v3 only when a drift
//!   schedule is attached — stationary workloads keep writing v2
//!   byte-for-byte — and [`Workload::save_v1`] emits the legacy layout
//!   (dropping arrivals and drift) for old readers. The loader rejects
//!   v3 files whose schedule references hot-set rows beyond the spec's
//!   row count.

use crate::arrival::{ArrivalProcess, ArrivalTrace};
use crate::drift::{DiurnalCurve, DriftSchedule, FlashCrowd, HotSetRotation};
use crate::spec::{CooccurConfig, DatasetSpec, Hotness};
use crate::trace::{TraceConfig, Workload};
use dlrm_model::{QueryBatch, SparseInput};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"UPWL";
const V1: u32 = 1;
const VERSION: u32 = 2;
const V3: u32 = 3;

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    w_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn r_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = r_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "string length implausible",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn w_arrivals<W: Write>(writer: &mut W, arrivals: &ArrivalTrace) -> io::Result<()> {
    match arrivals.process {
        ArrivalProcess::ClosedLoop => w_u32(writer, 0)?,
        ArrivalProcess::Poisson { qps, seed } => {
            w_u32(writer, 1)?;
            w_f64(writer, qps)?;
            w_u64(writer, seed)?;
        }
        ArrivalProcess::Bursty {
            qps,
            burst_factor,
            burst_fraction,
            seed,
        } => {
            w_u32(writer, 2)?;
            w_f64(writer, qps)?;
            w_f64(writer, burst_factor)?;
            w_f64(writer, burst_fraction)?;
            w_u64(writer, seed)?;
        }
    }
    w_u64(writer, arrivals.times_ns.len() as u64)?;
    for &t in &arrivals.times_ns {
        w_u64(writer, t)?;
    }
    Ok(())
}

fn w_drift<W: Write>(writer: &mut W, drift: &DriftSchedule) -> io::Result<()> {
    match &drift.rotation {
        None => w_u32(writer, 0)?,
        Some(rot) => {
            w_u32(writer, 1)?;
            w_u64(writer, rot.num_sets as u64)?;
            w_u64(writer, rot.set_size as u64)?;
            w_u64(writer, rot.period_ns)?;
            w_f64(writer, rot.hot_fraction)?;
        }
    }
    w_u32(writer, drift.spikes.len() as u32)?;
    for sp in &drift.spikes {
        w_u64(writer, sp.start_ns)?;
        w_u64(writer, sp.duration_ns)?;
        w_u64(writer, sp.target_set as u64)?;
        w_f64(writer, sp.extra_hot)?;
        w_f64(writer, sp.rate_boost)?;
    }
    match &drift.diurnal {
        None => w_u32(writer, 0)?,
        Some(d) => {
            w_u32(writer, 1)?;
            w_u64(writer, d.period_ns)?;
            w_f64(writer, d.amplitude)?;
        }
    }
    Ok(())
}

fn r_drift<R: Read>(reader: &mut R) -> io::Result<DriftSchedule> {
    let rotation = match r_u32(reader)? {
        0 => None,
        1 => Some(HotSetRotation {
            num_sets: r_u64(reader)? as usize,
            set_size: r_u64(reader)? as usize,
            period_ns: r_u64(reader)?,
            hot_fraction: r_f64(reader)?,
        }),
        _ => return Err(bad("unknown hot-set rotation tag")),
    };
    let n_spikes = r_u32(reader)? as usize;
    if n_spikes > 1 << 16 {
        return Err(bad("spike count implausible"));
    }
    let mut spikes = Vec::with_capacity(n_spikes);
    for _ in 0..n_spikes {
        spikes.push(FlashCrowd {
            start_ns: r_u64(reader)?,
            duration_ns: r_u64(reader)?,
            target_set: r_u64(reader)? as usize,
            extra_hot: r_f64(reader)?,
            rate_boost: r_f64(reader)?,
        });
    }
    let diurnal = match r_u32(reader)? {
        0 => None,
        1 => Some(DiurnalCurve {
            period_ns: r_u64(reader)?,
            amplitude: r_f64(reader)?,
        }),
        _ => return Err(bad("unknown diurnal tag")),
    };
    Ok(DriftSchedule {
        rotation,
        spikes,
        diurnal,
    })
}

fn r_arrivals<R: Read>(reader: &mut R) -> io::Result<ArrivalTrace> {
    let process = match r_u32(reader)? {
        0 => ArrivalProcess::ClosedLoop,
        1 => ArrivalProcess::Poisson {
            qps: r_f64(reader)?,
            seed: r_u64(reader)?,
        },
        2 => ArrivalProcess::Bursty {
            qps: r_f64(reader)?,
            burst_factor: r_f64(reader)?,
            burst_fraction: r_f64(reader)?,
            seed: r_u64(reader)?,
        },
        _ => return Err(bad("unknown arrival process tag")),
    };
    let n = r_u64(reader)? as usize;
    if n > 1 << 28 {
        return Err(bad("arrival count implausible"));
    }
    let mut times_ns = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        let t = r_u64(reader)?;
        if t < prev {
            return Err(bad("arrival times must be non-decreasing"));
        }
        prev = t;
        times_ns.push(t);
    }
    Ok(ArrivalTrace { process, times_ns })
}

impl Workload {
    /// Serializes the workload to `writer` (format `UPWL`): v3 when a
    /// drift schedule is attached, v2 otherwise — so stationary
    /// workloads stay byte-identical to pre-v3 writers.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`. A mut reference to any
    /// `Write` works (`workload.save(&mut file)?`).
    pub fn save<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        let version = if self.drift.is_some() { V3 } else { VERSION };
        self.save_version(writer, version)
    }

    /// Serializes in the legacy `UPWL` v1 layout for old readers,
    /// dropping the arrival trace.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn save_v1<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        self.save_version(writer, V1)
    }

    fn save_version<W: Write>(&self, writer: &mut W, version: u32) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        w_u32(writer, version)?;
        // Spec.
        w_str(writer, &self.spec.name)?;
        w_str(writer, &self.spec.short)?;
        w_u32(
            writer,
            match self.spec.hotness {
                Hotness::Low => 0,
                Hotness::Medium => 1,
                Hotness::High => 2,
            },
        )?;
        w_f64(writer, self.spec.avg_reduction)?;
        w_u64(writer, self.spec.num_items as u64)?;
        w_f64(writer, self.spec.zipf_theta)?;
        w_u64(writer, self.spec.cooccur.cluster_size as u64)?;
        w_f64(writer, self.spec.cooccur.cluster_rate)?;
        w_f64(writer, self.spec.cooccur.clustered_fraction)?;
        // Config.
        w_u64(writer, self.config.num_tables as u64)?;
        w_u64(writer, self.config.batch_size as u64)?;
        w_u64(writer, self.config.num_batches as u64)?;
        w_u64(writer, self.config.num_dense as u64)?;
        w_u64(writer, self.config.seed)?;
        // Arrival schedule (v2+).
        if version >= 2 {
            w_arrivals(writer, &self.arrivals)?;
        }
        // Drift schedule (v3+).
        if version >= 3 {
            w_drift(
                writer,
                self.drift.as_ref().unwrap_or(&DriftSchedule::default()),
            )?;
        }
        // Batches.
        w_u64(writer, self.batches.len() as u64)?;
        for batch in &self.batches {
            w_u64(writer, batch.dense.len() as u64)?;
            for &v in &batch.dense {
                writer.write_all(&v.to_le_bytes())?;
            }
            w_u64(writer, batch.sparse.len() as u64)?;
            for sp in &batch.sparse {
                w_u64(writer, sp.offsets.len() as u64)?;
                for &o in &sp.offsets {
                    w_u64(writer, o as u64)?;
                }
                w_u64(writer, sp.indices.len() as u64)?;
                for &i in &sp.indices {
                    w_u64(writer, i)?;
                }
            }
        }
        Ok(())
    }

    /// Reads a workload previously written by [`Workload::save`].
    ///
    /// # Errors
    ///
    /// I/O errors, a bad magic/version, or malformed structure (every
    /// loaded batch is re-validated).
    pub fn load<R: Read>(reader: &mut R) -> io::Result<Workload> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a UPWL workload file"));
        }
        let version = r_u32(reader)?;
        if version != V1 && version != VERSION && version != V3 {
            return Err(bad("unsupported UPWL version"));
        }
        let name = r_str(reader)?;
        let short = r_str(reader)?;
        let hotness = match r_u32(reader)? {
            0 => Hotness::Low,
            1 => Hotness::Medium,
            2 => Hotness::High,
            _ => return Err(bad("unknown hotness tag")),
        };
        let avg_reduction = r_f64(reader)?;
        let num_items = r_u64(reader)? as usize;
        let zipf_theta = r_f64(reader)?;
        let cluster_size = r_u64(reader)? as usize;
        let cluster_rate = r_f64(reader)?;
        let clustered_fraction = r_f64(reader)?;
        let spec = DatasetSpec {
            name,
            short,
            hotness,
            avg_reduction,
            num_items,
            zipf_theta,
            cooccur: CooccurConfig {
                cluster_size,
                cluster_rate,
                clustered_fraction,
            },
        };
        let config = TraceConfig {
            num_tables: r_u64(reader)? as usize,
            batch_size: r_u64(reader)? as usize,
            num_batches: r_u64(reader)? as usize,
            num_dense: r_u64(reader)? as usize,
            seed: r_u64(reader)?,
        };
        // v1 has no arrival block: default to the closed-loop sentinel.
        let arrivals = if version >= 2 {
            r_arrivals(reader)?
        } else {
            ArrivalTrace::closed_loop()
        };
        // v3 adds the drift block; validate its hot-set geometry
        // against the spec before trusting any of its row ranges.
        let drift = if version >= 3 {
            let schedule = r_drift(reader)?;
            schedule.validate(spec.num_items).map_err(|e| bad(&e))?;
            Some(schedule)
        } else {
            None
        };
        let n_batches = r_u64(reader)? as usize;
        if n_batches > 1 << 24 {
            return Err(bad("batch count implausible"));
        }
        let mut batches = Vec::with_capacity(n_batches);
        for _ in 0..n_batches {
            let dense_len = r_u64(reader)? as usize;
            let mut dense = Vec::with_capacity(dense_len);
            for _ in 0..dense_len {
                let mut b = [0u8; 4];
                reader.read_exact(&mut b)?;
                dense.push(f32::from_le_bytes(b));
            }
            let n_sparse = r_u64(reader)? as usize;
            let mut sparse = Vec::with_capacity(n_sparse);
            for _ in 0..n_sparse {
                let n_off = r_u64(reader)? as usize;
                let mut offsets = Vec::with_capacity(n_off);
                for _ in 0..n_off {
                    offsets.push(r_u64(reader)? as usize);
                }
                let n_idx = r_u64(reader)? as usize;
                let mut indices = Vec::with_capacity(n_idx);
                for _ in 0..n_idx {
                    indices.push(r_u64(reader)?);
                }
                sparse.push(
                    SparseInput::new(indices, offsets)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
                );
            }
            batches.push(
                QueryBatch::new(dense, config.num_dense, sparse)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            );
        }
        let workload = Workload {
            spec,
            config,
            batches,
            arrivals,
            drift,
        };
        if !workload.arrivals.is_closed_loop() && workload.arrivals.len() != workload.num_queries()
        {
            return Err(bad("arrival count does not match query count"));
        }
        Ok(workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    fn sample_workload() -> Workload {
        let spec = DatasetSpec::movie().scaled_down(2000);
        Workload::generate(
            &spec,
            TraceConfig {
                num_tables: 2,
                batch_size: 8,
                num_batches: 3,
                num_dense: 4,
                seed: 9,
            },
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let w = sample_workload();
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        let loaded = Workload::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.spec, w.spec);
        assert_eq!(loaded.config, w.config);
        assert_eq!(loaded.batches, w.batches);
    }

    #[test]
    fn v2_round_trip_is_bit_exact() {
        let mut w = sample_workload();
        w.stamp_arrivals(ArrivalProcess::poisson(20_000.0, 42));
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        let loaded = Workload::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, w);
        // save -> load -> save is byte-identical.
        let mut buf2 = Vec::new();
        loaded.save(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn v2_round_trips_bursty_parameters() {
        let mut w = sample_workload();
        w.stamp_arrivals(ArrivalProcess::bursty(5_000.0, 11));
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        let loaded = Workload::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.arrivals.process, w.arrivals.process);
        assert_eq!(loaded.arrivals.times_ns, w.arrivals.times_ns);
    }

    #[test]
    fn v1_files_load_with_closed_loop_sentinel() {
        let mut w = sample_workload();
        w.stamp_arrivals(ArrivalProcess::poisson(20_000.0, 42));
        let mut buf = Vec::new();
        w.save_v1(&mut buf).unwrap();
        assert_eq!(&buf[4..8], &1u32.to_le_bytes(), "save_v1 stamps version 1");
        let loaded = Workload::load(&mut buf.as_slice()).unwrap();
        assert!(loaded.arrivals.is_closed_loop());
        assert_eq!(loaded.batches, w.batches);
        assert_eq!(loaded.spec, w.spec);
        assert_eq!(loaded.config, w.config);
    }

    fn sample_drift() -> DriftSchedule {
        DriftSchedule {
            rotation: Some(HotSetRotation {
                num_sets: 3,
                set_size: 64,
                period_ns: 500_000,
                hot_fraction: 0.85,
            }),
            spikes: vec![FlashCrowd {
                start_ns: 200_000,
                duration_ns: 100_000,
                target_set: 2,
                extra_hot: 0.1,
                rate_boost: 2.0,
            }],
            diurnal: Some(DiurnalCurve {
                period_ns: 4_000_000,
                amplitude: 0.3,
            }),
        }
    }

    fn drifting_workload() -> Workload {
        let spec = DatasetSpec::movie().scaled_down(2000);
        Workload::generate_drifting(
            &spec,
            TraceConfig {
                num_tables: 2,
                batch_size: 8,
                num_batches: 3,
                num_dense: 4,
                seed: 9,
            },
            sample_drift(),
            ArrivalProcess::poisson(40_000.0, 17),
        )
    }

    #[test]
    fn v3_round_trip_is_bit_exact() {
        let w = drifting_workload();
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        assert_eq!(&buf[4..8], &3u32.to_le_bytes(), "drift stamps version 3");
        let loaded = Workload::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, w);
        let mut buf2 = Vec::new();
        loaded.save(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn stationary_workloads_still_stamp_v2() {
        let mut w = sample_workload();
        w.stamp_arrivals(ArrivalProcess::poisson(20_000.0, 42));
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        assert_eq!(&buf[4..8], &2u32.to_le_bytes());
        assert_eq!(Workload::load(&mut buf.as_slice()).unwrap().drift, None);
    }

    #[test]
    fn v1_save_drops_drift() {
        let w = drifting_workload();
        let mut buf = Vec::new();
        w.save_v1(&mut buf).unwrap();
        let loaded = Workload::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.drift, None);
        assert!(loaded.arrivals.is_closed_loop());
        assert_eq!(loaded.batches, w.batches);
    }

    #[test]
    fn rejects_v3_hot_set_beyond_row_count() {
        // Doctor a v3 file so the rotation's hot sets span more rows
        // than the spec declares (save does not validate, so a bad
        // schedule round-trips to bytes; load must refuse them).
        let mut w = drifting_workload();
        let rot = w.drift.as_mut().unwrap().rotation.as_mut().unwrap();
        rot.num_sets = 1_000_000;
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        let err = Workload::load(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("rows"), "{err}");
    }

    #[test]
    fn rejects_v3_spike_target_beyond_row_count() {
        let mut w = drifting_workload();
        w.drift.as_mut().unwrap().spikes[0].target_set = 1_000_000;
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        let err = Workload::load(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("hot set"), "{err}");
    }

    #[test]
    fn rejects_arrival_count_mismatch() {
        let mut w = sample_workload();
        w.arrivals = ArrivalTrace {
            process: ArrivalProcess::poisson(1000.0, 1),
            times_ns: vec![1, 2, 3], // != num_queries
        };
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        let err = Workload::load(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("arrival count"), "{err}");
    }

    #[test]
    fn rejects_decreasing_arrival_times() {
        let mut w = sample_workload();
        let n = w.num_queries();
        let mut times: Vec<u64> = (0..n as u64).collect();
        times.swap(0, 1); // 1, 0, 2, ...
        w.arrivals = ArrivalTrace {
            process: ArrivalProcess::poisson(1000.0, 1),
            times_ns: times,
        };
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        let err = Workload::load(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("non-decreasing"), "{err}");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        sample_workload().save(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(Workload::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        sample_workload().save(&mut buf).unwrap();
        buf[4] = 99;
        assert!(Workload::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let mut buf = Vec::new();
        sample_workload().save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Workload::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupted_offsets() {
        let w = sample_workload();
        let mut buf = Vec::new();
        w.save(&mut buf).unwrap();
        // Corrupt the tail (sparse index data): loader either errors or
        // yields validated batches; flipping an offset byte near the
        // sparse section must not produce an invalid batch silently.
        let len = buf.len();
        buf[len - 9] ^= 0xFF;
        if let Ok(loaded) = Workload::load(&mut buf.as_slice()) {
            for b in &loaded.batches {
                b.validate().unwrap();
            }
        }
    }
}
