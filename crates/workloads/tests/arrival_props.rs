//! Property tests for the open-loop arrival processes, with the MMPP
//! (bursty) generator as the main target: over random rates, burst
//! shapes and seeds,
//!
//! 1. **strict monotonicity** — stamped arrival times are strictly
//!    increasing, so every integer inter-arrival is >= 1 ns and no two
//!    queries ever collapse onto the same modeled nanosecond;
//! 2. **determinism** — the same process parameters (including the
//!    seed) yield a bit-identical stamp sequence, and a different seed
//!    yields a different one;
//! 3. **rate envelope** — the measured offered rate of a stamped trace
//!    lands inside the process's two-state rate envelope
//!    ([`ArrivalProcess::rate_bounds`]): the MMPP switches between its
//!    quiet and burst states, so no finite trace can sustain a rate
//!    outside `[quiet, burst]` (checked with generous finite-sample
//!    slack), and windowed rates actually visit both regimes.
//!
//! Honors `PROPTEST_CASES` like the rest of the suite.

use proptest::prelude::*;
use proptest::TestRunner;
use workloads::{ArrivalProcess, ArrivalTrace, NS_PER_SEC};

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn bursty_stamps_are_strictly_monotone_and_seed_deterministic() {
    let strategy = (
        1_000.0f64..5_000_000.0, // qps
        1.5f64..8.0,             // burst_factor
        0.05f64..0.45,           // burst_fraction (factor * fraction < 1 enforced below)
        0u64..1_000,             // seed
        64usize..2_048,          // trace length
    );
    TestRunner::new(ProptestConfig::with_cases(cases(64))).run(
        &strategy,
        |(qps, factor, fraction, seed, n)| {
            // Keep the quiet-state rate positive (the constructor's
            // precondition); skew infeasible draws back inside.
            let fraction = fraction.min(0.9 / factor);
            let process = ArrivalProcess::Bursty {
                qps,
                burst_factor: factor,
                burst_fraction: fraction,
                seed,
            };
            let a = ArrivalTrace::generate(process, n);
            prop_assert_eq!(a.len(), n);
            // 1. Strictly increasing stamps: positive integer
            // inter-arrivals everywhere, first arrival after t=0.
            prop_assert!(a.times_ns[0] > 0);
            prop_assert!(
                a.times_ns.windows(2).all(|w| w[0] < w[1]),
                "stamps must be strictly increasing"
            );
            // 2. Fixed seed => identical stamp sequence.
            let b = ArrivalTrace::generate(process, n);
            prop_assert_eq!(&a.times_ns, &b.times_ns);
            let other = ArrivalTrace::generate(
                ArrivalProcess::Bursty {
                    seed: seed.wrapping_add(1),
                    qps,
                    burst_factor: factor,
                    burst_fraction: fraction,
                },
                n,
            );
            prop_assert!(a.times_ns != other.times_ns, "seed must matter");
            Ok(())
        },
    );
}

#[test]
fn bursty_measured_rates_stay_inside_the_state_envelope() {
    let strategy = (
        10_000.0f64..1_000_000.0, // qps
        2.0f64..6.0,              // burst_factor
        0.1f64..0.3,              // burst_fraction
        0u64..1_000,              // seed
    );
    TestRunner::new(ProptestConfig::with_cases(cases(48))).run(
        &strategy,
        |(qps, factor, fraction, seed)| {
            let fraction = fraction.min(0.9 / factor);
            let process = ArrivalProcess::Bursty {
                qps,
                burst_factor: factor,
                burst_fraction: fraction,
                seed,
            };
            let (quiet, burst) = process.rate_bounds().expect("open-loop");
            prop_assert!(quiet > 0.0 && quiet < qps && qps < burst);

            // Long-run mean: inside the envelope with finite-sample
            // slack (the trace spans ~20 burst/quiet cycles at n=4000,
            // so the mean cannot hug either extreme).
            let n = 4_000usize;
            let t = ArrivalTrace::generate(process, n);
            let measured = t.measured_offered_qps();
            prop_assert!(
                measured > quiet * 0.5 && measured < burst * 1.5,
                "measured {measured} outside envelope [{quiet}, {burst}]"
            );
            // A trace ending mid-burst can skew the finite-sample mean
            // well above qps, so this band is deliberately loose — the
            // envelope bound above is the sharp check.
            prop_assert!(
                measured > qps / 2.5 && measured < qps * 2.5,
                "measured {measured} too far from long-run mean {qps}"
            );

            // State switching is visible: windowed rates spread across
            // the envelope. One generator cycle spans ~200 arrivals, so
            // 100-arrival windows sample both states; the max windowed
            // rate must clearly exceed the min (no switching would make
            // them equal up to Poisson noise).
            let w = 100usize;
            let mut rates = Vec::new();
            for chunk in t.times_ns.chunks_exact(w) {
                let span = (chunk[w - 1] - chunk[0]) as f64;
                prop_assert!(span > 0.0);
                rates.push((w - 1) as f64 * NS_PER_SEC / span);
            }
            let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = rates.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(
                hi > lo * 1.5,
                "windowed rates never spread ({lo}..{hi}): MMPP is not switching"
            );
            // And the windows never sustain a rate wildly outside the
            // envelope (3x slack absorbs window-level Poisson noise).
            prop_assert!(
                hi < burst * 3.0 && lo > quiet / 3.0,
                "windowed rates ({lo}..{hi}) escape the envelope [{quiet}, {burst}]"
            );
            Ok(())
        },
    );
}

#[test]
fn poisson_envelope_is_flat_and_closed_loop_has_none() {
    let p = ArrivalProcess::poisson(5_000.0, 3);
    assert_eq!(p.rate_bounds(), Some((5_000.0, 5_000.0)));
    assert_eq!(ArrivalProcess::ClosedLoop.rate_bounds(), None);
    // Poisson stamping obeys the same strict-monotonicity contract,
    // even at rates where sub-ns gaps are common.
    let t = ArrivalTrace::generate(ArrivalProcess::poisson(800_000_000.0, 9), 4_000);
    assert!(t.times_ns[0] > 0);
    assert!(t.times_ns.windows(2).all(|w| w[0] < w[1]));
}
