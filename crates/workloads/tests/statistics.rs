//! Statistical integration tests for the workload generator: the
//! synthesized traces must actually carry the properties the paper's
//! algorithms exploit.

use workloads::{DatasetSpec, FreqProfile, TraceConfig, Workload, ZipfSampler};

fn chi_square_uniformity(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    let expect = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| (c as f64 - expect).powi(2) / expect)
        .sum()
}

#[test]
fn zipf_theta_zero_passes_a_coarse_uniformity_check() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let z = ZipfSampler::new(64, 0.0);
    let mut rng = StdRng::seed_from_u64(11);
    let mut counts = vec![0u64; 64];
    for _ in 0..64_000 {
        counts[z.sample(&mut rng) as usize] += 1;
    }
    // 63 degrees of freedom; the 99.9% quantile is ~103. Allow margin.
    let chi2 = chi_square_uniformity(&counts);
    assert!(chi2 < 120.0, "chi-square {chi2} too large for uniform");
}

#[test]
fn zipf_empirical_frequency_follows_rank_power_law() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let theta = 1.0;
    let z = ZipfSampler::new(1000, theta);
    let mut rng = StdRng::seed_from_u64(5);
    let mut counts = vec![0u64; 1000];
    for _ in 0..400_000 {
        counts[z.sample(&mut rng) as usize] += 1;
    }
    // Frequency ratio between ranks 1 and 10 should approximate 10^theta.
    let ratio = counts[0] as f64 / counts[9].max(1) as f64;
    assert!(
        (ratio / 10.0f64.powf(theta) - 1.0).abs() < 0.35,
        "rank-1/rank-10 ratio {ratio} too far from {}",
        10.0f64.powf(theta)
    );
}

#[test]
fn paper_six_traces_reproduce_their_reduction_targets() {
    for spec in DatasetSpec::paper_six() {
        let scaled = spec.scaled_down(2000);
        let w = Workload::generate(
            &scaled,
            TraceConfig {
                num_batches: 3,
                ..TraceConfig::default()
            },
        );
        let measured = w.measured_avg_reduction();
        assert!(
            (measured - spec.avg_reduction).abs() < spec.avg_reduction * 0.15,
            "{}: measured {measured} vs spec {}",
            spec.short,
            spec.avg_reduction
        );
    }
}

#[test]
fn hotness_classes_order_their_skew() {
    let skew_of = |spec: &DatasetSpec| {
        let scaled = spec.scaled_down(2000);
        let w = Workload::generate(
            &scaled,
            TraceConfig {
                num_batches: 4,
                ..TraceConfig::default()
            },
        );
        FreqProfile::from_inputs(scaled.num_items, w.table_inputs(0)).block_skew(8)
    };
    let low = skew_of(&DatasetSpec::amazon_clothes());
    let high = skew_of(&DatasetSpec::goodreads());
    assert!(
        high > low * 1.5,
        "high-hot skew {high} should clearly exceed low-hot {low}"
    );
    assert!(
        high > 8.0,
        "high-hot skew {high} should be strong even at test scale"
    );
}

#[test]
fn different_tables_get_independent_draws() {
    let spec = DatasetSpec::movie().scaled_down(2000);
    let w = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            num_batches: 1,
            ..TraceConfig::default()
        },
    );
    let b = &w.batches[0];
    assert_ne!(
        b.sparse[0].indices, b.sparse[1].indices,
        "tables must not receive identical index streams"
    );
}

#[test]
fn seeds_change_traces_but_specs_do_not() {
    let spec = DatasetSpec::twitch().scaled_down(2000);
    let mk = |seed| {
        Workload::generate(
            &spec,
            TraceConfig {
                num_batches: 1,
                seed,
                ..TraceConfig::default()
            },
        )
    };
    let a = mk(1);
    let b = mk(2);
    assert_ne!(a.batches, b.batches);
    assert_eq!(a.spec, b.spec);
}

#[test]
fn save_load_round_trip_through_a_file() {
    let spec = DatasetSpec::amazon_home().scaled_down(5000);
    let w = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            num_batches: 2,
            ..TraceConfig::default()
        },
    );
    let dir = std::env::temp_dir().join("updlrm-io-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.upwl");
    {
        let mut f = std::fs::File::create(&path).expect("create");
        w.save(&mut f).expect("save");
    }
    let mut f = std::fs::File::open(&path).expect("open");
    let loaded = Workload::load(&mut f).expect("load");
    assert_eq!(loaded.batches, w.batches);
    std::fs::remove_file(&path).ok();
}
