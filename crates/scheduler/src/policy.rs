//! The clock-agnostic batch-forming core shared by the modeled-time
//! event loop ([`crate::Scheduler`]) and the wall-clock runtime (the
//! `runtime` crate).
//!
//! A [`BatchPolicy`] owns the admission queue and answers two
//! questions, both in plain integer nanoseconds with no opinion about
//! *whose* nanoseconds they are:
//!
//! 1. [`BatchPolicy::admit`] — what happens to an arrival given the
//!    queue state and the configured [`OverloadPolicy`];
//! 2. [`BatchPolicy::launch_at`] — the earliest instant a batch may
//!    launch given `now`, the engine's availability and whether the
//!    arrival stream has drained, plus *why* it launches (the
//!    size / deadline / drain [`SchedTrigger`] attribution, decided by
//!    exact integer comparison — no float ulp can flip it).
//!
//! The discrete-event scheduler feeds it modeled timestamps and jumps
//! its clock to the returned instants; the wall-clock batcher feeds it
//! (possibly time-scaled) monotonic-clock readings and sleeps until
//! them. Both form byte-identical batches for the same admission
//! sequence because every decision lives here, not in the drivers.

use std::collections::VecDeque;

use updlrm_core::{Result, SchedTrigger};

use crate::{OverloadPolicy, SchedConfig};

/// What [`BatchPolicy::admit`] did with an arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The arrival entered the queue; `depth` is the queue length just
    /// after admission.
    Admitted {
        /// Queue depth right after this admission.
        depth: usize,
    },
    /// The queue was full under [`OverloadPolicy::ShedOldest`]: the
    /// oldest queued request was evicted (and never completes) to make
    /// room, and the arrival entered the queue.
    AdmittedAfterShed {
        /// Queue depth right after this admission.
        depth: usize,
        /// Id of the evicted request.
        evicted: u32,
    },
    /// The queue was full under [`OverloadPolicy::RejectNew`]: the
    /// arrival was dropped on the floor.
    Rejected,
    /// The queue was full under [`OverloadPolicy::Block`]: the arrival
    /// stays at the door, nothing was consumed. The caller must
    /// re-offer it after the next launch frees a slot.
    Blocked,
}

/// The earliest legal launch instant and its trigger attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchPlan {
    /// Instant (integer ns on the caller's clock) the batch launches.
    pub at_ns: u64,
    /// Why the batch closes. Priority on exact-tie: size beats
    /// deadline beats drain.
    pub trigger: SchedTrigger,
}

/// The batch-forming core: admission queue plus launch-trigger logic,
/// clock-agnostic (see the module docs).
#[derive(Debug)]
pub struct BatchPolicy {
    cfg: SchedConfig,
    /// Admitted requests: (id, arrival ns), FIFO.
    queue: VecDeque<(u32, u64)>,
}

impl BatchPolicy {
    /// Creates a policy, validating and preallocating for `cfg`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `cfg` fails
    /// [`SchedConfig::validate`].
    pub fn new(cfg: SchedConfig) -> Result<BatchPolicy> {
        cfg.validate()?;
        Ok(BatchPolicy {
            cfg,
            queue: VecDeque::with_capacity(cfg.queue_cap),
        })
    }

    /// The configuration this policy applies.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Queued requests right now.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when the queue is at `queue_cap`.
    pub fn is_full(&self) -> bool {
        self.queue.len() == self.cfg.queue_cap
    }

    /// Arrival time of the oldest queued request, if any.
    pub fn head_arrival_ns(&self) -> Option<u64> {
        self.queue.front().map(|&(_, at)| at)
    }

    /// Empties the queue (a fresh run).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Offers arrival `(id, at_ns)` to the queue under the configured
    /// [`OverloadPolicy`]. See [`AdmitOutcome`] for what each return
    /// means; only [`AdmitOutcome::Blocked`] leaves the arrival
    /// unconsumed.
    pub fn admit(&mut self, id: u32, at_ns: u64) -> AdmitOutcome {
        if self.is_full() {
            match self.cfg.policy {
                OverloadPolicy::Block => return AdmitOutcome::Blocked,
                OverloadPolicy::RejectNew => return AdmitOutcome::Rejected,
                OverloadPolicy::ShedOldest => {
                    let (evicted, _) = self.queue.pop_front().expect("full queue is nonempty");
                    self.queue.push_back((id, at_ns));
                    return AdmitOutcome::AdmittedAfterShed {
                        depth: self.queue.len(),
                        evicted,
                    };
                }
            }
        }
        self.queue.push_back((id, at_ns));
        AdmitOutcome::Admitted {
            depth: self.queue.len(),
        }
    }

    /// The earliest instant the queued work may launch, or `None` when
    /// the queue is empty (nothing to launch). A launch can never
    /// precede `now_ns` (events already applied) or `engine_free_ns`
    /// (the server is busy until then); `drained` means no further
    /// arrival can ever join the queue, enabling the final flush.
    ///
    /// The trigger attribution ties are broken by **exact integer
    /// equality** — size beats deadline beats drain.
    pub fn launch_at(&self, now_ns: u64, engine_free_ns: u64, drained: bool) -> Option<LaunchPlan> {
        let head = self.head_arrival_ns()?;
        let floor = engine_free_ns.max(now_ns);
        // The deadline candidate always exists for a nonempty queue;
        // saturate so a huge max_wait_ns cannot wrap modeled time.
        let t_deadline = head.saturating_add(self.cfg.max_wait_ns).max(floor);
        let t_size = (self.queue.len() >= self.cfg.max_batch_size).then_some(floor);
        let t_drain = drained.then_some(floor);
        let at_ns = t_size
            .unwrap_or(u64::MAX)
            .min(t_deadline)
            .min(t_drain.unwrap_or(u64::MAX));
        let trigger = if t_size == Some(at_ns) {
            SchedTrigger::Size
        } else if t_deadline == at_ns {
            SchedTrigger::Deadline
        } else {
            SchedTrigger::Drain
        };
        Some(LaunchPlan { at_ns, trigger })
    }

    /// Pops up to `max_batch_size` requests into `ids` (cleared first,
    /// FIFO order) and returns the newest popped arrival time — the
    /// caller's launch-ordering invariant is `newest <= launch instant`.
    /// Returns `None` when nothing is queued.
    pub fn take_batch(&mut self, ids: &mut Vec<u32>) -> Option<u64> {
        if self.queue.is_empty() {
            return None;
        }
        ids.clear();
        let k = self.queue.len().min(self.cfg.max_batch_size);
        let mut newest = 0u64;
        for _ in 0..k {
            let (id, at) = self.queue.pop_front().expect("len checked");
            ids.push(id);
            // FIFO admission order is not always arrival order under
            // Block (a door-held arrival enters late), so track max.
            newest = newest.max(at);
        }
        Some(newest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(cfg: SchedConfig) -> BatchPolicy {
        BatchPolicy::new(cfg).expect("valid cfg")
    }

    #[test]
    fn admit_applies_each_overload_policy() {
        let cfg = SchedConfig {
            queue_cap: 2,
            ..SchedConfig::default()
        };
        for (pol, expect_full) in [
            (OverloadPolicy::Block, AdmitOutcome::Blocked),
            (OverloadPolicy::RejectNew, AdmitOutcome::Rejected),
            (
                OverloadPolicy::ShedOldest,
                AdmitOutcome::AdmittedAfterShed {
                    depth: 2,
                    evicted: 0,
                },
            ),
        ] {
            let mut p = policy(SchedConfig { policy: pol, ..cfg });
            assert_eq!(p.admit(0, 10), AdmitOutcome::Admitted { depth: 1 });
            assert_eq!(p.admit(1, 20), AdmitOutcome::Admitted { depth: 2 });
            assert!(p.is_full());
            assert_eq!(p.admit(2, 30), expect_full, "{pol:?}");
        }
    }

    #[test]
    fn launch_trigger_tie_breaks_are_exact_integer_priority() {
        // A full queue whose head deadline lands exactly on the floor:
        // size must win the tie.
        let mut p = policy(SchedConfig {
            max_batch_size: 2,
            max_wait_ns: 100,
            queue_cap: 4,
            policy: OverloadPolicy::ShedOldest,
        });
        p.admit(0, 0);
        p.admit(1, 0);
        let plan = p.launch_at(100, 100, true).unwrap();
        assert_eq!(plan.at_ns, 100);
        assert_eq!(plan.trigger, SchedTrigger::Size);

        // Below the size threshold, deadline beats drain on the tie.
        let mut p = policy(SchedConfig {
            max_batch_size: 8,
            max_wait_ns: 100,
            queue_cap: 4,
            policy: OverloadPolicy::ShedOldest,
        });
        p.admit(0, 0);
        let plan = p.launch_at(100, 0, true).unwrap();
        assert_eq!(plan.at_ns, 100);
        assert_eq!(plan.trigger, SchedTrigger::Deadline);

        // Drain only wins when it is strictly earliest.
        let plan = p.launch_at(0, 0, true).unwrap();
        assert_eq!(plan.at_ns, 0);
        assert_eq!(plan.trigger, SchedTrigger::Drain);
    }

    #[test]
    fn launch_never_precedes_now_or_engine_free() {
        let mut p = policy(SchedConfig::default());
        p.admit(0, 5);
        let plan = p.launch_at(1_000_000, 2_000_000, true).unwrap();
        assert_eq!(plan.at_ns, 2_000_000);
        assert!(p.launch_at(0, 0, false).unwrap().at_ns >= 5);
    }

    #[test]
    fn deadline_saturates_instead_of_wrapping() {
        let mut p = policy(SchedConfig {
            max_wait_ns: u64::MAX,
            ..SchedConfig::default()
        });
        p.admit(0, u64::MAX - 3);
        let plan = p.launch_at(0, 0, false).unwrap();
        assert_eq!(plan.at_ns, u64::MAX);
    }

    #[test]
    fn take_batch_pops_fifo_and_reports_newest_arrival() {
        let mut p = policy(SchedConfig {
            max_batch_size: 3,
            ..SchedConfig::default()
        });
        for (id, at) in [(7u32, 10u64), (8, 40), (9, 20), (10, 50)] {
            p.admit(id, at);
        }
        let mut ids = Vec::new();
        let newest = p.take_batch(&mut ids).unwrap();
        assert_eq!(ids, vec![7, 8, 9]);
        assert_eq!(newest, 40, "newest is the max, not the last");
        assert_eq!(p.len(), 1);
        let newest = p.take_batch(&mut ids).unwrap();
        assert_eq!(ids, vec![10]);
        assert_eq!(newest, 50);
        assert!(p.take_batch(&mut ids).is_none());
    }
}
