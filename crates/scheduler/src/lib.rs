//! # scheduler — open-loop serving front-end on modeled time
//!
//! The engine (`updlrm_core`) is closed-loop: callers hand it
//! pre-formed batches and it reports how long the pipeline took. This
//! crate adds the missing front half of a serving system — *arrivals*,
//! *queueing* and *batch formation* — as a deterministic discrete-event
//! simulation that runs entirely on modeled time:
//!
//! * queries arrive according to the workload's
//!   [`ArrivalTrace`](workloads::ArrivalTrace) (UPWL v2);
//! * a bounded admission queue absorbs them, applying an
//!   [`OverloadPolicy`] when full;
//! * a deadline-aware dynamic batcher closes a batch when it reaches
//!   `max_batch_size` **or** when the oldest queued query has waited
//!   `max_wait_ns` (plus a final drain flush at end of trace);
//! * each formed batch runs through
//!   [`UpdlrmEngine::serve_stream`](updlrm_core::UpdlrmEngine::serve_stream),
//!   whose modeled wall becomes the engine-busy interval of the event
//!   loop;
//! * per-request latency = queue wait + batch wait + modeled pipeline
//!   time, i.e. `batch completion − arrival`.
//!
//! No wall clock enters any computation, so a fixed seed and
//! configuration produce bit-identical [`SchedReport`]s, pooled
//! embeddings and telemetry snapshots across runs and machines — the
//! same determinism contract the rest of the repo upholds (DESIGN.md
//! §4.7). Steady-state runs are also allocation-free after warm-up:
//! the queue, the assembly scratch and the latency buffer are
//! preallocated and recycled (`tests/alloc_tests.rs`).
//!
//! All event times are **integer nanoseconds** (`u64`) end to end: the
//! loop never does f64 arithmetic on arrival or launch instants, so ns
//! precision survives arbitrarily long modeled traces (f64 starts
//! dropping nanoseconds past 2^53 ns ≈ 104 days) and the
//! size/deadline/drain trigger attribution is an exact integer
//! comparison rather than an ulp-sensitive float equality. f64 appears
//! only in [`SchedReport`]'s derived statistics. The batch-forming
//! decisions themselves live in the clock-agnostic
//! [`BatchPolicy`](policy::BatchPolicy), which the wall-clock `runtime`
//! crate drives with real timestamps to form byte-identical batches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod policy;

use dlrm_model::{Matrix, QueryBatch};
use updlrm_core::engine::EmbeddingBreakdown;
use updlrm_core::{percentile, BatchServer, CoreError, MetricsRegistry, Result, SchedTrigger};
use workloads::{Workload, NS_PER_SEC};

pub use policy::{AdmitOutcome, BatchPolicy, LaunchPlan};

/// Converts a modeled f64 service time (ns) to the integer-ns clock.
///
/// `ceil` keeps the single-server invariant conservative: the engine is
/// never marked free before the modeled pipeline has fully drained, and
/// a positive service time always advances the clock by at least 1 ns.
pub fn service_ns_to_u64(service_ns: f64) -> u64 {
    debug_assert!(
        service_ns.is_finite() && service_ns >= 0.0,
        "modeled service time must be finite and nonnegative, got {service_ns}"
    );
    service_ns.max(0.0).ceil() as u64
}

/// What to do with a new arrival when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Hold the arrival at the door until a slot frees (its latency
    /// keeps accruing from the original arrival time). Nothing is
    /// dropped: every request eventually completes.
    Block,
    /// Evict the oldest queued request to make room (the evicted
    /// request is counted shed and never completes). Keeps the queue
    /// full of the freshest traffic — the classic tail-latency play.
    #[default]
    ShedOldest,
    /// Drop the new arrival on the floor (counted rejected).
    RejectNew,
}

impl OverloadPolicy {
    /// CLI spelling of the policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::ShedOldest => "shed-oldest",
            OverloadPolicy::RejectNew => "reject-new",
        }
    }
}

impl std::str::FromStr for OverloadPolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "block" => Ok(OverloadPolicy::Block),
            "shed-oldest" => Ok(OverloadPolicy::ShedOldest),
            "reject-new" => Ok(OverloadPolicy::RejectNew),
            other => Err(format!(
                "unknown overload policy '{other}' (expected 'block', 'shed-oldest' or 'reject-new')"
            )),
        }
    }
}

impl std::fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Batcher and admission-queue parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Close a batch as soon as this many queries are queued. Must not
    /// exceed twice the engine's configured `batch_size` (the staged
    /// MRAM capacity `route_batch` enforces).
    pub max_batch_size: usize,
    /// Close a batch once its oldest query has waited this long (ns of
    /// modeled time).
    pub max_wait_ns: u64,
    /// Admission-queue capacity; arrivals beyond it hit the
    /// [`OverloadPolicy`].
    pub queue_cap: usize,
    /// What happens to arrivals when the queue is full.
    pub policy: OverloadPolicy,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            max_batch_size: 64,
            max_wait_ns: 200_000, // 200 us
            queue_cap: 256,
            policy: OverloadPolicy::default(),
        }
    }
}

impl SchedConfig {
    /// Checks the parameters for internal consistency.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on a zero batch size, zero wait or
    /// zero queue capacity.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch_size == 0 {
            return Err(CoreError::InvalidConfig(
                "max_batch_size must be >= 1".into(),
            ));
        }
        if self.max_wait_ns == 0 {
            return Err(CoreError::InvalidConfig(
                "max_wait_ns must be >= 1 (0 would close every batch instantly)".into(),
            ));
        }
        if self.queue_cap == 0 {
            return Err(CoreError::InvalidConfig(
                "queue_cap must be >= 1 (0 admits nothing)".into(),
            ));
        }
        Ok(())
    }
}

/// Aggregate statistics of one [`Scheduler::run`].
///
/// Every field is a count or a modeled time — two runs with the same
/// workload and configuration produce bit-identical reports.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchedReport {
    /// Queries in the arrival trace.
    pub requests: u64,
    /// Queries admitted into the queue (includes later-shed ones).
    pub admitted: u64,
    /// Queries that ran through the engine and completed.
    pub completed: u64,
    /// Queries evicted by [`OverloadPolicy::ShedOldest`].
    pub shed: u64,
    /// Queries dropped by [`OverloadPolicy::RejectNew`].
    pub rejected: u64,
    /// Queries that found the queue full under
    /// [`OverloadPolicy::Block`] and waited at the door.
    pub blocked: u64,
    /// Batches formed.
    pub batches: u64,
    /// Batches closed because the queue reached `max_batch_size`.
    pub trigger_size: u64,
    /// Batches closed by the oldest query's wait deadline.
    pub trigger_deadline: u64,
    /// Batches closed by the end-of-trace flush.
    pub trigger_drain: u64,
    /// Deepest the queue ever got.
    pub queue_high_water: u64,
    /// Mean formed-batch size.
    pub mean_batch_size: f64,
    /// Offered load: requests per second of modeled time over the
    /// arrival span.
    pub offered_qps: f64,
    /// Achieved goodput: completed requests per second of modeled time
    /// over the makespan.
    pub achieved_qps: f64,
    /// Modeled time from the first arrival to the last batch's drain
    /// (ns).
    pub makespan_ns: f64,
    /// Mean completed-request latency (arrival → batch drain), ns.
    pub mean_latency_ns: f64,
    /// Median completed-request latency, nearest-rank, ns.
    pub p50_latency_ns: f64,
    /// 95th-percentile completed-request latency, ns.
    pub p95_latency_ns: f64,
    /// 99th-percentile completed-request latency, ns.
    pub p99_latency_ns: f64,
    /// Worst completed-request latency, ns.
    pub max_latency_ns: f64,
}

/// Copies query `ids` (global batch-major indices into `workload`'s
/// pre-formed batches) into `out` as one CSR batch, reusing `out`'s
/// buffers. Allocation-free once `out`'s buffers have warmed to the
/// largest assembled shape. Shared by the scheduler's hot loop and the
/// differential tests so both sides form bit-identical batches.
///
/// # Panics
///
/// Panics if an id is out of range or `out.sparse` was not sized to
/// the workload's table count (callers size it via
/// [`Scheduler::new`]'s scratch or their own `QueryBatch`).
pub fn assemble_into(workload: &Workload, ids: &[u32], out: &mut QueryBatch) {
    let bs = workload.config.batch_size;
    let nd = workload.config.num_dense;
    out.num_dense = nd;
    out.dense.clear();
    for &id in ids {
        let (bi, si) = (id as usize / bs, id as usize % bs);
        out.dense
            .extend_from_slice(&workload.batches[bi].dense[si * nd..(si + 1) * nd]);
    }
    assert_eq!(out.sparse.len(), workload.config.num_tables);
    for (t, sp) in out.sparse.iter_mut().enumerate() {
        sp.indices.clear();
        sp.offsets.clear();
        sp.offsets.push(0);
        for &id in ids {
            let (bi, si) = (id as usize / bs, id as usize % bs);
            sp.indices
                .extend_from_slice(workload.batches[bi].sparse[t].sample(si));
            sp.offsets.push(sp.indices.len());
        }
    }
}

/// The discrete-event scheduler. Owns all steady-state scratch (queue,
/// assembly batch, latency buffer, histogram), so one `Scheduler` can
/// drive many runs without allocating after the first.
#[derive(Debug)]
pub struct Scheduler {
    /// The clock-agnostic batch-forming core (admission queue, launch
    /// triggers) shared with the wall-clock runtime.
    policy: BatchPolicy,
    /// Ids popped for the batch being formed.
    formed_ids: Vec<u32>,
    /// The assembled CSR batch handed to the engine.
    batch: QueryBatch,
    /// Completed-request latencies, integer ns, sorted at report time.
    latencies: Vec<u64>,
    /// f64 view of the sorted latencies for the quantile statistics.
    lat_stats: Vec<f64>,
    /// `hist[k]` = batches formed with exactly `k` queries.
    hist: Vec<u64>,
}

impl Scheduler {
    /// Creates a scheduler, preallocating the admission queue and the
    /// batch-size histogram.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if `cfg` fails
    /// [`SchedConfig::validate`].
    pub fn new(cfg: SchedConfig) -> Result<Scheduler> {
        Ok(Scheduler {
            policy: BatchPolicy::new(cfg)?,
            formed_ids: Vec::with_capacity(cfg.max_batch_size),
            batch: QueryBatch::default(),
            latencies: Vec::new(),
            lat_stats: Vec::new(),
            hist: vec![0; cfg.max_batch_size + 1],
        })
    }

    /// The configuration this scheduler runs.
    pub fn config(&self) -> &SchedConfig {
        self.policy.config()
    }

    /// Batch-size histogram of the last run: `histogram()[k]` is the
    /// number of batches formed with exactly `k` queries
    /// (`0 <= k <= max_batch_size`).
    pub fn batch_histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Replays `workload`'s arrival trace through the event loop,
    /// forming batches and running each through `engine.serve_stream`.
    /// `sink(batch_seq, query_ids, pooled, breakdown)` fires once per
    /// formed batch in launch order, lending the pooled embeddings
    /// exactly as `serve_stream` does.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the workload has no arrival
    /// trace (closed-loop) or the engine cannot take batches of
    /// `max_batch_size`; engine errors propagate.
    pub fn run<E, F>(
        &mut self,
        engine: &mut E,
        workload: &Workload,
        mut sink: F,
    ) -> Result<SchedReport>
    where
        E: BatchServer,
        F: FnMut(usize, &[u32], &[Matrix], &EmbeddingBreakdown),
    {
        let times = &workload.arrivals.times_ns;
        let n = times.len();
        if n == 0 {
            return Err(CoreError::InvalidConfig(
                "workload has no arrival trace (closed-loop); stamp arrivals first".into(),
            ));
        }
        let cfg = *self.policy.config();
        if cfg.max_batch_size > engine.staged_batch_capacity() {
            return Err(CoreError::InvalidConfig(format!(
                "max_batch_size {} exceeds the engine's staged capacity {} (2x its batch_size)",
                cfg.max_batch_size,
                engine.staged_batch_capacity()
            )));
        }
        // Size the assembly scratch to the workload's table count once;
        // reuse thereafter.
        if self.batch.sparse.len() != workload.config.num_tables {
            self.batch.sparse = vec![Default::default(); workload.config.num_tables];
        }
        self.policy.clear();
        self.latencies.clear();
        self.latencies.reserve(n);
        self.lat_stats.clear();
        self.lat_stats.reserve(n);
        self.hist.fill(0);

        let mut report = SchedReport {
            requests: n as u64,
            admitted: 0,
            completed: 0,
            shed: 0,
            rejected: 0,
            blocked: 0,
            batches: 0,
            trigger_size: 0,
            trigger_deadline: 0,
            trigger_drain: 0,
            queue_high_water: 0,
            mean_batch_size: 0.0,
            offered_qps: workload.arrivals.measured_offered_qps(),
            achieved_qps: 0.0,
            makespan_ns: 0.0,
            mean_latency_ns: 0.0,
            p50_latency_ns: 0.0,
            p95_latency_ns: 0.0,
            p99_latency_ns: 0.0,
            max_latency_ns: 0.0,
        };

        let mut next = 0usize; // next arrival not yet admitted or dropped
        let mut now = 0u64;
        let mut engine_free = 0u64;
        let mut seq = 0usize; // formed-batch sequence number
                              // Under Block, a full queue latches the door shut until the next
                              // launch frees slots (re-attempting immediately would spin).
        let mut door_blocked = false;
        // First arrival index already counted as blocked, so a query
        // waiting at the door across several loop turns counts once.
        let mut blocked_counted = 0usize;

        loop {
            if self.policy.is_empty() {
                if next >= n {
                    break;
                }
                // Jump the clock to the next arrival; an empty queue
                // always has room (queue_cap >= 1) so the door reopens.
                now = now.max(times[next]);
                door_blocked = false;
                self.admit(
                    engine.metrics_mut(),
                    times,
                    &mut next,
                    &mut report,
                    &mut door_blocked,
                );
                continue;
            }

            // Earliest legal launch instant given the current queue —
            // never before `now` (events already applied) or
            // `engine_free` (single modeled server).
            let plan = self
                .policy
                .launch_at(now, engine_free, next >= n)
                .expect("queue is nonempty");

            // Arrivals at or before the launch instant are admitted
            // first — they may join this batch or change the trigger.
            if !door_blocked && next < n && times[next] <= plan.at_ns {
                now = now.max(times[next]);
                self.admit(
                    engine.metrics_mut(),
                    times,
                    &mut next,
                    &mut report,
                    &mut door_blocked,
                );
                if door_blocked && next >= blocked_counted {
                    report.blocked += 1;
                    blocked_counted = next + 1;
                    engine.metrics_mut().record_sched_block();
                }
                continue;
            }

            // Launch. The policy already attributed the trigger by
            // exact integer comparison (size beats deadline beats
            // drain on ties).
            now = plan.at_ns;
            // Between-batch tick: lets the engine's online replanner
            // flip a completed migration (or begin one) at the launch
            // instant, never mid-pipeline — serve_stream below runs a
            // single batch, so placement is stable within it.
            engine.on_tick(now)?;
            let newest = self
                .policy
                .take_batch(&mut self.formed_ids)
                .expect("queue is nonempty");
            let k = self.formed_ids.len();
            // Exact integer-ns invariant, enforced in release builds
            // too: every admitted arrival precedes (or coincides with)
            // the launch instant. The f64 loop needed a +1.0 ns slop
            // here to absorb ulp drift; integer time has none.
            if newest > now {
                return Err(CoreError::Invariant(format!(
                    "batch {seq} launches at {now} ns but contains an arrival \
                     admitted at {newest} ns"
                )));
            }
            let Scheduler {
                batch, formed_ids, ..
            } = &mut *self;
            assemble_into(workload, formed_ids, batch);
            let mut service_ns = 0.0f64;
            engine.serve_stream(std::slice::from_ref(&*batch), |_, pooled, bd| {
                service_ns = bd.total_ns();
                sink(seq, formed_ids, pooled, bd);
            })?;
            // Modeled time is monotone: `ceil` never lets the engine
            // free up before the pipeline drains (and `now` only grows).
            engine_free = now.saturating_add(service_ns_to_u64(service_ns));
            report.batches += 1;
            match plan.trigger {
                SchedTrigger::Size => report.trigger_size += 1,
                SchedTrigger::Deadline => report.trigger_deadline += 1,
                SchedTrigger::Drain => report.trigger_drain += 1,
            }
            self.hist[k] += 1;
            engine.metrics_mut().record_sched_batch(k, plan.trigger);
            for i in 0..k {
                // Latency from the original arrival to the batch drain;
                // arrival <= now <= engine_free, so this never wraps.
                self.latencies
                    .push(engine_free - times[self.formed_ids[i] as usize]);
            }
            report.completed += k as u64;
            seq += 1;
            door_blocked = false;
        }

        // Report statistics are the only place f64 touches event times.
        report.makespan_ns = engine_free as f64;
        report.achieved_qps = if engine_free > 0 {
            report.completed as f64 * NS_PER_SEC / engine_free as f64
        } else {
            0.0
        };
        report.mean_batch_size = if report.batches > 0 {
            report.completed as f64 / report.batches as f64
        } else {
            0.0
        };
        self.latencies.sort_unstable();
        self.lat_stats
            .extend(self.latencies.iter().map(|&l| l as f64));
        if let Some(&max) = self.latencies.last() {
            report.max_latency_ns = max as f64;
            report.mean_latency_ns = self.latencies.iter().map(|&l| l as u128).sum::<u128>() as f64
                / self.latencies.len() as f64;
        }
        report.p50_latency_ns = percentile(&self.lat_stats, 0.50);
        report.p95_latency_ns = percentile(&self.lat_stats, 0.95);
        report.p99_latency_ns = percentile(&self.lat_stats, 0.99);
        debug_assert!(report_is_finite(&report), "non-finite stat in {report:?}");
        Ok(report)
    }

    /// Admits arrival `*next` through the [`BatchPolicy`], folding the
    /// outcome into `report` and the engine's telemetry. Advances
    /// `*next` unless the policy is Block and the queue is full, in
    /// which case `*door_blocked` latches shut.
    fn admit(
        &mut self,
        metrics: &mut MetricsRegistry,
        times: &[u64],
        next: &mut usize,
        report: &mut SchedReport,
        door_blocked: &mut bool,
    ) {
        match self.policy.admit(*next as u32, times[*next]) {
            AdmitOutcome::Admitted { depth } => {
                report.admitted += 1;
                report.queue_high_water = report.queue_high_water.max(depth as u64);
                metrics.record_sched_admit(depth);
                *next += 1;
            }
            AdmitOutcome::AdmittedAfterShed { depth, .. } => {
                report.shed += 1;
                metrics.record_sched_shed();
                report.admitted += 1;
                report.queue_high_water = report.queue_high_water.max(depth as u64);
                metrics.record_sched_admit(depth);
                *next += 1;
            }
            AdmitOutcome::Rejected => {
                report.rejected += 1;
                metrics.record_sched_reject();
                *next += 1;
            }
            AdmitOutcome::Blocked => {
                // `next` stays put and is re-offered after the next
                // launch frees a slot.
                *door_blocked = true;
            }
        }
    }
}

/// True when every derived f64 statistic in `report` is finite — the
/// serialization contract (`--json` must parse back as typed numbers,
/// never `NaN`/`inf` strings), checked by `tests/report_finite.rs`.
pub fn report_is_finite(report: &SchedReport) -> bool {
    [
        report.mean_batch_size,
        report.offered_qps,
        report.achieved_qps,
        report.makespan_ns,
        report.mean_latency_ns,
        report.p50_latency_ns,
        report.p95_latency_ns,
        report.p99_latency_ns,
        report.max_latency_ns,
    ]
    .iter()
    .all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_model::EmbeddingTable;
    use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
    use workloads::{ArrivalProcess, DatasetSpec, TraceConfig};

    const DIM: usize = 32;

    fn setup(num_batches: usize, process: ArrivalProcess) -> (Vec<EmbeddingTable>, Workload) {
        let spec = DatasetSpec::goodreads().scaled_down(5000);
        let mut workload = Workload::generate(
            &spec,
            TraceConfig {
                num_tables: 2,
                num_batches,
                ..TraceConfig::default()
            },
        );
        workload.stamp_arrivals(process);
        let tables = (0..2)
            .map(|t| {
                EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap()
            })
            .collect();
        (tables, workload)
    }

    fn engine(tables: &[EmbeddingTable], workload: &Workload, max_batch: usize) -> UpdlrmEngine {
        let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform);
        let config = UpdlrmConfig {
            batch_size: max_batch,
            ..config
        };
        UpdlrmEngine::from_workload(config, tables, workload).unwrap()
    }

    /// A QPS high enough to saturate the modeled engine for this setup.
    const HOT_QPS: f64 = 50_000_000.0;
    /// A QPS low enough that every batch is deadline-triggered.
    const COLD_QPS: f64 = 1_000.0;

    #[test]
    fn rejects_bad_configs_and_closed_loop_workloads() {
        assert!(Scheduler::new(SchedConfig {
            max_batch_size: 0,
            ..SchedConfig::default()
        })
        .is_err());
        assert!(Scheduler::new(SchedConfig {
            max_wait_ns: 0,
            ..SchedConfig::default()
        })
        .is_err());
        assert!(Scheduler::new(SchedConfig {
            queue_cap: 0,
            ..SchedConfig::default()
        })
        .is_err());

        let (tables, mut workload) = setup(1, ArrivalProcess::poisson(COLD_QPS, 1));
        workload.arrivals = workloads::ArrivalTrace::closed_loop();
        let mut eng = engine(&tables, &workload, 64);
        let mut s = Scheduler::new(SchedConfig::default()).unwrap();
        let err = s.run(&mut eng, &workload, |_, _, _, _| {}).unwrap_err();
        assert!(err.to_string().contains("arrival"), "{err}");
    }

    #[test]
    fn two_runs_are_bit_identical() {
        let (tables, workload) = setup(3, ArrivalProcess::bursty(200_000.0, 5));
        let cfg = SchedConfig {
            max_batch_size: 32,
            max_wait_ns: 50_000,
            queue_cap: 64,
            policy: OverloadPolicy::ShedOldest,
        };
        let mut reports = Vec::new();
        let mut pooled_sums = Vec::new();
        for _ in 0..2 {
            let mut eng = engine(&tables, &workload, 32);
            let mut s = Scheduler::new(cfg).unwrap();
            let mut sum = 0.0f64;
            let r = s
                .run(&mut eng, &workload, |_, _, pooled, _| {
                    for m in pooled {
                        sum += m.as_slice().iter().map(|&v| v as f64).sum::<f64>();
                    }
                })
                .unwrap();
            reports.push(r);
            pooled_sums.push(sum);
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(pooled_sums[0].to_bits(), pooled_sums[1].to_bits());
    }

    #[test]
    fn low_load_forms_deadline_batches_and_completes_everything() {
        let (tables, workload) = setup(1, ArrivalProcess::poisson(COLD_QPS, 2));
        let mut eng = engine(&tables, &workload, 64);
        let mut s = Scheduler::new(SchedConfig::default()).unwrap();
        let r = s.run(&mut eng, &workload, |_, _, _, _| {}).unwrap();
        assert_eq!(r.completed, r.requests);
        assert_eq!(r.shed + r.rejected, 0);
        assert_eq!(r.trigger_size, 0, "1k qps never fills a 64-batch");
        assert!(r.trigger_deadline > 0);
        assert!(r.mean_batch_size < 8.0, "got {}", r.mean_batch_size);
        // Latency is bounded by wait deadline + service.
        assert!(r.p50_latency_ns < 1_000_000.0, "{}", r.p50_latency_ns);
        // Histogram mass equals batch count.
        let hist_total: u64 = s.batch_histogram().iter().sum();
        assert_eq!(hist_total, r.batches);
    }

    #[test]
    fn overload_sheds_rejects_or_blocks_per_policy() {
        let (tables, workload) = setup(3, ArrivalProcess::poisson(HOT_QPS, 3));
        let base = SchedConfig {
            max_batch_size: 32,
            max_wait_ns: 100_000,
            queue_cap: 48,
            policy: OverloadPolicy::ShedOldest,
        };

        let mut eng = engine(&tables, &workload, 32);
        let mut s = Scheduler::new(base).unwrap();
        let shed = s.run(&mut eng, &workload, |_, _, _, _| {}).unwrap();
        assert!(shed.shed > 0, "saturation must shed: {shed:?}");
        assert_eq!(shed.completed + shed.shed, shed.requests);
        assert_eq!(shed.rejected, 0);
        assert!(shed.trigger_size > 0);

        let mut eng = engine(&tables, &workload, 32);
        let mut s = Scheduler::new(SchedConfig {
            policy: OverloadPolicy::RejectNew,
            ..base
        })
        .unwrap();
        let rej = s.run(&mut eng, &workload, |_, _, _, _| {}).unwrap();
        assert!(rej.rejected > 0);
        assert_eq!(rej.completed + rej.rejected, rej.requests);
        assert_eq!(rej.shed, 0);

        let mut eng = engine(&tables, &workload, 32);
        let mut s = Scheduler::new(SchedConfig {
            policy: OverloadPolicy::Block,
            ..base
        })
        .unwrap();
        let blk = s.run(&mut eng, &workload, |_, _, _, _| {}).unwrap();
        assert_eq!(blk.completed, blk.requests, "block drops nothing");
        assert!(blk.blocked > 0, "saturation must block: {blk:?}");
        assert!(
            blk.max_latency_ns > shed.max_latency_ns,
            "blocking trades latency for completeness: {} vs {}",
            blk.max_latency_ns,
            shed.max_latency_ns
        );
    }

    #[test]
    fn queue_never_exceeds_cap_and_batches_never_exceed_max() {
        let (tables, workload) = setup(2, ArrivalProcess::bursty(HOT_QPS / 4.0, 9));
        let cfg = SchedConfig {
            max_batch_size: 16,
            max_wait_ns: 30_000,
            queue_cap: 24,
            policy: OverloadPolicy::ShedOldest,
        };
        let mut eng = engine(&tables, &workload, 16);
        let mut s = Scheduler::new(cfg).unwrap();
        let r = s
            .run(&mut eng, &workload, |_, ids, pooled, _| {
                assert!(!ids.is_empty() && ids.len() <= 16);
                assert_eq!(pooled[0].rows(), ids.len());
            })
            .unwrap();
        assert!(r.queue_high_water <= 24, "{}", r.queue_high_water);
        assert!(
            s.batch_histogram()[17..].iter().all(|&c| c == 0),
            "no batch above max_batch_size"
        );
    }

    #[test]
    fn policy_strings_round_trip() {
        for p in [
            OverloadPolicy::Block,
            OverloadPolicy::ShedOldest,
            OverloadPolicy::RejectNew,
        ] {
            let parsed: OverloadPolicy = p.as_str().parse().unwrap();
            assert_eq!(parsed, p);
            assert_eq!(format!("{p}"), p.as_str());
        }
        assert!("drop-all".parse::<OverloadPolicy>().is_err());
    }

    #[test]
    fn replanner_migrates_under_hot_set_rotation() {
        // A UPWL v3 rotating-hot-set trace driven through the event
        // loop: the between-batch tick must trigger replans, complete
        // migrations, and leave every pooled embedding bit-identical
        // to the static engine's (integer tables make sums exact).
        use updlrm_core::ReplanPolicy;
        use workloads::{DriftSchedule, HotSetRotation};

        let spec = DatasetSpec::goodreads().scaled_down(5000);
        let drift = DriftSchedule {
            rotation: Some(HotSetRotation {
                num_sets: 4,
                set_size: 64,
                period_ns: 2_000_000,
                hot_fraction: 0.8,
            }),
            spikes: Vec::new(),
            diurnal: None,
        };
        let workload = Workload::generate_drifting(
            &spec,
            TraceConfig {
                num_tables: 2,
                num_batches: 10,
                ..TraceConfig::default()
            },
            drift,
            // Cold enough that the engine is always free at each batch
            // deadline: batch formation is then a pure function of the
            // arrival trace, identical across both engines, so the
            // pooled bit streams are comparable one-to-one.
            ArrivalProcess::poisson(COLD_QPS, 11),
        );
        let tables: Vec<EmbeddingTable> = (0..2)
            .map(|t| {
                EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap()
            })
            .collect();
        let cfg = SchedConfig {
            max_batch_size: 32,
            max_wait_ns: 100_000,
            queue_cap: 256,
            policy: OverloadPolicy::Block,
        };
        let run = |replan: ReplanPolicy| {
            let config = UpdlrmConfig {
                batch_size: 32,
                telemetry: true,
                replan,
                ..UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform)
            };
            let mut eng = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
            let mut bits: Vec<u32> = Vec::new();
            let mut s = Scheduler::new(cfg).unwrap();
            let report = s
                .run(&mut eng, &workload, |_, _, pooled, _| {
                    for m in pooled {
                        bits.extend(m.as_slice().iter().map(|v| v.to_bits()));
                    }
                })
                .unwrap();
            (bits, report, eng.metrics_snapshot().drift)
        };

        let (_, _, static_drift) = run(ReplanPolicy::Off);
        let (bits_a, report_a, drift) = run(ReplanPolicy::Periodic { every_batches: 8 });
        let (bits_b, report_b, drift_b) = run(ReplanPolicy::Periodic { every_batches: 8 });

        // The static control never touches the drift machinery.
        assert_eq!(static_drift, Default::default());
        // The replanner really ran: replans triggered, at least one
        // migration flipped, at a recorded modeled instant.
        assert!(drift.replans_triggered >= 1, "{drift:?}");
        assert!(drift.migrations_completed >= 1, "{drift:?}");
        assert!(drift.last_flip_ns > 0);
        // And the whole run — batch formation, pooled embeddings,
        // drift counters — is bit-identical across repeats even with
        // migrations interleaved into the event loop.
        assert_eq!(report_a, report_b);
        assert_eq!(bits_a, bits_b);
        assert_eq!(drift, drift_b);
    }
}
