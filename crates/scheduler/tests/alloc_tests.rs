//! Extends the repo's zero-allocation invariant to the scheduler: a
//! steady-state `Scheduler::run` sweep — event loop, admission queue,
//! batch assembly, engine pipeline and telemetry recording — performs
//! zero heap operations after warm-up. A counting `#[global_allocator]`
//! observes every alloc/realloc in this test binary.
//!
//! This file intentionally holds a single test: the allocation counter
//! is process-global, so concurrent tests would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dlrm_model::EmbeddingTable;
use scheduler::{OverloadPolicy, SchedConfig, Scheduler};
use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use workloads::{ArrivalProcess, DatasetSpec, TraceConfig, Workload};

struct CountingAlloc;

static ALLOC_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn setup(telemetry: bool) -> (UpdlrmEngine, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let num_tables = 2;
    let mut workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables,
            num_batches: 3,
            ..TraceConfig::default()
        },
    );
    // Bursty saturating-ish load: the batcher forms both full
    // size-triggered batches and partial deadline-triggered ones, so
    // the engine sees *varying* batch sizes — the case that used to
    // defeat shape-matched matrix-pool reuse.
    workload.stamp_arrivals(ArrivalProcess::bursty(2_000_000.0, 21));
    let tables: Vec<EmbeddingTable> = (0..num_tables)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, 32, 3, t as u64).unwrap())
        .collect();
    let mut config = UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware)
        // Serial fleet execution: the parallel path spawns threads
        // (which allocate); steady-state serving is the 1-thread path.
        .with_host_threads(1);
    config.telemetry = telemetry;
    config.batch_size = 32;
    let engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
    (engine, workload)
}

#[test]
fn steady_state_scheduler_run_is_allocation_free() {
    for (telemetry, policy) in [
        (false, OverloadPolicy::ShedOldest),
        (true, OverloadPolicy::ShedOldest),
        (true, OverloadPolicy::Block),
    ] {
        let (mut engine, workload) = setup(telemetry);
        let mut sched = Scheduler::new(SchedConfig {
            max_batch_size: 32,
            max_wait_ns: 100_000,
            queue_cap: 48,
            policy,
        })
        .unwrap();

        // Warm-up: two full runs grow every buffer (queue, assembly
        // CSR, latency vector, histogram, the engine's staging and
        // recycled matrix pool) to its high-water mark.
        for _ in 0..2 {
            sched.run(&mut engine, &workload, |_, _, _, _| {}).unwrap();
        }

        let before = ALLOC_OPS.load(Ordering::SeqCst);
        let report = sched.run(&mut engine, &workload, |_, _, _, _| {}).unwrap();
        let after = ALLOC_OPS.load(Ordering::SeqCst);

        assert!(report.batches > 1);
        assert!(report.completed > 0);
        assert_eq!(
            after - before,
            0,
            "steady-state Scheduler::run allocated (telemetry {telemetry}, policy {policy}): \
             {} heap ops for {} batches",
            after - before,
            report.batches
        );
        if telemetry {
            let snap = engine.metrics_snapshot();
            assert_eq!(snap.sched.batches, 3 * report.batches);
            assert!(snap.sched.queue_depth_high_water > 0);
        }
    }
}
