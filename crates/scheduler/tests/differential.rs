//! The tentpole correctness property (ISSUE 5): the scheduler is a
//! *front-end*, not a numerics path. For any fixed seed/config, feeding
//! the formed batch sequence through the event loop must produce pooled
//! embeddings bit-identical to calling `serve_stream` directly on the
//! same batch sequence with a fresh engine — queueing and batching
//! decide *when* work runs, never *what* it computes.

use dlrm_model::{EmbeddingTable, Matrix, QueryBatch, SparseInput};
use scheduler::{assemble_into, OverloadPolicy, SchedConfig, Scheduler};
use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use workloads::{ArrivalProcess, DatasetSpec, TraceConfig, Workload};

const DIM: usize = 32;

fn setup(process: ArrivalProcess) -> (Vec<EmbeddingTable>, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let mut workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            num_batches: 3,
            ..TraceConfig::default()
        },
    );
    workload.stamp_arrivals(process);
    let tables = (0..2)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

fn engine(tables: &[EmbeddingTable], workload: &Workload, max_batch: usize) -> UpdlrmEngine {
    let config = UpdlrmConfig {
        batch_size: max_batch,
        ..UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware)
    };
    UpdlrmEngine::from_workload(config, tables, workload).unwrap()
}

fn assert_bit_identical(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.rows(), b.rows(), "{ctx}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{ctx}: col mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Scheduler-formed batches vs a direct `serve_stream` over the same
/// sequence, across load regimes (partial deadline batches, full size
/// batches, shed traffic) and both arrival processes.
#[test]
fn scheduler_pooled_embeddings_match_direct_serve_stream() {
    for (process, cfg) in [
        (
            // Low load: deadline-triggered partial batches.
            ArrivalProcess::poisson(2_000.0, 11),
            SchedConfig {
                max_batch_size: 32,
                max_wait_ns: 500_000,
                queue_cap: 64,
                policy: OverloadPolicy::ShedOldest,
            },
        ),
        (
            // Saturation: size-triggered full batches plus shedding.
            ArrivalProcess::poisson(50_000_000.0, 12),
            SchedConfig {
                max_batch_size: 32,
                max_wait_ns: 100_000,
                queue_cap: 48,
                policy: OverloadPolicy::ShedOldest,
            },
        ),
        (
            // Bursty mid load with blocking: mixed batch sizes.
            ArrivalProcess::bursty(300_000.0, 13),
            SchedConfig {
                max_batch_size: 16,
                max_wait_ns: 200_000,
                queue_cap: 24,
                policy: OverloadPolicy::Block,
            },
        ),
    ] {
        let (tables, workload) = setup(process);

        // Scheduler run: capture each formed batch's query ids and a
        // clone of its pooled embeddings.
        let mut eng = engine(&tables, &workload, cfg.max_batch_size);
        let mut sched = Scheduler::new(cfg).unwrap();
        let mut formed: Vec<Vec<u32>> = Vec::new();
        let mut pooled_seen: Vec<Vec<Matrix>> = Vec::new();
        let report = sched
            .run(&mut eng, &workload, |seq, ids, pooled, _| {
                assert_eq!(seq, formed.len(), "sink fires in launch order");
                formed.push(ids.to_vec());
                pooled_seen.push(pooled.to_vec());
            })
            .unwrap();
        assert_eq!(report.batches as usize, formed.len());
        assert!(
            report.batches > 1,
            "want a multi-batch sequence: {report:?}"
        );

        // Reference: assemble the same batch sequence and serve it
        // directly on a fresh engine.
        let batches: Vec<QueryBatch> = formed
            .iter()
            .map(|ids| {
                let mut b = QueryBatch {
                    sparse: vec![SparseInput::default(); workload.config.num_tables],
                    ..QueryBatch::default()
                };
                assemble_into(&workload, ids, &mut b);
                b.validate().unwrap();
                b
            })
            .collect();
        let mut reference = engine(&tables, &workload, cfg.max_batch_size);
        let mut pooled_ref: Vec<Vec<Matrix>> = Vec::new();
        reference
            .serve_stream(&batches, |_, pooled, _| pooled_ref.push(pooled.to_vec()))
            .unwrap();

        assert_eq!(pooled_seen.len(), pooled_ref.len());
        for (bi, (a, b)) in pooled_seen.iter().zip(&pooled_ref).enumerate() {
            assert_eq!(a.len(), b.len());
            for (t, (ma, mb)) in a.iter().zip(b).enumerate() {
                assert_bit_identical(ma, mb, &format!("{process:?} batch {bi} table {t}"));
            }
        }
    }
}

/// The assembled batch is exactly the queries' rows from the source
/// workload, in pop order.
#[test]
fn assemble_into_copies_the_right_samples() {
    let (_, workload) = setup(ArrivalProcess::poisson(1_000.0, 1));
    let bs = workload.config.batch_size;
    let nd = workload.config.num_dense;
    let ids = [0u32, 65, 3, (bs as u32) * 2 + 7];
    let mut out = QueryBatch {
        sparse: vec![SparseInput::default(); workload.config.num_tables],
        ..QueryBatch::default()
    };
    assemble_into(&workload, &ids, &mut out);
    out.validate().unwrap();
    assert_eq!(out.batch_size(), ids.len());
    for (row, &id) in ids.iter().enumerate() {
        let (bi, si) = (id as usize / bs, id as usize % bs);
        assert_eq!(
            &out.dense[row * nd..(row + 1) * nd],
            &workload.batches[bi].dense[si * nd..(si + 1) * nd]
        );
        for t in 0..workload.config.num_tables {
            assert_eq!(
                out.sparse[t].sample(row),
                workload.batches[bi].sparse[t].sample(si),
                "table {t} row {row}"
            );
        }
    }
}
