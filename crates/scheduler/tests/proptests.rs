//! Property tests for the scheduler's accounting identities (ISSUE 6
//! satellite): over random offered loads, overload policies, queue
//! capacities, batching deadlines and batch shapes,
//!
//! 1. **conservation** — every arrival is accounted exactly once:
//!    `completed + shed + rejected == requests` and
//!    `admitted == completed + shed` (a shed request was admitted
//!    first, then evicted; a rejected one never entered the queue);
//! 2. **FIFO launches** — the concatenation of batch ids in launch
//!    order is strictly increasing (admission order is arrival order,
//!    and the queue pops oldest-first), and every batch holds between
//!    1 and `max_batch` queries;
//! 3. **monotone modeled time** — the run returns `Ok`: the event
//!    loop's exact integer-ns invariant (`newest admitted arrival <=
//!    launch time`) turns any non-monotone launch into an `Err`, so a
//!    green run *is* the monotonicity proof. Derived statistics stay
//!    finite and ordered (`p50 <= p95 <= p99 <= max`);
//! 4. **determinism** — a second run of the same case produces the
//!    byte-identical report and launch trace.
//!
//! One engine is built up front and reused across cases: serving is
//! stateless between `Scheduler::run` calls, and engine construction,
//! not the event loop, is the expensive part.

use dlrm_model::EmbeddingTable;
use proptest::prelude::*;
use proptest::TestRunner;
use scheduler::{report_is_finite, OverloadPolicy, SchedConfig, SchedReport, Scheduler};
use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use workloads::{ArrivalProcess, DatasetSpec, TraceConfig, Workload};

const ENGINE_BATCH: usize = 64;

/// One scheduler run: the report plus the launch trace (batch sizes
/// and the concatenated ids in launch order).
fn run_once(
    eng: &mut UpdlrmEngine,
    wl: &Workload,
    cfg: SchedConfig,
) -> (SchedReport, Vec<usize>, Vec<u32>) {
    let mut s = Scheduler::new(cfg).expect("generated config is valid");
    let mut sizes = Vec::new();
    let mut all_ids = Vec::new();
    let report = s
        .run(eng, wl, |_, ids, _, _| {
            sizes.push(ids.len());
            all_ids.extend_from_slice(ids);
        })
        .expect("modeled run must uphold the integer-ns launch invariant");
    (report, sizes, all_ids)
}

#[test]
fn accounting_identities_hold_for_random_configs() {
    let spec = DatasetSpec::goodreads().scaled_down(2000);
    let base = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            num_batches: 2,
            ..TraceConfig::default()
        },
    );
    let tables: Vec<EmbeddingTable> = (0..2)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, 32, 3, t as u64).unwrap())
        .collect();
    let mut config = UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform);
    config.batch_size = ENGINE_BATCH;
    let mut eng = UpdlrmEngine::from_workload(config, &tables, &base).expect("engine builds");

    let strategy = (
        500u64..50_000_000,         // offered qps: idle to far past saturation
        0u8..3,                     // overload policy
        1usize..129,                // queue capacity
        1usize..(ENGINE_BATCH + 1), // max batch size
        1u64..2_001,                // batching deadline, us
        any::<bool>(),              // bursty vs poisson arrivals
        0u64..1_000,                // arrival seed
    );
    TestRunner::new(ProptestConfig::with_cases(24)).run(
        &strategy,
        |(qps, pol, queue_cap, max_batch, wait_us, bursty, seed)| {
            let policy = match pol {
                0 => OverloadPolicy::Block,
                1 => OverloadPolicy::ShedOldest,
                _ => OverloadPolicy::RejectNew,
            };
            let process = if bursty {
                ArrivalProcess::bursty(qps as f64, seed)
            } else {
                ArrivalProcess::poisson(qps as f64, seed)
            };
            let mut wl = base.clone();
            wl.stamp_arrivals(process);
            let cfg = SchedConfig {
                max_batch_size: max_batch,
                max_wait_ns: wait_us * 1_000,
                queue_cap,
                policy,
            };

            let (report, sizes, all_ids) = run_once(&mut eng, &wl, cfg);

            // 1. Conservation.
            prop_assert_eq!(
                report.completed + report.shed + report.rejected,
                report.requests,
                "every arrival completes, is shed, or is rejected ({:?})",
                report
            );
            prop_assert_eq!(
                report.admitted,
                report.completed + report.shed,
                "admitted requests either complete or get evicted ({:?})",
                report
            );
            prop_assert_eq!(report.completed, all_ids.len() as u64);
            prop_assert!(report.queue_high_water as usize <= queue_cap);
            if policy != OverloadPolicy::ShedOldest {
                prop_assert_eq!(report.shed, 0);
            }
            if policy != OverloadPolicy::RejectNew {
                prop_assert_eq!(report.rejected, 0);
            }

            // 2. FIFO launches within batch-size bounds.
            prop_assert_eq!(sizes.len() as u64, report.batches);
            for &s in &sizes {
                prop_assert!(
                    s >= 1 && s <= max_batch,
                    "batch of {} vs max {}",
                    s,
                    max_batch
                );
            }
            prop_assert!(
                all_ids.windows(2).all(|w| w[0] < w[1]),
                "launch order must follow admission order"
            );
            prop_assert_eq!(
                report.trigger_size + report.trigger_deadline + report.trigger_drain,
                report.batches,
                "every batch has exactly one trigger ({:?})",
                report
            );

            // 3. Finite, ordered statistics (monotone modeled time is
            // enforced by run_once's expect on the Ok).
            prop_assert!(report_is_finite(&report), "{:?}", report);
            if report.completed > 0 {
                prop_assert!(report.p50_latency_ns <= report.p95_latency_ns);
                prop_assert!(report.p95_latency_ns <= report.p99_latency_ns);
                prop_assert!(report.p99_latency_ns <= report.max_latency_ns);
                prop_assert!(report.makespan_ns >= 0.0);
            }

            // 4. Determinism: modeled time has no wall-clock jitter.
            let (again, sizes2, ids2) = run_once(&mut eng, &wl, cfg);
            prop_assert_eq!(report, again, "reports must be byte-identical across runs");
            prop_assert_eq!(sizes, sizes2);
            prop_assert_eq!(all_ids, ids2);
            Ok(())
        },
    );
}
