//! NaN/Inf audit regression (ISSUE 6): every f64 statistic a
//! [`SchedReport`] carries must be finite, and the serialized `--json`
//! form must parse back as typed numbers. The vendored serde renders a
//! non-finite f64 as a `"NaN"` / `"inf"` *string*, which no typed
//! field accepts — so a single unguarded division poisons the whole
//! report file. These tests pin the guard for the degenerate regimes:
//! minimal traces, heavy shedding, and zero-length latency sets.

use dlrm_model::EmbeddingTable;
use scheduler::{report_is_finite, OverloadPolicy, SchedConfig, SchedReport, Scheduler};
use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use workloads::{ArrivalProcess, DatasetSpec, TraceConfig, Workload};

fn setup(num_batches: usize, process: ArrivalProcess) -> (Vec<EmbeddingTable>, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let mut workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            num_batches,
            ..TraceConfig::default()
        },
    );
    workload.stamp_arrivals(process);
    let tables = (0..2)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, 32, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

fn engine(tables: &[EmbeddingTable], workload: &Workload, max_batch: usize) -> UpdlrmEngine {
    let config = UpdlrmConfig {
        batch_size: max_batch,
        ..UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform)
    };
    UpdlrmEngine::from_workload(config, tables, workload).unwrap()
}

/// Serialize → parse → compare: the emitted JSON must round-trip into
/// the typed report, which is only possible when every field is a real
/// JSON number (no `"NaN"` strings).
fn assert_json_round_trips_finite(report: &SchedReport, ctx: &str) {
    assert!(
        report_is_finite(report),
        "{ctx}: non-finite stat {report:?}"
    );
    let text = serde::json::to_string_pretty(report);
    assert!(
        !text.contains("NaN") && !text.contains("inf"),
        "{ctx}: non-finite leaked into JSON: {text}"
    );
    let back: SchedReport = serde::json::from_str(&text)
        .unwrap_or_else(|e| panic!("{ctx}: emitted JSON must parse back typed: {e}\n{text}"));
    assert_eq!(&back, report, "{ctx}: JSON round trip changed the report");
}

#[test]
fn minimal_single_arrival_report_is_finite_json() {
    let (tables, workload) = setup(1, ArrivalProcess::poisson(1_000.0, 3));
    let mut eng = engine(&tables, &workload, 16);
    let mut s = Scheduler::new(SchedConfig {
        max_batch_size: 16,
        ..SchedConfig::default()
    })
    .unwrap();
    let r = s.run(&mut eng, &workload, |_, _, _, _| {}).unwrap();
    assert_json_round_trips_finite(&r, "minimal");
}

#[test]
fn heavily_shed_report_is_finite_json() {
    // Saturating load into a tiny queue: nearly everything is shed,
    // exercising the division guards with extreme count skews.
    let (tables, workload) = setup(3, ArrivalProcess::poisson(50_000_000.0, 5));
    for policy in [OverloadPolicy::ShedOldest, OverloadPolicy::RejectNew] {
        let mut eng = engine(&tables, &workload, 8);
        let mut s = Scheduler::new(SchedConfig {
            max_batch_size: 8,
            max_wait_ns: 1_000,
            queue_cap: 8,
            policy,
        })
        .unwrap();
        let r = s.run(&mut eng, &workload, |_, _, _, _| {}).unwrap();
        assert!(r.shed + r.rejected > 0, "{policy}: load must overflow");
        assert_json_round_trips_finite(&r, policy.as_str());
    }
}

#[test]
fn zero_activity_report_serializes_finite_zeros() {
    // The finalization-path contract independent of the event loop: a
    // report whose every count is zero (fully-shed / empty-trace shape)
    // must hold finite zeros in all derived statistics.
    let zero = SchedReport {
        requests: 0,
        admitted: 0,
        completed: 0,
        shed: 0,
        rejected: 0,
        blocked: 0,
        batches: 0,
        trigger_size: 0,
        trigger_deadline: 0,
        trigger_drain: 0,
        queue_high_water: 0,
        mean_batch_size: 0.0,
        offered_qps: 0.0,
        achieved_qps: 0.0,
        makespan_ns: 0.0,
        mean_latency_ns: 0.0,
        p50_latency_ns: 0.0,
        p95_latency_ns: 0.0,
        p99_latency_ns: 0.0,
        max_latency_ns: 0.0,
    };
    assert_json_round_trips_finite(&zero, "all-zero");
}
