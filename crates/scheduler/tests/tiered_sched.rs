//! Scheduler × tiered engine (satellite 2): batches formed by
//! [`BatchPolicy`](scheduler::BatchPolicy) and served through a
//! multi-rank [`TieredEngine`] still satisfy the PR 5 accounting
//! identities — and the pooled embeddings bit-match a direct
//! `serve_stream` of the same formed sequence on a fresh tiered engine.
//! The scheduler is a front-end for *any* [`BatchServer`]; swapping the
//! numerics back-end must change neither the bookkeeping nor the bits.

use dlrm_model::{EmbeddingTable, Matrix, QueryBatch, SparseInput};
use placement::{plan, Catalog, PlacementPlan, PlannerConfig};
use proptest::prelude::*;
use proptest::TestRunner;
use scheduler::{
    assemble_into, report_is_finite, OverloadPolicy, SchedConfig, SchedReport, Scheduler,
};
use updlrm_core::{TieredEngine, UpdlrmConfig};
use upmem_sim::RankTopology;
use workloads::{ArrivalProcess, DatasetSpec, FreqProfile, TraceConfig, Workload};

const DIM: usize = 32;
const TABLES: usize = 2;
const ENGINE_BATCH: usize = 64;

fn setup() -> (DatasetSpec, Workload, Vec<EmbeddingTable>, PlacementPlan) {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: TABLES,
            num_batches: 3,
            ..TraceConfig::default()
        },
    );
    let tables: Vec<EmbeddingTable> = (0..TABLES)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    let profiles: Vec<FreqProfile> = (0..TABLES)
        .map(|t| FreqProfile::from_inputs(spec.num_items, workload.table_inputs(t)))
        .collect();
    let catalog = Catalog::homogeneous(TABLES, spec.num_items, DIM);
    let config = PlannerConfig {
        topology: RankTopology {
            nr_ranks: 3,
            dpus_per_rank: 8,
        },
        emt_capacity_bytes: (spec.num_items / 4 + 64) * DIM * 4,
        host_cache_bytes: TABLES * 48 * DIM * 4,
        replicate_top: 24,
        ..PlannerConfig::default()
    };
    let p = plan(&catalog, &profiles, &config).unwrap();
    (spec, workload, tables, p)
}

fn tiered(tables: &[EmbeddingTable], p: &PlacementPlan) -> TieredEngine {
    let config = UpdlrmConfig {
        batch_size: ENGINE_BATCH,
        ..UpdlrmConfig::default()
    };
    TieredEngine::new(config, p, tables).unwrap()
}

fn run_once(
    eng: &mut TieredEngine,
    wl: &Workload,
    cfg: SchedConfig,
) -> (SchedReport, Vec<Vec<u32>>, Vec<Vec<Matrix>>) {
    let mut s = Scheduler::new(cfg).expect("generated config is valid");
    let mut formed = Vec::new();
    let mut pooled_seen = Vec::new();
    let report = s
        .run(eng, wl, |seq, ids, pooled, _| {
            assert_eq!(seq, formed.len(), "sink fires in launch order");
            formed.push(ids.to_vec());
            pooled_seen.push(pooled.to_vec());
        })
        .expect("modeled run must uphold the integer-ns launch invariant");
    (report, formed, pooled_seen)
}

#[test]
fn tiered_scheduler_accounting_and_bits_hold_for_random_loads() {
    let (_, base, tables, p) = setup();
    let mut eng = tiered(&tables, &p);

    let strategy = (
        500u64..50_000_000,         // offered qps: idle to far past saturation
        0u8..3,                     // overload policy
        1usize..97,                 // queue capacity
        1usize..(ENGINE_BATCH + 1), // max batch size
        1u64..2_001,                // batching deadline, us
        any::<bool>(),              // bursty vs poisson arrivals
        0u64..1_000,                // arrival seed
    );
    TestRunner::new(ProptestConfig::with_cases(12)).run(
        &strategy,
        |(qps, pol, queue_cap, max_batch, wait_us, bursty, seed)| {
            let policy = match pol {
                0 => OverloadPolicy::Block,
                1 => OverloadPolicy::ShedOldest,
                _ => OverloadPolicy::RejectNew,
            };
            let process = if bursty {
                ArrivalProcess::bursty(qps as f64, seed)
            } else {
                ArrivalProcess::poisson(qps as f64, seed)
            };
            let mut wl = base.clone();
            wl.stamp_arrivals(process);
            let cfg = SchedConfig {
                max_batch_size: max_batch,
                max_wait_ns: wait_us * 1_000,
                queue_cap,
                policy,
            };

            let (report, formed, pooled_seen) = run_once(&mut eng, &wl, cfg);

            // PR 5 accounting identities, unchanged under the tiered
            // back-end.
            prop_assert_eq!(
                report.completed + report.shed + report.rejected,
                report.requests,
                "conservation ({:?})",
                report
            );
            prop_assert_eq!(report.admitted, report.completed + report.shed);
            prop_assert_eq!(
                report.completed,
                formed.iter().map(|ids| ids.len() as u64).sum::<u64>()
            );
            prop_assert_eq!(formed.len() as u64, report.batches);
            prop_assert_eq!(
                report.trigger_size + report.trigger_deadline + report.trigger_drain,
                report.batches
            );
            prop_assert!(report.queue_high_water as usize <= queue_cap);
            let mut all_ids: Vec<u32> = Vec::new();
            for ids in &formed {
                prop_assert!(!ids.is_empty() && ids.len() <= max_batch);
                all_ids.extend_from_slice(ids);
            }
            prop_assert!(
                all_ids.windows(2).all(|w| w[0] < w[1]),
                "launch order must follow admission order"
            );
            prop_assert!(report_is_finite(&report), "{:?}", report);
            if report.completed > 0 {
                prop_assert!(report.p50_latency_ns <= report.p95_latency_ns);
                prop_assert!(report.p95_latency_ns <= report.p99_latency_ns);
                prop_assert!(report.p99_latency_ns <= report.max_latency_ns);
            }

            // Bit-identity: replay the formed sequence through a fresh
            // tiered engine's serve_stream.
            let batches: Vec<QueryBatch> = formed
                .iter()
                .map(|ids| {
                    let mut b = QueryBatch {
                        sparse: vec![SparseInput::default(); wl.config.num_tables],
                        ..QueryBatch::default()
                    };
                    assemble_into(&wl, ids, &mut b);
                    b.validate().unwrap();
                    b
                })
                .collect();
            let mut reference = tiered(&tables, &p);
            let mut pooled_ref: Vec<Vec<Matrix>> = Vec::new();
            reference
                .serve_stream(&batches, |_, pooled, _| pooled_ref.push(pooled.to_vec()))
                .unwrap();
            prop_assert_eq!(pooled_seen.len(), pooled_ref.len());
            for (bi, (a, b)) in pooled_seen.iter().zip(&pooled_ref).enumerate() {
                prop_assert_eq!(a.len(), b.len());
                for (t, (ma, mb)) in a.iter().zip(b).enumerate() {
                    prop_assert_eq!(ma.rows(), mb.rows());
                    for (x, y) in ma.as_slice().iter().zip(mb.as_slice()) {
                        prop_assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "batch {} table {} diverges under the scheduler",
                            bi,
                            t
                        );
                    }
                }
            }

            // Determinism across a second scheduled run.
            let (again, formed2, _) = run_once(&mut eng, &wl, cfg);
            prop_assert_eq!(report, again);
            prop_assert_eq!(formed, formed2);
            Ok(())
        },
    );
}
