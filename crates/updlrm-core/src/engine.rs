//! The UpDLRM embedding engine: Fig. 4's three-stage pipeline.
//!
//! Pre-processing (untimed, as in the paper) partitions each embedding
//! table with the configured strategy and loads the tiles — and, under
//! cache-aware partitioning, the cached partial-sum rows — into DPU
//! MRAM. Each inference batch then runs:
//!
//! 1. **stage 1** — the host routes every lookup to its row partition,
//!    builds per-tasklet reference streams and scatters them CPU→MRAM;
//! 2. **stage 2** — every DPU runs the [`EmbeddingKernel`], fetching
//!    rows (EMT or cache region) and reducing per-sample partial sums;
//! 3. **stage 3** — the host gathers the partial-sum rows MRAM→CPU and
//!    combines them into pooled `batch x dim` embeddings.
//!
//! The per-stage wall times form the Fig. 10 latency breakdown; the
//! pooled embeddings are bit-compatible with the
//! [`dlrm_model`] reference (exactly so for integer-valued tables).

use crate::config::UpdlrmConfig;
use crate::error::{CoreError, Result};
use crate::kernel::{build_stream_into, DpuTask, EmbeddingKernel, StreamBuilder, CACHE_REF_BIT};
use crate::partition::{self, PartitionStrategy, RowAssignment};
use crate::replan::{self, ReplanPolicy};
use crate::telemetry::{MetricsRegistry, Snapshot};
use crate::tiling::{Tiling, TilingProblem};
use cooccur_cache::{CacheHit, CacheListSet, CooccurGraph, LookupScratch, PartialSumCache};
use dlrm_model::{quant, simd, Dlrm, EmbedDtype, EmbeddingTable, Matrix, QueryBatch};
use upmem_sim::{Cycles, DpuId, LaunchReport, PimConfig, PimSystem};
use workloads::{FreqProfile, Workload};

/// Per-batch latency breakdown of the embedding layer (Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EmbeddingBreakdown {
    /// Stage 1: CPU→DPU reference-stream transfer (ns).
    pub stage1_ns: f64,
    /// Stage 2: DPU lookup + in-DPU reduction (ns).
    pub stage2_ns: f64,
    /// Stage 3: DPU→CPU partial-sum transfer (ns).
    pub stage3_ns: f64,
    /// Host-side routing/stream building (ns), outside the 3 stages.
    pub route_ns: f64,
    /// Host-side final partial-sum combination (ns), outside the 3 stages.
    pub combine_ns: f64,
    /// Modeled DPU + link energy (picojoules).
    pub energy_pj: f64,
    /// MRAM DMA transfers issued by the kernels.
    pub dma_transfers: u64,
    /// Pipeline instructions issued by the kernels.
    pub instrs: u64,
    /// Lookups served by cached partial-sum combinations.
    pub cache_hits: u64,
    /// Lookups served from the EMT region.
    pub emt_lookups: u64,
    /// Slowest-DPU over mean-DPU lookup cycles (1.0 = perfectly balanced).
    pub lookup_imbalance: f64,
}

impl EmbeddingBreakdown {
    /// The paper's embedding-layer time: stage 1 + stage 2 + stage 3.
    pub fn total_ns(&self) -> f64 {
        self.stage1_ns + self.stage2_ns + self.stage3_ns
    }

    /// Embedding time including host-side routing and combination.
    pub fn total_with_host_ns(&self) -> f64 {
        self.total_ns() + self.route_ns + self.combine_ns
    }

    /// Accumulates another batch's breakdown (imbalance is averaged by
    /// the caller; here the max is kept).
    pub fn accumulate(&mut self, other: &EmbeddingBreakdown) {
        self.stage1_ns += other.stage1_ns;
        self.stage2_ns += other.stage2_ns;
        self.stage3_ns += other.stage3_ns;
        self.route_ns += other.route_ns;
        self.combine_ns += other.combine_ns;
        self.energy_pj += other.energy_pj;
        self.dma_transfers += other.dma_transfers;
        self.instrs += other.instrs;
        self.cache_hits += other.cache_hits;
        self.emt_lookups += other.emt_lookups;
        self.lookup_imbalance = self.lookup_imbalance.max(other.lookup_imbalance);
    }
}

/// Summary of one table's placement, for analyses and figures.
#[derive(Debug, Clone, PartialEq)]
pub struct TableReport {
    /// The tiling in effect.
    pub tiling: Tiling,
    /// Predicted access load per row partition.
    pub part_load: Vec<f64>,
    /// Max-over-mean of `part_load`.
    pub imbalance: f64,
    /// Number of cache lists placed (0 outside CA).
    pub cached_lists: usize,
    /// Cached combination rows per partition.
    pub cache_rows_per_part: Vec<u32>,
}

struct CacheState {
    store: PartialSumCache,
    entry_part: Vec<u32>,
    entry_slot: Vec<u32>,
    cache_rows_per_part: Vec<u32>,
    placed_lists: usize,
    /// The truncated mined list set, kept so a replan can re-place and
    /// re-materialize the cache from fresh window frequencies.
    lists: CacheListSet,
}

/// Number of MRAM staging slots per DPU: slot 0 serves `run_batch` and
/// sequential serving, slot 1 is the double-buffer partner that lets
/// batch `i + 1`'s reference streams land while batch `i` still owns
/// the other slot (see [`crate::serve`]).
pub(crate) const STAGING_SLOTS: usize = 2;

struct TableState {
    tiling: Tiling,
    assignment: RowAssignment,
    cache: Option<CacheState>,
    /// Rows replicated into every partition, in replica-slot order.
    replicas: Vec<u32>,
    dpu_base: usize,
    /// Double-buffered EMT region bases, indexed by the engine's
    /// `active_emt`. Equal when replanning is off (one region).
    emt_bases: [u32; 2],
    /// Double-buffered cache region bases; equal when replanning is off.
    cache_bases: [u32; 2],
    /// Rows each EMT region holds (replica block + largest partition) —
    /// the per-partition capacity a replan plans against.
    emt_region_rows: usize,
    /// Combination rows each cache region holds per partition.
    cache_region_rows: usize,
    /// Per staging slot: (reference-stream base, partial-sum base).
    slots: [(u32, u32); STAGING_SLOTS],
    dim: usize,
}

impl TableState {
    fn dpu(&self, part: usize, slice: usize) -> DpuId {
        DpuId((self.dpu_base + part * self.tiling.col_slices + slice) as u32)
    }

    fn input_base(&self, slot: usize) -> u32 {
        self.slots[slot].0
    }

    fn output_base(&self, slot: usize) -> u32 {
        self.slots[slot].1
    }
}

/// The per-DPU MRAM region plan shared by every (partition, slice) of
/// one table. Produced by [`compute_regions`]; the property tests in
/// [`crate::replan`] pin down that all regions are pairwise disjoint —
/// in particular that a migration scatter into the inactive EMT/cache
/// regions can never touch what the active regions are serving.
pub(crate) struct MramRegions {
    pub(crate) emt_bases: [u32; 2],
    pub(crate) cache_bases: [u32; 2],
    pub(crate) slots: [(u32, u32); STAGING_SLOTS],
    pub(crate) emt_region_rows: usize,
    pub(crate) cache_region_rows: usize,
}

/// Plans one DPU's MRAM regions: `[EMT A | (EMT B) | cache A |
/// (cache B) | slot0 input | slot0 output | slot1 input | slot1
/// output]`. With `replan` set the EMT and cache regions are
/// double-buffered: region B is the staging target a migration
/// scatters the re-partitioned tiles into while region A serves.
///
/// The EMT regions are sized with headroom — up to twice the live
/// footprint, bounded by half the configured EMT capacity so the pair
/// never exceeds the single-region budget — because a rebalanced plan
/// rarely has the same largest partition as the old one. The cache
/// regions are sized at the placement capacity bound so any replanned
/// cache layout fits.
pub(crate) struct RegionSpec {
    /// Double-buffer the EMT and cache regions for live migration.
    pub(crate) replan: bool,
    /// Largest live EMT footprint (replica block + largest partition), rows.
    pub(crate) emt_rows_max: usize,
    /// Configured per-DPU EMT capacity bound, rows.
    pub(crate) emt_cap_rows: usize,
    /// Stored bytes per EMT row slice (dtype-dependent).
    pub(crate) emt_row_bytes: usize,
    /// Largest live cache footprint across partitions, rows.
    pub(crate) cache_rows_max: usize,
    /// Placement capacity bound for the cache region, rows.
    pub(crate) cache_cap_rows: usize,
    /// Bytes per f32 cache row slice.
    pub(crate) row_bytes: usize,
    /// Per-slot input staging reservation, bytes.
    pub(crate) input_reserve_bytes: usize,
    /// Per-slot output staging reservation, bytes.
    pub(crate) output_bytes: usize,
}

pub(crate) fn compute_regions(
    spec: &RegionSpec,
) -> std::result::Result<MramRegions, upmem_sim::SimError> {
    let emt_region_rows = if spec.replan {
        spec.emt_rows_max
            .max((spec.emt_cap_rows / 2).min(spec.emt_rows_max * 2))
    } else {
        spec.emt_rows_max
    };
    let cache_region_rows = if spec.replan {
        spec.cache_rows_max.max(spec.cache_cap_rows)
    } else {
        spec.cache_rows_max
    };
    let mut layout = upmem_sim::MramLayout::new();
    let emt_a = layout.reserve(emt_region_rows * spec.emt_row_bytes)?;
    let emt_b = if spec.replan {
        layout.reserve(emt_region_rows * spec.emt_row_bytes)?
    } else {
        emt_a
    };
    let cache_a = layout.reserve(cache_region_rows * spec.row_bytes)?;
    let cache_b = if spec.replan && cache_region_rows > 0 {
        layout.reserve(cache_region_rows * spec.row_bytes)?
    } else {
        cache_a
    };
    let mut slots = [(0u32, 0u32); STAGING_SLOTS];
    for slot in &mut slots {
        let input = layout.reserve(spec.input_reserve_bytes)?;
        let output = layout.reserve(spec.output_bytes)?;
        *slot = (input, output);
    }
    Ok(MramRegions {
        emt_bases: [emt_a, emt_b],
        cache_bases: [cache_a, cache_b],
        slots,
        emt_region_rows,
        cache_region_rows,
    })
}

/// Serializes one `(partition, column slice)` EMT tile — the shared
/// replica block followed by the partition's local rows, at the
/// configured dtype — appending to `buf`. Shared by the initial
/// (untimed) load and the migration scatter so both produce
/// byte-identical tiles for the same placement.
fn build_emt_tile(
    table: &EmbeddingTable,
    dtype: EmbedDtype,
    n_c: usize,
    c: usize,
    replicas: &[u32],
    local_rows: &[u32],
    buf: &mut Vec<u8>,
) -> Result<()> {
    let emt_row_bytes = dtype.stored_row_bytes(n_c);
    let mut qrec = vec![0u8; emt_row_bytes];
    for &r in replicas.iter().chain(local_rows.iter()) {
        let row = table.row(r as u64)?;
        let slice = &row[c * n_c..(c + 1) * n_c];
        match dtype {
            EmbedDtype::F32 => {
                for &v in slice {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            EmbedDtype::Int8 => {
                quant::quantize_row_into(slice, &mut qrec)?;
                buf.extend_from_slice(&qrec);
            }
        }
    }
    Ok(())
}

/// Serializes one partition's cache-region column slice (always f32),
/// appending to `buf`. `entries` is the partition's store-entry list
/// in cache-slot order.
fn build_cache_tile(
    store: &PartialSumCache,
    entries: &[usize],
    n_c: usize,
    c: usize,
    buf: &mut Vec<u8>,
) {
    for &e in entries {
        let vec = &store.entries()[e].vector;
        for &v in &vec[c * n_c..(c + 1) * n_c] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Inverts cache entry maps into per-partition slot order: element
/// `[p][s]` is the store entry at slot `s` of partition `p`'s cache
/// region.
fn entries_in_parts(
    entry_part: &[u32],
    entry_slot: &[u32],
    cache_rows_per_part: &[u32],
) -> Vec<Vec<usize>> {
    let mut v: Vec<Vec<usize>> = cache_rows_per_part
        .iter()
        .map(|&n| vec![0; n as usize])
        .collect();
    for (e, (&p, &s)) in entry_part.iter().zip(entry_slot.iter()).enumerate() {
        v[p as usize][s as usize] = e;
    }
    v
}

/// Assigns cache slots for a cache-aware placement: combos of one list
/// are consecutive in the owning partition's cache region, in the same
/// (list-major, mask-minor) order the store enumerates.
fn cache_entry_maps(ca: &partition::CacheAwareAssignment) -> (Vec<u32>, Vec<u32>) {
    let parts = ca.cache_rows_per_part.len();
    let mut next_slot = vec![0u32; parts];
    let mut entry_part = Vec::new();
    let mut entry_slot = Vec::new();
    for (l, list) in ca.placed_lists.lists.iter().enumerate() {
        let p = ca.list_part[l];
        let combos = list.num_combinations() as u32;
        for i in 0..combos {
            entry_part.push(p);
            entry_slot.push(next_slot[p as usize] + i);
        }
        next_slot[p as usize] += combos;
    }
    (entry_part, entry_slot)
}

/// New cache layout staged by a pending migration (cache-aware tables
/// only): the re-materialized store plus its entry maps, installed at
/// the flip.
struct CacheFlip {
    store: PartialSumCache,
    entry_part: Vec<u32>,
    entry_slot: Vec<u32>,
    cache_rows_per_part: Vec<u32>,
    placed_lists: usize,
}

/// One table's staged placement: the new row assignment and replica
/// block whose tiles already sit in the inactive MRAM regions.
struct TableFlip {
    assignment: RowAssignment,
    replicas: Vec<u32>,
    cache: Option<CacheFlip>,
}

/// An in-flight migration: the staged per-table placements and the
/// modeled instant the scatter completes, at which point
/// [`UpdlrmEngine::on_tick`] performs the atomic flip.
struct PendingMigration {
    done_at_ns: u64,
    tables: Vec<TableFlip>,
}

/// Replanner state, present only when
/// [`UpdlrmConfig::replan`](crate::config::UpdlrmConfig) is enabled.
struct DriftState {
    /// Sliding-window access profile per table, accumulated by
    /// `route_batch` and reset at every replan decision.
    window: Vec<FreqProfile>,
    /// Batches folded into the current window.
    batches_in_window: u64,
    /// The migration currently in flight, if any (at most one).
    pending: Option<PendingMigration>,
    /// Telemetry snapshot taken mid-first-migration (between the
    /// scatter and the flip) — the drift-snapshot golden the CI
    /// byte-compares.
    first_snapshot: Option<Snapshot>,
}

/// Host-side counters from stage-1 routing of one batch. The routed
/// reference streams themselves live in the engine's [`BatchScratch`]
/// (they can be scattered into either staging slot), so this is a small
/// `Copy` value and routing a batch moves no buffers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RoutedBatch {
    pub(crate) batch_size: usize,
    pub(crate) route_ns: f64,
    pub(crate) cache_hits: u64,
    pub(crate) emt_lookups: u64,
}

impl RoutedBatch {
    /// Starts an `EmbeddingBreakdown` carrying the host-routing counters.
    pub(crate) fn breakdown_seed(&self) -> EmbeddingBreakdown {
        EmbeddingBreakdown {
            route_ns: self.route_ns,
            cache_hits: self.cache_hits,
            emt_lookups: self.emt_lookups,
            ..EmbeddingBreakdown::default()
        }
    }
}

/// Aggregated stage-2 launch result over all table groups.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct Stage2Report {
    pub(crate) wall_ns: f64,
    pub(crate) energy_pj: f64,
    pub(crate) dma_transfers: u64,
    pub(crate) instrs: u64,
    pub(crate) lookup_imbalance: f64,
}

impl Stage2Report {
    pub(crate) fn fold_into(&self, breakdown: &mut EmbeddingBreakdown) {
        breakdown.stage2_ns = self.wall_ns;
        breakdown.energy_pj += self.energy_pj;
        breakdown.dma_transfers += self.dma_transfers;
        breakdown.instrs += self.instrs;
        breakdown.lookup_imbalance = self.lookup_imbalance;
    }
}

/// One routed reference stream: the `(table, part)` it belongs to plus
/// its serialized bytes. The `(table, part)` labels are fixed at engine
/// construction (every row partition emits exactly one stream per
/// batch, in table-major order); only `bytes` changes per batch.
#[derive(Debug)]
struct StreamSlot {
    table: usize,
    part: usize,
    bytes: Vec<u8>,
}

/// Reusable per-engine working memory for the per-batch pipeline. Every
/// stage clears and refills its arena instead of allocating, so after
/// the first (warm-up) batch the steady-state serving path performs no
/// heap allocation — see `DESIGN.md` §4.5 for the ownership model.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Per-(partition, sample) routed references for the table being
    /// routed, indexed `p * batch_size + s`. Grows to the largest
    /// `row_parts x batch_size` seen and is never shrunk, so the inner
    /// `Vec`s keep their capacity across tables and batches.
    refs: Vec<Vec<u32>>,
    /// One serialized stream per (table, row partition), fixed order.
    streams: Vec<StreamSlot>,
    /// Dedup-format stream serializer state.
    builder: StreamBuilder,
    /// Cache lookup working set (cache-aware partitioning only).
    lookup: LookupScratch,
    hit: CacheHit,
    /// Stage-3 gather request list (lengths depend on the batch size).
    requests: Vec<(DpuId, u32, usize)>,
    /// Staging buffer for all gathered partial-sum rows.
    gather_buf: Vec<u8>,
    /// Recycled per-launch report (per-DPU stats vectors reused).
    launch: LaunchReport,
    /// Per-DPU cycle counts across all table groups of one batch.
    all_cycles: Vec<u64>,
    /// Returned pooled-output sets available for reuse (see
    /// [`UpdlrmEngine::recycle_pooled`]).
    matrix_pool: Vec<Vec<Matrix>>,
}

/// The UpDLRM system: a PIM array loaded with partitioned embedding
/// tables, executing the three-stage embedding pipeline per batch.
///
/// ## Example
///
/// ```rust
/// use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
/// use dlrm_model::EmbeddingTable;
/// use workloads::{DatasetSpec, TraceConfig, Workload};
///
/// # fn main() -> Result<(), updlrm_core::CoreError> {
/// let spec = DatasetSpec::goodreads().scaled_down(5000); // 472 items
/// let workload = Workload::generate(
///     &spec,
///     TraceConfig { num_tables: 2, num_batches: 2, ..TraceConfig::default() },
/// );
/// let tables: Vec<EmbeddingTable> = (0..2)
///     .map(|t| EmbeddingTable::random(spec.num_items, 32, 0.1, t))
///     .collect::<Result<_, _>>()?;
///
/// let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware);
/// let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload)?;
/// let (pooled, breakdown) = engine.run_batch(&workload.batches[0])?;
/// assert_eq!(pooled.len(), 2);
/// assert!(breakdown.total_ns() > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct UpdlrmEngine {
    sys: PimSystem,
    config: UpdlrmConfig,
    tables: Vec<TableState>,
    /// One prebuilt kernel per (table, staging slot): tasks are
    /// registered once at construction; only each task's `n_samples` is
    /// updated per launch, so stage 2 builds nothing per batch.
    kernels: Vec<[EmbeddingKernel; STAGING_SLOTS]>,
    /// Launch-order DPU ids per table (row-part major, col-slice minor).
    table_ids: Vec<Vec<DpuId>>,
    /// Broadcast target group per reference stream, aligned with
    /// `BatchScratch::streams`.
    stream_groups: Vec<Vec<DpuId>>,
    /// `(table, col slice)` per stage-3 gather request, in request order.
    gather_meta: Vec<(usize, usize)>,
    scratch: BatchScratch,
    pub(crate) serve_scratch: crate::serve::ServeScratch,
    /// Telemetry recorder; a disabled registry (the default) makes every
    /// record call a single branch. Arenas are preallocated here so the
    /// hooks stay allocation-free in steady state.
    pub(crate) metrics: MetricsRegistry,
    /// Host-resident table copies, kept only when replanning is enabled
    /// (the migration scatter rebuilds tiles from them).
    host_tables: Vec<EmbeddingTable>,
    /// Which EMT/cache region pair is serving (`emt_bases[active_emt]`).
    active_emt: usize,
    /// Replanner state; `None` unless `config.replan` is enabled.
    drift: Option<DriftState>,
}

impl std::fmt::Debug for UpdlrmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdlrmEngine")
            .field("nr_dpus", &self.config.nr_dpus)
            .field("strategy", &self.config.strategy)
            .field("tables", &self.tables.len())
            .finish()
    }
}

impl UpdlrmEngine {
    /// Builds an engine from explicit per-table frequency profiles and
    /// cache lists.
    ///
    /// `cache_lists` may be empty when the strategy is not
    /// [`PartitionStrategy::CacheAware`]; under CA it must carry one
    /// (possibly empty) list set per table.
    ///
    /// # Errors
    ///
    /// Configuration errors (DPU counts, table/profile mismatches),
    /// infeasible tilings, capacity violations and simulator errors.
    pub fn new(
        config: UpdlrmConfig,
        tables: &[EmbeddingTable],
        profiles: &[FreqProfile],
        cache_lists: &[CacheListSet],
    ) -> Result<Self> {
        if tables.is_empty() {
            return Err(CoreError::InvalidConfig(
                "at least one embedding table".into(),
            ));
        }
        if profiles.len() != tables.len() {
            return Err(CoreError::InvalidConfig(format!(
                "{} profiles for {} tables",
                profiles.len(),
                tables.len()
            )));
        }
        if !config.nr_dpus.is_multiple_of(tables.len()) {
            return Err(CoreError::InvalidConfig(format!(
                "{} dpus not divisible into {} table groups",
                config.nr_dpus,
                tables.len()
            )));
        }
        if config.strategy == PartitionStrategy::CacheAware && cache_lists.len() != tables.len() {
            return Err(CoreError::InvalidConfig(format!(
                "cache-aware partitioning needs one cache list set per table ({} for {})",
                cache_lists.len(),
                tables.len()
            )));
        }
        let mut sys = PimSystem::new(PimConfig {
            nr_dpus: config.nr_dpus,
            tasklets: config.tasklets,
            cost: config.cost.clone(),
            host_threads: config.host_threads,
        })?;

        let dpus_per_table = config.nr_dpus / tables.len();
        let mut states = Vec::with_capacity(tables.len());
        for (t, table) in tables.iter().enumerate() {
            let state = Self::build_table(
                &config,
                table,
                &profiles[t],
                cache_lists.get(t),
                t * dpus_per_table,
                dpus_per_table,
            )?;
            Self::load_table(&mut sys, table, &state, config.embed_dtype)?;
            // Pre-commit each DPU's bank through the last staging slot:
            // the regions only the kernel writes (reference streams,
            // partial-sum outputs) would otherwise regrow the bank —
            // with whole-bank memcpys — across the first few launches.
            let mram_end = state.slots[STAGING_SLOTS - 1].1 as usize
                + config.batch_size * state.tiling.row_bytes() * 2;
            for p in 0..state.tiling.row_parts {
                for c in 0..state.tiling.col_slices {
                    sys.dpu_mut(state.dpu(p, c))?.mram_mut().commit(mram_end);
                }
            }
            states.push(state);
        }

        // Batch-independent launch/scatter/gather structure, fixed for
        // the engine's lifetime so no per-batch call rebuilds it.
        let mut kernels = Vec::with_capacity(states.len());
        let mut table_ids = Vec::with_capacity(states.len());
        let mut stream_groups = Vec::new();
        let mut gather_meta = Vec::new();
        let mut streams = Vec::new();
        for (t, state) in states.iter().enumerate() {
            let kset: [EmbeddingKernel; STAGING_SLOTS] = std::array::from_fn(|slot| {
                let mut kernel = EmbeddingKernel::with_dtype(
                    state.tiling.row_bytes(),
                    config.dedup,
                    config.embed_dtype,
                );
                for p in 0..state.tiling.row_parts {
                    for c in 0..state.tiling.col_slices {
                        kernel.set_task(
                            state.dpu(p, c),
                            DpuTask {
                                emt_base: state.emt_bases[0],
                                cache_base: state.cache_bases[0],
                                input_base: state.input_base(slot),
                                output_base: state.output_base(slot),
                                n_samples: 0,
                            },
                        );
                    }
                }
                kernel
            });
            let mut ids = Vec::new();
            for p in 0..state.tiling.row_parts {
                for c in 0..state.tiling.col_slices {
                    ids.push(state.dpu(p, c));
                    gather_meta.push((t, c));
                }
                stream_groups.push(
                    (0..state.tiling.col_slices)
                        .map(|c| state.dpu(p, c))
                        .collect(),
                );
                streams.push(StreamSlot {
                    table: t,
                    part: p,
                    bytes: Vec::new(),
                });
            }
            kernels.push(kset);
            table_ids.push(ids);
        }

        let metrics = MetricsRegistry::new(config.telemetry, config.nr_dpus);
        let (host_tables, drift) = if config.replan.enabled() {
            (
                tables.to_vec(),
                Some(DriftState {
                    window: tables.iter().map(|t| FreqProfile::new(t.rows())).collect(),
                    batches_in_window: 0,
                    pending: None,
                    first_snapshot: None,
                }),
            )
        } else {
            (Vec::new(), None)
        };
        Ok(UpdlrmEngine {
            sys,
            config,
            tables: states,
            kernels,
            table_ids,
            stream_groups,
            gather_meta,
            scratch: BatchScratch {
                streams,
                ..BatchScratch::default()
            },
            serve_scratch: crate::serve::ServeScratch::default(),
            metrics,
            host_tables,
            active_emt: 0,
            drift,
        })
    }

    /// Builds an engine directly from a generated workload: profiles
    /// every table's trace and, under CA, mines cache lists with the
    /// configured miner.
    ///
    /// # Errors
    ///
    /// Same conditions as [`UpdlrmEngine::new`].
    pub fn from_workload(
        mut config: UpdlrmConfig,
        tables: &[EmbeddingTable],
        workload: &Workload,
    ) -> Result<Self> {
        if workload.config.num_tables != tables.len() {
            return Err(CoreError::InvalidConfig(format!(
                "workload has {} tables, engine got {}",
                workload.config.num_tables,
                tables.len()
            )));
        }
        config.avg_reduction_hint = workload.measured_avg_reduction().max(1.0);
        let mut profiles = Vec::with_capacity(tables.len());
        let mut lists = Vec::with_capacity(tables.len());
        for (t, table) in tables.iter().enumerate() {
            let profile = FreqProfile::from_inputs(table.rows(), workload.table_inputs(t));
            if config.strategy == PartitionStrategy::CacheAware {
                let mut graph = CooccurGraph::new(&profile, config.miner.hot_set_size);
                let mut budget = config.miner.max_samples;
                'record: for input in workload.table_inputs(t) {
                    for sample in input.iter() {
                        if budget == 0 {
                            break 'record;
                        }
                        graph.record_sample(sample);
                        budget -= 1;
                    }
                }
                let mut set = CacheListSet::mine(&graph, &config.miner);
                set.measure_benefit(workload.table_inputs(t));
                lists.push(set);
            } else {
                lists.push(CacheListSet::default());
            }
            profiles.push(profile);
        }
        Self::new(config, tables, &profiles, &lists)
    }

    fn build_table(
        config: &UpdlrmConfig,
        table: &EmbeddingTable,
        profile: &FreqProfile,
        cache_lists: Option<&CacheListSet>,
        dpu_base: usize,
        dpus: usize,
    ) -> Result<TableState> {
        let problem = TilingProblem {
            rows: table.rows(),
            cols: table.dim(),
            dpus,
            batch_size: config.batch_size,
            avg_reduction: config.avg_reduction_hint,
            emt_capacity_bytes: config.emt_capacity_bytes,
        };
        let tiling = match config.n_c {
            Some(n_c) => problem.tiling_for_nc(n_c, &config.cost)?,
            None => problem.search(&config.cost)?,
        };
        let row_bytes = tiling.row_bytes();
        // EMT rows are stored at the configured dtype's stride; cache,
        // input and output regions stay f32. Under int8 the narrower
        // stride both fits more rows per DPU and shrinks the per-lookup
        // row DMA.
        let emt_row_bytes = config.embed_dtype.stored_row_bytes(tiling.n_c);
        let parts = tiling.row_parts;
        let emt_cap_rows = config.emt_capacity_bytes / emt_row_bytes;

        // Capacity bound of the cache placement (set under CA): the
        // cache region size a replanned placement can always fit.
        let mut cache_cap_rows = 0usize;
        let (assignment, cache) = match config.strategy {
            PartitionStrategy::Uniform => (
                partition::uniform(table.rows(), parts, emt_cap_rows, profile)?,
                None,
            ),
            PartitionStrategy::NonUniform => (
                partition::non_uniform(table.rows(), parts, emt_cap_rows, profile)?,
                None,
            ),
            PartitionStrategy::Replicated => (
                partition::replicated_non_uniform(
                    table.rows(),
                    parts,
                    emt_cap_rows,
                    profile,
                    config.replicate_top,
                )?,
                None,
            ),
            PartitionStrategy::CacheAware => {
                let mut lists = cache_lists.cloned().unwrap_or_default();
                // The paper's cache-capacity knob: keep the best lists
                // fitting in `fraction` of the full requirement.
                let required = lists.total_storage_bytes(table.dim());
                let budget = (required as f64 * config.cache_fraction) as usize;
                lists.truncate_to_bytes(budget, table.dim());
                let total_combos: usize = lists.lists.iter().map(|l| l.num_combinations()).sum();
                let largest = lists
                    .lists
                    .iter()
                    .map(|l| l.num_combinations())
                    .max()
                    .unwrap_or(0);
                cache_cap_rows = total_combos.div_ceil(parts.max(1)) + largest;
                let ca = partition::cache_aware(
                    table.rows(),
                    parts,
                    emt_cap_rows,
                    cache_cap_rows,
                    profile,
                    &lists,
                )?;
                let store = PartialSumCache::materialize(&ca.placed_lists, table)?;
                let (entry_part, entry_slot) = cache_entry_maps(&ca);
                let placed = ca.placed_lists.lists.len();
                (
                    ca.rows,
                    Some(CacheState {
                        store,
                        entry_part,
                        entry_slot,
                        cache_rows_per_part: ca.cache_rows_per_part,
                        placed_lists: placed,
                        lists,
                    }),
                )
            }
        };

        // Replica block (Replicated strategy): rows in slot order.
        let replicas = replan::replica_block(&assignment);

        // MRAM regions: [EMT | cache | slot0 input | slot0 output |
        // slot1 input | slot1 output]. Two staging slots double-buffer
        // the per-batch regions so consecutive batches never share
        // reference streams or partial sums (see crate::serve); with
        // replanning enabled the EMT and cache regions are themselves
        // double-buffered so migrations can stage the next placement.
        let emt_rows_max =
            replicas.len() + assignment.rows_per_part.iter().copied().max().unwrap_or(0) as usize;
        let cache_rows_max = cache
            .as_ref()
            .map(|c| c.cache_rows_per_part.iter().copied().max().unwrap_or(0) as usize)
            .unwrap_or(0);
        let capacity = |e: upmem_sim::SimError| match e {
            upmem_sim::SimError::MramOutOfBounds {
                addr,
                len,
                capacity,
            } => CoreError::CapacityExceeded {
                partition: 0,
                required: addr as usize + len,
                available: capacity,
            },
            other => CoreError::Sim(other),
        };
        let regions = compute_regions(&RegionSpec {
            replan: config.replan.enabled(),
            emt_rows_max,
            emt_cap_rows,
            emt_row_bytes,
            cache_rows_max,
            cache_cap_rows,
            row_bytes,
            input_reserve_bytes: config.input_reserve_bytes,
            output_bytes: config.batch_size * row_bytes * 2,
        })
        .map_err(capacity)?;
        Ok(TableState {
            tiling,
            assignment,
            cache,
            replicas,
            dpu_base,
            emt_bases: regions.emt_bases,
            cache_bases: regions.cache_bases,
            emt_region_rows: regions.emt_region_rows,
            cache_region_rows: regions.cache_region_rows,
            slots: regions.slots,
            dim: table.dim(),
        })
    }

    /// Loads the EMT tiles and cache regions into MRAM (untimed
    /// pre-processing, as in the paper).
    fn load_table(
        sys: &mut PimSystem,
        table: &EmbeddingTable,
        state: &TableState,
        dtype: EmbedDtype,
    ) -> Result<()> {
        let tiling = &state.tiling;
        let n_c = tiling.n_c;
        let row_bytes = tiling.row_bytes();
        let parts = tiling.row_parts;
        let rc = state.replicas.len();
        // slot -> row per partition.
        let rows_in_part = replan::rows_in_parts(&state.assignment, rc);
        // Entries per partition in slot order.
        let entries_in_part: Vec<Vec<usize>> = match &state.cache {
            Some(c) => entries_in_parts(&c.entry_part, &c.entry_slot, &c.cache_rows_per_part),
            None => vec![Vec::new(); parts],
        };

        for p in 0..parts {
            for c in 0..tiling.col_slices {
                let dpu = state.dpu(p, c);
                // EMT tile: the shared replica block (slots 0..rc), then
                // this partition's rows, columns [c*n_c, ...), stored at
                // the configured dtype (each int8 row quantized
                // per-slice with its own scale/min header).
                let emt_row_bytes = dtype.stored_row_bytes(n_c);
                let mut buf = Vec::with_capacity((rc + rows_in_part[p].len()) * emt_row_bytes);
                build_emt_tile(
                    table,
                    dtype,
                    n_c,
                    c,
                    &state.replicas,
                    &rows_in_part[p],
                    &mut buf,
                )?;
                if !buf.is_empty() {
                    sys.load_mram(dpu, state.emt_bases[0], &buf)?;
                }
                // Cache region: this partition's combination rows.
                if let Some(cs) = &state.cache {
                    let mut cbuf = Vec::with_capacity(entries_in_part[p].len() * row_bytes);
                    build_cache_tile(&cs.store, &entries_in_part[p], n_c, c, &mut cbuf);
                    if !cbuf.is_empty() {
                        sys.load_mram(dpu, state.cache_bases[0], &cbuf)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The engine configuration.
    pub fn config(&self) -> &UpdlrmConfig {
        &self.config
    }

    /// The live telemetry recorder (disabled unless the engine was built
    /// with [`UpdlrmConfig::telemetry`](crate::config::UpdlrmConfig) set).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the telemetry recorder, for front-ends (the
    /// open-loop scheduler) that record their own counters alongside
    /// the engine's.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Takes a deterministic, serializable [`Snapshot`] of everything
    /// recorded so far. Allocates; call it outside the serving loop.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Resets all telemetry counters to zero (arenas stay allocated).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Number of embedding tables loaded.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Placement summary for table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn table_report(&self, t: usize) -> TableReport {
        let s = &self.tables[t];
        TableReport {
            tiling: s.tiling,
            part_load: s.assignment.part_load.clone(),
            imbalance: s.assignment.imbalance(),
            cached_lists: s.cache.as_ref().map(|c| c.placed_lists).unwrap_or(0),
            cache_rows_per_part: s
                .cache
                .as_ref()
                .map(|c| c.cache_rows_per_part.clone())
                .unwrap_or_default(),
        }
    }

    /// Runs the embedding layer for one batch: returns the pooled
    /// `batch x dim` embeddings per table and the stage breakdown.
    ///
    /// Uses staging slot 0; [`UpdlrmEngine::serve`](crate::serve)
    /// alternates both slots to double-buffer consecutive batches.
    ///
    /// # Errors
    ///
    /// Malformed batches, out-of-range indices, reference streams
    /// exceeding the input reserve, and simulator faults.
    pub fn run_batch(&mut self, batch: &QueryBatch) -> Result<(Vec<Matrix>, EmbeddingBreakdown)> {
        let routed = self.route_batch(batch)?;
        let mut breakdown = routed.breakdown_seed();
        let scatter = self.scatter_streams(0)?;
        breakdown.stage1_ns = scatter.wall_ns;
        breakdown.energy_pj += scatter.energy_pj;
        let stage2 = self.launch_stage2(routed.batch_size, 0)?;
        stage2.fold_into(&mut breakdown);
        let (pooled, combine_ns, gather) = self.gather_combine(routed.batch_size, 0)?;
        breakdown.stage3_ns = gather.wall_ns;
        breakdown.energy_pj += gather.energy_pj;
        breakdown.combine_ns = combine_ns;
        self.metrics.record_batch(routed.batch_size, &breakdown);
        Ok((pooled, breakdown))
    }

    /// Stage-1 host preprocessing: validates the batch and builds the
    /// per-partition reference streams (padded when `pad_transfers`)
    /// into the engine's [`BatchScratch`], without touching the PIM
    /// array. The routed streams can be scattered into either staging
    /// slot; only the returned counters are batch-specific.
    pub(crate) fn route_batch(&mut self, batch: &QueryBatch) -> Result<RoutedBatch> {
        batch.validate()?;
        if batch.sparse.len() != self.tables.len() {
            return Err(CoreError::InvalidConfig(format!(
                "batch has {} sparse groups, engine has {} tables",
                batch.sparse.len(),
                self.tables.len()
            )));
        }
        let b = batch.batch_size();
        let tasklets = self.config.tasklets;
        for state in &self.tables {
            // The kernel's shared WRAM accumulator block must leave room
            // for per-tasklet locals.
            let row_bytes = state.tiling.row_bytes();
            let acc = b * row_bytes;
            if acc + tasklets * 64 > upmem_sim::arch::WRAM_CAPACITY {
                return Err(CoreError::InvalidConfig(format!(
                    "batch {b} x {row_bytes} B rows needs {acc} B of WRAM accumulators (64 KB available)"
                )));
            }
            // Each MRAM staging slot's partial-sum region was sized for
            // `config.batch_size` samples (x2 slack) at construction; a
            // larger batch would silently overflow into the next region.
            let out_cap = self.config.batch_size * 2;
            if b > out_cap {
                return Err(CoreError::InvalidConfig(format!(
                    "batch of {b} samples exceeds the {out_cap} staged output rows per DPU \
                     (engine was built with config.batch_size = {}; raise it)",
                    self.config.batch_size
                )));
            }
        }

        let mut routed = RoutedBatch {
            batch_size: b,
            route_ns: 0.0,
            cache_hits: 0,
            emt_lookups: 0,
        };
        let mut route_refs = 0usize;
        let UpdlrmEngine {
            tables,
            config,
            scratch,
            metrics,
            drift,
            ..
        } = self;
        let mut k = 0usize; // stream slot index, table-major then part
        for (t, state) in tables.iter().enumerate() {
            let sparse = &batch.sparse[t];
            let parts = state.tiling.row_parts;
            // The refs arena only ever grows: indexed `p * b + s` for
            // this table, each inner Vec keeps its capacity.
            let need = parts * b;
            if scratch.refs.len() < need {
                scratch.refs.resize_with(need, Vec::new);
            }
            let refs = &mut scratch.refs[..need];
            for v in refs.iter_mut() {
                v.clear();
            }
            #[allow(clippy::needless_range_loop)] // s indexes two structures
            for s in 0..b {
                let sample = sparse.sample(s);
                route_refs += sample.len();
                // Sliding-window profile for the replanner: raw row
                // references, before the cache split, so a replan sees
                // the same frequencies a fresh trace profile would.
                if let Some(d) = drift.as_mut() {
                    let w = &mut d.window[t];
                    for &idx in sample {
                        w.record(idx);
                    }
                }
                match &state.cache {
                    Some(cs) => {
                        cs.store
                            .lookup_into(sample, &mut scratch.lookup, &mut scratch.hit);
                        metrics.record_cache_lookup(sample.len(), &scratch.hit);
                        routed.cache_hits += scratch.hit.entries.len() as u64;
                        routed.emt_lookups += scratch.hit.residual.len() as u64;
                        for &e in &scratch.hit.entries {
                            let p = cs.entry_part[e] as usize;
                            refs[p * b + s].push(CACHE_REF_BIT | cs.entry_slot[e]);
                        }
                        for &idx in &scratch.hit.residual {
                            let (p, slot) = Self::route_row(state, idx, s)?;
                            refs[p * b + s].push(slot);
                        }
                    }
                    None => {
                        routed.emt_lookups += sample.len() as u64;
                        for &idx in sample {
                            let (p, slot) = Self::route_row(state, idx, s)?;
                            refs[p * b + s].push(slot);
                        }
                    }
                }
            }
            for p in 0..parts {
                let slot = &mut scratch.streams[k];
                debug_assert_eq!((slot.table, slot.part), (t, p));
                build_stream_into(
                    &refs[p * b..(p + 1) * b],
                    tasklets,
                    config.dedup,
                    &mut scratch.builder,
                    &mut slot.bytes,
                );
                if slot.bytes.len() > config.input_reserve_bytes {
                    return Err(CoreError::CapacityExceeded {
                        partition: p,
                        required: slot.bytes.len(),
                        available: config.input_reserve_bytes,
                    });
                }
                k += 1;
            }
        }
        routed.route_ns = route_refs as f64 * config.route_ns_per_ref;
        if let Some(d) = drift.as_mut() {
            d.batches_in_window += 1;
        }
        if config.pad_transfers {
            let max_len = scratch
                .streams
                .iter()
                .map(|s| s.bytes.len())
                .max()
                .unwrap_or(0);
            for s in &mut scratch.streams {
                s.bytes.resize(max_len, 0);
            }
        }
        Ok(routed)
    }

    /// Stage 1: scatters the routed reference streams (left in
    /// [`BatchScratch`] by [`UpdlrmEngine::route_batch`]) into staging
    /// slot `slot` (each row partition's stream is broadcast to all of
    /// its column slices in a single bus pass). Allocation-free: the
    /// broadcast groups were precomputed at construction.
    pub(crate) fn scatter_streams(&mut self, slot: usize) -> Result<upmem_sim::TransferReport> {
        let UpdlrmEngine {
            sys,
            tables,
            stream_groups,
            scratch,
            metrics,
            ..
        } = self;
        let report =
            sys.scatter_broadcast_with(scratch.streams.iter().zip(stream_groups.iter()).map(
                |(s, ids)| {
                    (
                        ids.as_slice(),
                        tables[s.table].input_base(slot),
                        s.bytes.as_slice(),
                    )
                },
            ))?;
        metrics.record_transfer(true, &report);
        Ok(report)
    }

    /// Stage 2: launches the embedding kernels reading slot `slot`'s
    /// reference streams and writing its partial-sum region (all table
    /// groups run concurrently; the wall is the slowest group).
    ///
    /// The kernels are the prebuilt per-(table, slot) instances: only
    /// `n_samples` changes per batch, and the launch report plus cycle
    /// list are recycled through [`BatchScratch`].
    pub(crate) fn launch_stage2(&mut self, n_samples: usize, slot: usize) -> Result<Stage2Report> {
        let UpdlrmEngine {
            sys,
            kernels,
            table_ids,
            scratch,
            metrics,
            ..
        } = self;
        let mut out = Stage2Report::default();
        scratch.all_cycles.clear();
        for (kset, ids) in kernels.iter_mut().zip(table_ids.iter()) {
            let kernel = &mut kset[slot];
            for task in kernel.tasks.values_mut() {
                task.n_samples = n_samples as u32;
            }
            sys.launch_into(ids, &*kernel, &mut scratch.launch)?;
            let report = &scratch.launch;
            out.wall_ns = out.wall_ns.max(report.wall_ns);
            out.energy_pj += report.energy_pj;
            out.dma_transfers += report.total_dma_transfers();
            out.instrs += report.total_instrs();
            for (id, stats) in &report.per_dpu {
                metrics.record_dpu(id.0 as usize, stats);
            }
            scratch
                .all_cycles
                .extend(report.per_dpu.iter().map(|(_, s)| s.cycles.0));
        }
        let all_cycles = &scratch.all_cycles;
        if !all_cycles.is_empty() {
            let max = *all_cycles.iter().max().expect("nonempty") as f64;
            let mean = all_cycles.iter().sum::<u64>() as f64 / all_cycles.len() as f64;
            out.lookup_imbalance = if mean > 0.0 { max / mean } else { 1.0 };
            metrics.record_launch(out.lookup_imbalance);
        }
        Ok(out)
    }

    /// Stage 3 + host combine: gathers slot `slot`'s partial-sum rows
    /// and assembles the pooled `batch x dim` matrices. Returns the
    /// pooled embeddings, the modeled host combine time, and the bus
    /// transfer report.
    pub(crate) fn gather_combine(
        &mut self,
        n_samples: usize,
        slot: usize,
    ) -> Result<(Vec<Matrix>, f64, upmem_sim::TransferReport)> {
        let b = n_samples;
        let UpdlrmEngine {
            sys,
            tables,
            gather_meta,
            scratch,
            config,
            metrics,
            ..
        } = self;
        scratch.requests.clear();
        for state in tables.iter() {
            let row_bytes = state.tiling.row_bytes();
            for p in 0..state.tiling.row_parts {
                for c in 0..state.tiling.col_slices {
                    scratch.requests.push((
                        state.dpu(p, c),
                        state.output_base(slot),
                        b * row_bytes,
                    ));
                }
            }
        }
        let gather_report = sys.gather_into(&scratch.requests, &mut scratch.gather_buf)?;
        metrics.record_transfer(false, &gather_report);

        // Pooled outputs come from the recycle pool when a returned set
        // has one matrix per table; each matrix is reshaped in place to
        // this batch's size (capacity only grows, so after a set has
        // seen the largest batch the reuse is allocation-free even when
        // batch sizes vary, as the scheduler's partial batches do).
        let mut pooled: Vec<Matrix> = match scratch.matrix_pool.pop() {
            Some(mut set) if set.len() == tables.len() => {
                for (m, s) in set.iter_mut().zip(tables.iter()) {
                    m.reset_zeroed(b, s.dim);
                }
                set
            }
            _ => tables.iter().map(|s| Matrix::zeros(b, s.dim)).collect(),
        };
        let mut combine_adds = 0u64;
        let mut off = 0usize;
        for (&(_, _, len), &(t, c)) in scratch.requests.iter().zip(gather_meta.iter()) {
            let buf = &scratch.gather_buf[off..off + len];
            off += len;
            let state = &tables[t];
            let n_c = state.tiling.n_c;
            let row_bytes = state.tiling.row_bytes();
            for s in 0..b {
                let row = &buf[s * row_bytes..(s + 1) * row_bytes];
                let out = pooled[t].row_mut(s);
                simd::add_assign_le(&mut out[c * n_c..(c + 1) * n_c], row);
                combine_adds += n_c as u64;
            }
        }
        let combine_ns = combine_adds as f64 * config.combine_ns_per_add;
        Ok((pooled, combine_ns, gather_report))
    }

    /// Returns a pooled-output set for reuse by a later
    /// [`UpdlrmEngine::gather_combine`]. The serving path recycles every
    /// set after handing it to the sink, which is what makes steady-state
    /// serving allocation-free; `run_batch` callers keep theirs.
    pub(crate) fn recycle_pooled(&mut self, set: Vec<Matrix>) {
        if self.scratch.matrix_pool.len() <= STAGING_SLOTS {
            self.scratch.matrix_pool.push(set);
        }
    }

    fn route_row(state: &TableState, idx: u64, sample: usize) -> Result<(usize, u32)> {
        let r = idx as usize;
        if r >= state.assignment.part_of_row.len() {
            return Err(CoreError::Model(dlrm_model::ModelError::IndexOutOfRange {
                index: idx,
                rows: state.assignment.part_of_row.len(),
            }));
        }
        let p = state.assignment.part_of_row[r];
        let slot = state.assignment.slot_of_row[r];
        if slot == partition::CACHED_ROW_SLOT {
            return Err(CoreError::InvalidConfig(format!(
                "row {idx} is cache-resident but was routed to the EMT path"
            )));
        }
        if p == partition::REPLICATED_ROW_PART {
            // Replicated rows live in every partition at the same slot;
            // spread their traffic round-robin by (row, sample).
            let parts = state.tiling.row_parts;
            return Ok(((r + sample) % parts, slot));
        }
        Ok((p as usize, slot))
    }

    /// Advances the replanner to modeled instant `now_ns`: completes a
    /// migration whose staged scatter has drained (the atomic flip), or
    /// checks the replan policy against the sliding window and begins a
    /// new migration. A no-op unless
    /// [`UpdlrmConfig::replan`](crate::config::UpdlrmConfig) is
    /// enabled. Front-ends call this between batches — the scheduler's
    /// event loop ticks it at every launch instant.
    ///
    /// # Errors
    ///
    /// Simulator faults while scattering the staged tiles. Planning
    /// failures (a placement that no longer fits the staged regions)
    /// are *not* errors: the replan is declined, counted in
    /// [`DriftSnapshot::replans_skipped`](crate::telemetry::DriftSnapshot),
    /// and the window resets.
    pub fn on_tick(&mut self, now_ns: u64) -> Result<()> {
        let Some(drift) = self.drift.as_ref() else {
            return Ok(());
        };
        if let Some(pending) = &drift.pending {
            if now_ns >= pending.done_at_ns {
                self.complete_migration(now_ns);
            }
            return Ok(());
        }
        let due = match self.config.replan {
            ReplanPolicy::Off => false,
            ReplanPolicy::Periodic { every_batches } => drift.batches_in_window >= every_batches,
            ReplanPolicy::Imbalance {
                threshold,
                min_batches,
            } => {
                drift.batches_in_window >= min_batches
                    && self
                        .tables
                        .iter()
                        .zip(drift.window.iter())
                        .map(|(s, w)| replan::window_imbalance(&s.assignment, w))
                        .fold(1.0f64, f64::max)
                        > threshold
            }
        };
        if due {
            self.begin_migration(now_ns)?;
        }
        Ok(())
    }

    /// True while a migration's staged scatter has not yet flipped.
    pub fn migration_in_flight(&self) -> bool {
        self.drift.as_ref().is_some_and(|d| d.pending.is_some())
    }

    /// The telemetry snapshot captured mid-first-migration (after the
    /// staging scatter was charged, before the flip) — the fixed-seed
    /// golden CI byte-compares. `None` until the first migration
    /// begins, or when telemetry is off.
    pub fn drift_snapshot(&self) -> Option<&Snapshot> {
        self.drift.as_ref().and_then(|d| d.first_snapshot.as_ref())
    }

    /// Plans a fresh placement for every table from the sliding window,
    /// scatters the re-partitioned tiles into the inactive MRAM
    /// regions, and charges the modeled migration cost. The flip is
    /// deferred to the modeled instant the scatter completes
    /// ([`UpdlrmEngine::on_tick`]); until then serving continues on the
    /// old placement, whose regions the scatter never touches.
    fn begin_migration(&mut self, now_ns: u64) -> Result<()> {
        // Plan phase (no mutation): any failure — a plan that cannot
        // fit the staged regions, an infeasible cache placement — or a
        // plan identical to the current placement declines the replan.
        let drift = self.drift.as_ref().expect("replanning enabled");
        let mut flips: Vec<TableFlip> = Vec::with_capacity(self.tables.len());
        let mut changed = false;
        let mut feasible = true;
        'plan: for (t, state) in self.tables.iter().enumerate() {
            let profile = &drift.window[t];
            let rows = state.assignment.part_of_row.len();
            let parts = state.tiling.row_parts;
            let flip = match self.config.strategy {
                PartitionStrategy::CacheAware => {
                    let cs = state.cache.as_ref().expect("CA table has cache state");
                    let planned = partition::cache_aware(
                        rows,
                        parts,
                        state.emt_region_rows,
                        state.cache_region_rows,
                        profile,
                        &cs.lists,
                    )
                    .and_then(|ca| {
                        let store =
                            PartialSumCache::materialize(&ca.placed_lists, &self.host_tables[t])?;
                        Ok((ca, store))
                    });
                    let (ca, store) = match planned {
                        Ok(x) => x,
                        Err(_) => {
                            feasible = false;
                            break 'plan;
                        }
                    };
                    let (entry_part, entry_slot) = cache_entry_maps(&ca);
                    let placed = ca.placed_lists.lists.len();
                    TableFlip {
                        assignment: ca.rows,
                        replicas: Vec::new(),
                        cache: Some(CacheFlip {
                            store,
                            entry_part,
                            entry_slot,
                            cache_rows_per_part: ca.cache_rows_per_part,
                            placed_lists: placed,
                        }),
                    }
                }
                strategy => {
                    match replan::plan_rows(
                        strategy,
                        rows,
                        parts,
                        state.emt_region_rows,
                        self.config.replicate_top,
                        profile,
                    ) {
                        Ok((assignment, replicas)) => TableFlip {
                            assignment,
                            replicas,
                            cache: None,
                        },
                        Err(_) => {
                            feasible = false;
                            break 'plan;
                        }
                    }
                }
            };
            changed |= flip.assignment != state.assignment;
            flips.push(flip);
        }

        // The window is consumed by the decision either way.
        {
            let drift = self.drift.as_mut().expect("replanning enabled");
            for w in &mut drift.window {
                *w = FreqProfile::new(w.num_items());
            }
            drift.batches_in_window = 0;
        }
        if !feasible || !changed {
            self.metrics.record_replan_skip();
            return Ok(());
        }

        // Scatter phase: write the staged tiles into the inactive
        // regions (functionally safe — nothing serves from them) and
        // accumulate the modeled cost: one host->MRAM bulk pass over
        // every staged byte, plus the slowest DPU's DMA-engine time
        // absorbing its rows (the `charge_dma_repeat` bulk mirror).
        let inactive = self.active_emt ^ 1;
        let mut total_bytes = 0usize;
        let mut rows_moved = 0u64;
        let mut max_dpu = Cycles(0);
        {
            let UpdlrmEngine {
                sys,
                tables,
                host_tables,
                config,
                ..
            } = self;
            let cost = &config.cost;
            let dtype = config.embed_dtype;
            for (t, flip) in flips.iter().enumerate() {
                let state = &tables[t];
                let table = &host_tables[t];
                let tiling = &state.tiling;
                let n_c = tiling.n_c;
                let emt_row_bytes = dtype.stored_row_bytes(n_c);
                let row_bytes = tiling.row_bytes();
                let rc = flip.replicas.len();
                let local = replan::rows_in_parts(&flip.assignment, rc);
                let entries = flip.cache.as_ref().map(|cf| {
                    entries_in_parts(&cf.entry_part, &cf.entry_slot, &cf.cache_rows_per_part)
                });
                for p in 0..tiling.row_parts {
                    for c in 0..tiling.col_slices {
                        let dpu = state.dpu(p, c);
                        let n = rc + local[p].len();
                        let mut buf = Vec::with_capacity(n * emt_row_bytes);
                        build_emt_tile(table, dtype, n_c, c, &flip.replicas, &local[p], &mut buf)?;
                        if !buf.is_empty() {
                            sys.load_mram(dpu, state.emt_bases[inactive], &buf)?;
                        }
                        rows_moved += n as u64;
                        total_bytes += buf.len();
                        let cyc = cost.bulk_rows_dma_cycles(emt_row_bytes, n as u64);
                        max_dpu = Cycles(max_dpu.0.max(cyc.0));
                        if let (Some(cf), Some(ep)) = (flip.cache.as_ref(), entries.as_ref()) {
                            let mut cbuf = Vec::with_capacity(ep[p].len() * row_bytes);
                            build_cache_tile(&cf.store, &ep[p], n_c, c, &mut cbuf);
                            if !cbuf.is_empty() {
                                sys.load_mram(dpu, state.cache_bases[inactive], &cbuf)?;
                            }
                            rows_moved += ep[p].len() as u64;
                            total_bytes += cbuf.len();
                            let cyc = cost.bulk_rows_dma_cycles(row_bytes, ep[p].len() as u64);
                            max_dpu = Cycles(max_dpu.0.max(cyc.0));
                        }
                    }
                }
            }
        }
        let cost = &self.config.cost;
        let migration_ns = cost.host_to_mram_ns(total_bytes)
            + cost.host_transfer_base_ns
            + cost.cycles_to_ns(max_dpu);
        let done_at_ns = now_ns.saturating_add(migration_ns.max(0.0).ceil() as u64);
        self.metrics
            .record_replan_begin(rows_moved, total_bytes as u64, migration_ns);
        // The mid-migration golden: counters show the replan charged
        // but not yet flipped.
        let snapshot = {
            let drift = self.drift.as_ref().expect("replanning enabled");
            (self.config.telemetry && drift.first_snapshot.is_none())
                .then(|| self.metrics.snapshot())
        };
        let drift = self.drift.as_mut().expect("replanning enabled");
        drift.pending = Some(PendingMigration {
            done_at_ns,
            tables: flips,
        });
        if let Some(s) = snapshot {
            drift.first_snapshot = Some(s);
        }
        Ok(())
    }

    /// The atomic flip: installs the staged placement — assignments,
    /// replica blocks, cache maps — and repoints every kernel task's
    /// EMT/cache bases at the freshly scattered regions. Between two
    /// batches this is instantaneous in modeled time; the migration's
    /// cost was charged when the scatter was staged.
    fn complete_migration(&mut self, now_ns: u64) {
        let drift = self.drift.as_mut().expect("replanning enabled");
        let pending = drift.pending.take().expect("migration in flight");
        for (state, flip) in self.tables.iter_mut().zip(pending.tables) {
            state.assignment = flip.assignment;
            state.replicas = flip.replicas;
            if let Some(cf) = flip.cache {
                let cs = state.cache.as_mut().expect("CA table has cache state");
                cs.store = cf.store;
                cs.entry_part = cf.entry_part;
                cs.entry_slot = cf.entry_slot;
                cs.cache_rows_per_part = cf.cache_rows_per_part;
                cs.placed_lists = cf.placed_lists;
            }
        }
        self.active_emt ^= 1;
        let active = self.active_emt;
        for (state, kset) in self.tables.iter().zip(self.kernels.iter_mut()) {
            for kernel in kset.iter_mut() {
                for task in kernel.tasks.values_mut() {
                    task.emt_base = state.emt_bases[active];
                    task.cache_base = state.cache_bases[active];
                }
            }
        }
        self.metrics.record_migration_flip(now_ns);
    }

    /// Full DLRM inference for one batch: embedding layer on the PIM
    /// array, dense layers on the (functional) CPU model. Returns CTR
    /// probabilities and the embedding breakdown.
    ///
    /// # Errors
    ///
    /// Propagates [`UpdlrmEngine::run_batch`] and model errors.
    pub fn run_inference(
        &mut self,
        model: &Dlrm,
        batch: &QueryBatch,
    ) -> Result<(Vec<f32>, EmbeddingBreakdown)> {
        let (pooled, breakdown) = self.run_batch(batch)?;
        let out = model.forward_with_pooled(batch, &pooled)?;
        Ok((out, breakdown))
    }
}
