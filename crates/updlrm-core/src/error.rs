//! Error type for UpDLRM core operations.

use std::fmt;

/// Errors produced by partitioning, placement and engine execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying PIM simulator rejected an operation.
    Sim(upmem_sim::SimError),
    /// The DLRM substrate rejected an operation.
    Model(dlrm_model::ModelError),
    /// No feasible tiling exists under the paper's constraints
    /// (Eq. 2–3) for the given table and DPU budget.
    NoFeasibleTiling {
        /// Table rows.
        rows: usize,
        /// Table columns (embedding dim).
        cols: usize,
        /// DPUs available for the table.
        dpus: usize,
    },
    /// A partition exceeded its MRAM capacity.
    CapacityExceeded {
        /// Partition index.
        partition: usize,
        /// Bytes required.
        required: usize,
        /// Bytes available.
        available: usize,
    },
    /// Invalid engine or partitioning configuration.
    InvalidConfig(String),
    /// An internal scheduling invariant was violated — a bug in the
    /// event loop or runtime, not a user error. Returned (not just
    /// debug-asserted) so release builds fail loudly instead of
    /// silently continuing with corrupted time accounting.
    Invariant(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "pim simulator: {e}"),
            CoreError::Model(e) => write!(f, "dlrm model: {e}"),
            CoreError::NoFeasibleTiling { rows, cols, dpus } => write!(
                f,
                "no feasible tiling for a {rows}x{cols} table on {dpus} dpus under Eq. 2-3"
            ),
            CoreError::CapacityExceeded {
                partition,
                required,
                available,
            } => write!(
                f,
                "partition {partition} needs {required} bytes but only {available} available"
            ),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Invariant(msg) => write!(f, "scheduling invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<upmem_sim::SimError> for CoreError {
    fn from(e: upmem_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<dlrm_model::ModelError> for CoreError {
    fn from(e: dlrm_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

/// Convenience alias for core results.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors_with_source() {
        let e = CoreError::from(upmem_sim::SimError::EmptyDma);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("pim simulator"));
    }

    #[test]
    fn display_no_feasible_tiling() {
        let e = CoreError::NoFeasibleTiling {
            rows: 10,
            cols: 32,
            dpus: 4,
        };
        assert!(e.to_string().contains("10x32"));
    }
}
