//! Row-to-partition assignment: uniform (§3.1), non-uniform (§3.2) and
//! cache-aware non-uniform (§3.3, Algorithm 1).
//!
//! All three strategies operate on the *row partitions* of a tiling
//! (each row partition is replicated across the tiling's column
//! slices). Their output is a [`RowAssignment`] mapping every table row
//! to a partition and a slot inside that partition's MRAM tile, plus
//! the predicted access load per partition used by workload-balance
//! analyses (Fig. 6).

use crate::error::{CoreError, Result};
use cooccur_cache::CacheListSet;
use workloads::FreqProfile;

/// Which partitioning strategy to run (paper's U / NU / CA, plus the
/// replication extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PartitionStrategy {
    /// §3.1 uniform: contiguous equal row blocks.
    Uniform,
    /// §3.2 non-uniform: greedy frequency-balanced bin packing.
    NonUniform,
    /// §3.3 cache-aware non-uniform: Algorithm 1, balancing EMT and
    /// partial-sum-cache traffic jointly.
    CacheAware,
    /// Extension: non-uniform packing with the hottest rows *replicated*
    /// into every partition, their lookups spread round-robin. Greedy
    /// bin packing cannot balance below the hottest single row's
    /// frequency (an LPT bound); replication removes that floor
    /// (`UpdlrmConfig::replicate_top` sets the replica count).
    Replicated,
}

impl std::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionStrategy::Uniform => write!(f, "U"),
            PartitionStrategy::NonUniform => write!(f, "NU"),
            PartitionStrategy::CacheAware => write!(f, "CA"),
            PartitionStrategy::Replicated => write!(f, "NU+R"),
        }
    }
}

/// Sentinel slot for rows that live in the partial-sum cache instead of
/// the EMT region (their embedding is only reachable through cached
/// combination rows).
pub const CACHED_ROW_SLOT: u32 = u32::MAX;

/// Sentinel partition for rows replicated into *every* partition (the
/// [`PartitionStrategy::Replicated`] extension); their `slot_of_row` is
/// the replica-block slot shared by all partitions.
pub const REPLICATED_ROW_PART: u32 = u32::MAX;

/// Assignment of every table row to a row partition.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RowAssignment {
    /// Partition of each row (`len == rows`).
    pub part_of_row: Vec<u32>,
    /// Slot of each row inside its partition's EMT region, or
    /// [`CACHED_ROW_SLOT`] for cache-resident rows.
    pub slot_of_row: Vec<u32>,
    /// EMT rows stored per partition.
    pub rows_per_part: Vec<u32>,
    /// Predicted accesses per partition (frequency-weighted, after
    /// cache-benefit adjustment for CA) — the quantity Figs. 5/6 plot.
    pub part_load: Vec<f64>,
}

impl RowAssignment {
    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.rows_per_part.len()
    }

    /// Load imbalance: max partition load over mean (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.part_load.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.part_load.iter().sum::<f64>() / self.part_load.len().max(1) as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    fn validate_capacity(&self, capacity_rows: usize) -> Result<()> {
        for (p, &used) in self.rows_per_part.iter().enumerate() {
            if used as usize > capacity_rows {
                return Err(CoreError::CapacityExceeded {
                    partition: p,
                    required: used as usize,
                    available: capacity_rows,
                });
            }
        }
        Ok(())
    }
}

/// §3.1 uniform partitioning: partition `p` holds the contiguous block
/// of rows `[p * n_r, (p+1) * n_r)`.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] for zero partitions/rows;
/// [`CoreError::CapacityExceeded`] if a block exceeds `capacity_rows`.
pub fn uniform(
    rows: usize,
    parts: usize,
    capacity_rows: usize,
    profile: &FreqProfile,
) -> Result<RowAssignment> {
    check_inputs(rows, parts, profile)?;
    let n_r = rows.div_ceil(parts);
    let mut part_of_row = Vec::with_capacity(rows);
    let mut slot_of_row = Vec::with_capacity(rows);
    let mut rows_per_part = vec![0u32; parts];
    let mut part_load = vec![0.0f64; parts];
    for r in 0..rows {
        let p = r / n_r;
        part_of_row.push(p as u32);
        slot_of_row.push((r - p * n_r) as u32);
        rows_per_part[p] += 1;
        part_load[p] += profile.count(r as u64) as f64;
    }
    let a = RowAssignment {
        part_of_row,
        slot_of_row,
        rows_per_part,
        part_load,
    };
    a.validate_capacity(capacity_rows)?;
    Ok(a)
}

/// §3.2 non-uniform partitioning: rows sorted by descending access
/// frequency, each assigned to the least-loaded partition with spare
/// capacity (greedy bin packing with a fixed bin count).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] for zero partitions/rows;
/// [`CoreError::CapacityExceeded`] when every partition is full.
pub fn non_uniform(
    rows: usize,
    parts: usize,
    capacity_rows: usize,
    profile: &FreqProfile,
) -> Result<RowAssignment> {
    check_inputs(rows, parts, profile)?;
    let mut part_of_row = vec![0u32; rows];
    let mut slot_of_row = vec![0u32; rows];
    let mut rows_per_part = vec![0u32; parts];
    let mut part_load = vec![0.0f64; parts];
    for item in profile.items_by_frequency_in_range(rows) {
        let r = item as usize;
        let p = least_loaded_with_room(&part_load, &rows_per_part, 1, capacity_rows).ok_or(
            CoreError::CapacityExceeded {
                partition: 0,
                required: rows,
                available: capacity_rows * parts,
            },
        )?;
        part_of_row[r] = p as u32;
        slot_of_row[r] = rows_per_part[p];
        rows_per_part[p] += 1;
        part_load[p] += profile.count(item) as f64;
    }
    Ok(RowAssignment {
        part_of_row,
        slot_of_row,
        rows_per_part,
        part_load,
    })
}

/// Extension: non-uniform packing with the `replicate_top` hottest rows
/// replicated into every partition's *replica block* (slots
/// `0..replicate_top`, identical layout on every partition). Remaining
/// rows are packed greedily with slots starting after the block. The
/// returned `part_load` spreads a replicated row's frequency evenly,
/// matching the engine's round-robin routing.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] for zero partitions/rows;
/// [`CoreError::CapacityExceeded`] when replica block + local rows
/// exceed `capacity_rows`.
pub fn replicated_non_uniform(
    rows: usize,
    parts: usize,
    capacity_rows: usize,
    profile: &FreqProfile,
    replicate_top: usize,
) -> Result<RowAssignment> {
    check_inputs(rows, parts, profile)?;
    let by_freq = profile.items_by_frequency_in_range(rows);
    let replicate_top = replicate_top.min(rows);
    if replicate_top > capacity_rows {
        return Err(CoreError::CapacityExceeded {
            partition: 0,
            required: replicate_top,
            available: capacity_rows,
        });
    }
    let mut part_of_row = vec![0u32; rows];
    let mut slot_of_row = vec![0u32; rows];
    let mut rows_per_part = vec![0u32; parts];
    let mut part_load = vec![0.0f64; parts];

    // Replica block: the hottest *in-range* rows, same slot on every
    // partition. The profile may cover more items than the table has
    // rows (check_inputs only requires `num_items >= rows`), and
    // indexing `part_of_row[r]` with a foreign hot item used to panic —
    // `items_by_frequency_in_range` is the shared guard (also used by
    // the placement planner) that keeps them out.
    let mut is_replicated = vec![false; rows];
    for (slot, &item) in by_freq.iter().take(replicate_top).enumerate() {
        let r = item as usize;
        part_of_row[r] = REPLICATED_ROW_PART;
        slot_of_row[r] = slot as u32;
        is_replicated[r] = true;
        let share = profile.count(item) as f64 / parts as f64;
        for load in part_load.iter_mut() {
            *load += share;
        }
    }

    // Remaining rows: greedy packing into slots after the block.
    let local_capacity = capacity_rows - replicate_top;
    for &item in &by_freq {
        let r = item as usize;
        if is_replicated[r] {
            continue;
        }
        let p = least_loaded_with_room(&part_load, &rows_per_part, 1, local_capacity).ok_or(
            CoreError::CapacityExceeded {
                partition: 0,
                required: rows,
                available: capacity_rows * parts,
            },
        )?;
        part_of_row[r] = p as u32;
        slot_of_row[r] = replicate_top as u32 + rows_per_part[p];
        rows_per_part[p] += 1;
        part_load[p] += profile.count(item) as f64;
    }
    Ok(RowAssignment {
        part_of_row,
        slot_of_row,
        rows_per_part,
        part_load,
    })
}

/// Output of [`cache_aware`]: the row assignment plus which cache lists
/// were actually placed (and where).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheAwareAssignment {
    /// Row assignment (cache-resident rows carry [`CACHED_ROW_SLOT`]).
    pub rows: RowAssignment,
    /// The cache lists that fit; order preserved from the input set.
    pub placed_lists: CacheListSet,
    /// Partition of each placed list (aligned with `placed_lists`).
    pub list_part: Vec<u32>,
    /// Cache combination rows used per partition.
    pub cache_rows_per_part: Vec<u32>,
}

/// §3.3 Algorithm 1 — cache-aware non-uniform partitioning.
///
/// Faithful to the paper's pseudocode:
/// 1. sort `obj_freq` descending (line 2);
/// 2. for each cache list (line 4): `benefit = list[-1]` (line 5);
///    place the whole list on the partition with the lowest running
///    `part_count` that has cache capacity left (line 6); charge each
///    item's frequency (line 9) and credit the benefit (line 10);
/// 3. every cache-miss item goes to the lowest-`part_count` partition
///    with EMT capacity left (lines 11–15).
///
/// Lists that fit nowhere degrade gracefully: their items are treated
/// as cache misses (the paper assumes sufficient capacity).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] for zero partitions/rows;
/// [`CoreError::CapacityExceeded`] when EMT space runs out.
pub fn cache_aware(
    rows: usize,
    parts: usize,
    emt_capacity_rows: usize,
    cache_capacity_rows: usize,
    profile: &FreqProfile,
    cache_res: &CacheListSet,
) -> Result<CacheAwareAssignment> {
    check_inputs(rows, parts, profile)?;
    let mut part_of_row = vec![0u32; rows];
    let mut slot_of_row = vec![0u32; rows];
    let mut rows_per_part = vec![0u32; parts];
    let mut cache_rows_per_part = vec![0u32; parts];
    let mut part_count = vec![0.0f64; parts];
    let mut is_cached = vec![false; rows];
    let mut placed = CacheListSet::default();
    let mut list_part = Vec::new();

    // Lines 4-10: place each cache list.
    for list in &cache_res.lists {
        if list.items.iter().any(|&i| i as usize >= rows) {
            continue; // defensive: ignore lists referencing foreign items
        }
        let need = list.num_combinations() as u32;
        let p =
            least_loaded_with_room(&part_count, &cache_rows_per_part, need, cache_capacity_rows);
        let Some(p) = p else {
            continue; // no cache room anywhere: items fall through to EMT
        };
        for &item in &list.items {
            let r = item as usize;
            part_of_row[r] = p as u32;
            slot_of_row[r] = CACHED_ROW_SLOT;
            is_cached[r] = true;
            part_count[p] += profile.count(item) as f64; // line 9
        }
        part_count[p] -= list.benefit; // line 10
        cache_rows_per_part[p] += need;
        list_part.push(p as u32);
        placed.lists.push(list.clone());
    }

    // Lines 11-15: place cache-miss items by descending frequency.
    for item in profile.items_by_frequency_in_range(rows) {
        let r = item as usize;
        if is_cached[r] {
            continue;
        }
        let p = least_loaded_with_room(&part_count, &rows_per_part, 1, emt_capacity_rows).ok_or(
            CoreError::CapacityExceeded {
                partition: 0,
                required: rows,
                available: emt_capacity_rows * parts,
            },
        )?;
        part_of_row[r] = p as u32;
        slot_of_row[r] = rows_per_part[p];
        rows_per_part[p] += 1;
        part_count[p] += profile.count(item) as f64;
    }

    let rows_assignment = RowAssignment {
        part_of_row,
        slot_of_row,
        rows_per_part,
        part_load: part_count,
    };
    Ok(CacheAwareAssignment {
        rows: rows_assignment,
        placed_lists: placed,
        list_part,
        cache_rows_per_part,
    })
}

fn check_inputs(rows: usize, parts: usize, profile: &FreqProfile) -> Result<()> {
    if rows == 0 || parts == 0 {
        return Err(CoreError::InvalidConfig(format!(
            "rows ({rows}) and partitions ({parts}) must be nonzero"
        )));
    }
    if profile.num_items() < rows {
        return Err(CoreError::InvalidConfig(format!(
            "frequency profile covers {} items but table has {rows} rows",
            profile.num_items()
        )));
    }
    Ok(())
}

/// The partition with minimum load among those with at least `need`
/// units of room under `capacity`. Ties break toward the lower index.
fn least_loaded_with_room(load: &[f64], used: &[u32], need: u32, capacity: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for p in 0..load.len() {
        if used[p] as usize + need as usize > capacity {
            continue;
        }
        match best {
            None => best = Some(p),
            Some(b) if load[p] < load[b] => best = Some(p),
            _ => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooccur_cache::CacheList;

    /// A profile where item popularity decays steeply (item 0 hottest)
    /// but no single item exceeds a balanced bin's share, so greedy
    /// packing can in principle balance it.
    fn skewed_profile(rows: usize) -> FreqProfile {
        let mut p = FreqProfile::new(rows);
        for i in 0..rows {
            let count = (rows - i) * 10;
            for _ in 0..count {
                p.record(i as u64);
            }
        }
        p
    }

    #[test]
    fn uniform_assigns_contiguous_blocks() {
        let p = skewed_profile(10);
        let a = uniform(10, 2, 100, &p).unwrap();
        assert_eq!(a.part_of_row, vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1]);
        assert_eq!(a.slot_of_row, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
        assert_eq!(a.rows_per_part, vec![5, 5]);
    }

    #[test]
    fn uniform_is_imbalanced_on_skewed_data() {
        let p = skewed_profile(64);
        let a = uniform(64, 8, 100, &p).unwrap();
        assert!(
            a.imbalance() > 1.5,
            "skew should surface: {}",
            a.imbalance()
        );
    }

    #[test]
    fn non_uniform_balances_skewed_data() {
        // The Fig. 6 claim: NU makes accesses per partition much more
        // balanced than U on a skewed trace.
        let p = skewed_profile(64);
        let u = uniform(64, 8, 100, &p).unwrap();
        let nu = non_uniform(64, 8, 100, &p).unwrap();
        assert!(nu.imbalance() < u.imbalance());
        assert!(nu.imbalance() < 1.5, "NU imbalance {}", nu.imbalance());
    }

    #[test]
    fn non_uniform_places_every_row_exactly_once() {
        let p = skewed_profile(37);
        let a = non_uniform(37, 4, 100, &p).unwrap();
        assert_eq!(a.part_of_row.len(), 37);
        let total: u32 = a.rows_per_part.iter().sum();
        assert_eq!(total, 37);
        // slots within a partition are unique and dense
        for part in 0..4u32 {
            let mut slots: Vec<u32> = (0..37)
                .filter(|&r| a.part_of_row[r] == part)
                .map(|r| a.slot_of_row[r])
                .collect();
            slots.sort_unstable();
            let expect: Vec<u32> = (0..slots.len() as u32).collect();
            assert_eq!(slots, expect);
        }
    }

    #[test]
    fn non_uniform_respects_capacity() {
        let p = skewed_profile(10);
        // capacity 3 rows x 2 parts = 6 < 10 rows -> error
        assert!(matches!(
            non_uniform(10, 2, 3, &p),
            Err(CoreError::CapacityExceeded { .. })
        ));
        // capacity 5 exactly fits
        let a = non_uniform(10, 2, 5, &p).unwrap();
        assert_eq!(a.rows_per_part, vec![5, 5]);
    }

    #[test]
    fn uniform_rejects_overfull_blocks() {
        let p = skewed_profile(10);
        assert!(matches!(
            uniform(10, 2, 4, &p),
            Err(CoreError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn zero_inputs_rejected() {
        let p = skewed_profile(4);
        assert!(uniform(0, 2, 10, &p).is_err());
        assert!(non_uniform(4, 0, 10, &p).is_err());
        let small = FreqProfile::new(2);
        assert!(uniform(4, 2, 10, &small).is_err());
    }

    fn two_lists() -> CacheListSet {
        CacheListSet {
            lists: vec![
                CacheList {
                    items: vec![0, 1],
                    benefit: 500.0,
                },
                CacheList {
                    items: vec![2, 3],
                    benefit: 300.0,
                },
            ],
        }
    }

    #[test]
    fn cache_aware_places_lists_and_misses() {
        let p = skewed_profile(16);
        let ca = cache_aware(16, 4, 100, 16, &p, &two_lists()).unwrap();
        assert_eq!(ca.placed_lists.lists.len(), 2);
        assert_eq!(ca.list_part.len(), 2);
        // Cached rows carry the sentinel slot.
        for r in 0..4usize {
            assert_eq!(ca.rows.slot_of_row[r], CACHED_ROW_SLOT, "row {r}");
        }
        // Non-cached rows have real slots.
        for r in 4..16usize {
            assert_ne!(ca.rows.slot_of_row[r], CACHED_ROW_SLOT);
        }
        // Every partition's EMT slots dense.
        let total_emt: u32 = ca.rows.rows_per_part.iter().sum();
        assert_eq!(total_emt, 12);
        // Cache rows: each 2-item list has 3 combos.
        assert_eq!(ca.cache_rows_per_part.iter().sum::<u32>(), 6);
    }

    #[test]
    fn cache_aware_credits_benefit() {
        // With a huge benefit, the partition hosting the list should end
        // up with *less* accounted load than its raw frequency sum, so
        // the next assignments gravitate toward it.
        let p = skewed_profile(8);
        let lists = CacheListSet {
            lists: vec![CacheList {
                items: vec![0, 1],
                benefit: 1e6,
            }],
        };
        let ca = cache_aware(8, 2, 100, 8, &p, &lists).unwrap();
        let cache_part = ca.list_part[0] as usize;
        // Load was credited far below zero, so everything else piles on.
        assert!(ca.rows.part_load[cache_part] < ca.rows.part_load[1 - cache_part]);
    }

    #[test]
    fn cache_aware_without_capacity_degrades_to_non_uniform() {
        let p = skewed_profile(16);
        let ca = cache_aware(16, 4, 100, 0, &p, &two_lists()).unwrap();
        assert!(ca.placed_lists.is_empty());
        assert_eq!(ca.rows.rows_per_part.iter().sum::<u32>(), 16);
        assert!(ca.rows.slot_of_row.iter().all(|&s| s != CACHED_ROW_SLOT));
        // And the result is balanced like NU.
        let nu = non_uniform(16, 4, 100, &p).unwrap();
        assert!((ca.rows.imbalance() - nu.imbalance()).abs() < 0.5);
    }

    #[test]
    fn cache_aware_balances_combined_load() {
        // The point of Alg. 1: after caching, combined (EMT + cache)
        // accesses stay balanced. Compare against naively running NU and
        // piling both lists onto one partition.
        let p = skewed_profile(64);
        let lists = CacheListSet {
            lists: vec![
                CacheList {
                    items: vec![0, 1, 2],
                    benefit: 800.0,
                },
                CacheList {
                    items: vec![3, 4],
                    benefit: 400.0,
                },
            ],
        };
        let ca = cache_aware(64, 8, 100, 16, &p, &lists).unwrap();
        // Lists land on different partitions (both are load magnets).
        assert_ne!(ca.list_part[0], ca.list_part[1]);
        assert!(
            ca.rows.imbalance() < 1.6,
            "CA imbalance {}",
            ca.rows.imbalance()
        );
    }

    #[test]
    fn cache_aware_ignores_out_of_range_lists() {
        let p = skewed_profile(8);
        let lists = CacheListSet {
            lists: vec![CacheList {
                items: vec![100, 101],
                benefit: 1.0,
            }],
        };
        let ca = cache_aware(8, 2, 100, 8, &p, &lists).unwrap();
        assert!(ca.placed_lists.is_empty());
    }

    #[test]
    fn strategy_display_matches_paper_tags() {
        assert_eq!(PartitionStrategy::Uniform.to_string(), "U");
        assert_eq!(PartitionStrategy::NonUniform.to_string(), "NU");
        assert_eq!(PartitionStrategy::CacheAware.to_string(), "CA");
    }
}

#[cfg(test)]
mod replication_tests {
    use super::*;

    /// One dominant item plus a flat tail: greedy NU cannot balance
    /// below the dominant item's frequency.
    fn dominated_profile(rows: usize, hot_count: u32) -> FreqProfile {
        let mut p = FreqProfile::new(rows);
        for _ in 0..hot_count {
            p.record(0);
        }
        for i in 1..rows {
            p.record(i as u64);
        }
        p
    }

    #[test]
    fn replication_beats_greedy_packing_on_a_dominant_row() {
        let rows = 64;
        let p = dominated_profile(rows, 1000);
        let nu = non_uniform(rows, 8, rows, &p).unwrap();
        let rep = replicated_non_uniform(rows, 8, rows, &p, 4).unwrap();
        assert!(nu.imbalance() > 3.0, "NU floor: {}", nu.imbalance());
        assert!(rep.imbalance() < 1.5, "NU+R: {}", rep.imbalance());
        // Load is conserved.
        let total: f64 = p.total_accesses() as f64;
        assert!((rep.part_load.iter().sum::<f64>() - total).abs() < 1e-6);
    }

    #[test]
    fn replica_block_layout_is_shared_and_local_slots_offset() {
        let rows = 16;
        let p = dominated_profile(rows, 50);
        let rep = replicated_non_uniform(rows, 4, rows, &p, 3).unwrap();
        // The three hottest rows carry the sentinel partition and slots 0..3.
        let mut replica_slots: Vec<u32> = (0..rows)
            .filter(|&r| rep.part_of_row[r] == REPLICATED_ROW_PART)
            .map(|r| rep.slot_of_row[r])
            .collect();
        replica_slots.sort_unstable();
        assert_eq!(replica_slots, vec![0, 1, 2]);
        // Every local slot starts after the replica block.
        for r in 0..rows {
            if rep.part_of_row[r] != REPLICATED_ROW_PART {
                assert!(
                    rep.slot_of_row[r] >= 3,
                    "row {r} slot {}",
                    rep.slot_of_row[r]
                );
            }
        }
        assert_eq!(rep.rows_per_part.iter().sum::<u32>() as usize, rows - 3);
    }

    #[test]
    fn replication_capacity_is_checked() {
        let p = dominated_profile(16, 10);
        assert!(matches!(
            replicated_non_uniform(16, 2, 4, &p, 5),
            Err(CoreError::CapacityExceeded { .. })
        ));
        // replicate_top larger than the table clamps gracefully.
        let all = replicated_non_uniform(8, 2, 16, &p, 100).unwrap();
        assert_eq!(all.rows_per_part.iter().sum::<u32>(), 0);
    }

    /// Regression: a frequency profile may cover more items than the
    /// table has rows (`check_inputs` only requires `num_items >= rows`),
    /// and the hottest items can be the out-of-range ones. The replica
    /// block used to index `part_of_row` with them and panic; it must
    /// skip them and replicate the hottest *in-range* rows instead.
    #[test]
    fn replication_skips_out_of_range_profile_items() {
        let rows = 8;
        let mut p = FreqProfile::new(16);
        // Items 8..16 (outside the table) are the hottest.
        for i in 8..16u64 {
            for _ in 0..100 {
                p.record(i);
            }
        }
        for i in 0..8u64 {
            for _ in 0..=(i as usize) {
                p.record(i);
            }
        }
        let rep = replicated_non_uniform(rows, 2, rows, &p, 3).unwrap();
        // Exactly the 3 hottest in-range rows (7, 6, 5) are replicated.
        let replicated: Vec<usize> = (0..rows)
            .filter(|&r| rep.part_of_row[r] == REPLICATED_ROW_PART)
            .collect();
        assert_eq!(replicated, vec![5, 6, 7]);
        // Every other row got a real partition and an offset slot.
        assert_eq!(rep.rows_per_part.iter().sum::<u32>() as usize, rows - 3);
        for r in 0..rows {
            if rep.part_of_row[r] != REPLICATED_ROW_PART {
                assert!(rep.slot_of_row[r] >= 3);
            }
        }
        // Only in-range frequency mass is distributed.
        let in_range: f64 = (0..8u64).map(|i| p.count(i) as f64).sum();
        assert!((rep.part_load.iter().sum::<f64>() - in_range).abs() < 1e-6);
    }

    #[test]
    fn zero_replicas_degenerates_to_non_uniform_balance() {
        let p = dominated_profile(32, 5);
        let nu = non_uniform(32, 4, 32, &p).unwrap();
        let rep = replicated_non_uniform(32, 4, 32, &p, 0).unwrap();
        assert!((nu.imbalance() - rep.imbalance()).abs() < 0.2);
    }
}
