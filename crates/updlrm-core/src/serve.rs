//! Executed pipelined serving — the double-buffered batch schedule that
//! [`crate::pipeline`] only models analytically.
//!
//! [`UpdlrmEngine::serve`] drives a stream of [`QueryBatch`]es through
//! the three-stage pipeline using the two MRAM staging slots reserved
//! per DPU ([`crate::engine`]): batch `i` lands in slot `i % 2`, so
//! batch `i + 1`'s stage-1 scatter can be issued while batch `i` still
//! owns the other slot, exactly the depth-2 schedule that
//! [`pipelined_wall_ns`](crate::pipeline::pipelined_wall_ns) assumes.
//! The host bus serializes all stage-1/stage-3 phases in batch order
//! (`s1_0, s1_1, s3_0, s1_2, s3_1, …`) while stage-2 kernels overlap
//! them on the DPU array.
//!
//! The headline invariant (checked by `tests/serve_tests.rs`): the
//! executed wall clock equals `pipelined_wall_ns` of the collected
//! per-batch breakdowns *exactly* (same recurrence, same operation
//! order — not approximately), and the pooled embeddings are
//! bit-identical to back-to-back [`UpdlrmEngine::run_batch`] calls.

use crate::engine::{EmbeddingBreakdown, UpdlrmEngine, STAGING_SLOTS};
use crate::error::{CoreError, Result};
use crate::pipeline::{pipelined_wall_ns, sequential_wall_ns};
use crate::stats::percentile;
use crate::telemetry::MetricsRegistry;
use dlrm_model::{Matrix, QueryBatch};

/// A batch-serving engine the open-loop front-ends can drive.
///
/// Both the single-rank [`UpdlrmEngine`] and the multi-rank
/// [`TieredEngine`](crate::tiered::TieredEngine) implement this, so the
/// scheduler's event loop (and any other front-end) is generic over the
/// back-end that executes its formed batches. The contract mirrors
/// `serve_stream`: the sink fires once per batch in batch order,
/// lending the pooled embeddings.
pub trait BatchServer {
    /// Largest batch the engine's staged MRAM output regions can hold
    /// (sized at construction; `route_batch` rejects anything larger).
    fn staged_batch_capacity(&self) -> usize;

    /// The engine's telemetry recorder, for front-ends that fold their
    /// own counters (admissions, sheds, formed batches) into the same
    /// snapshot.
    fn metrics_mut(&mut self) -> &mut MetricsRegistry;

    /// Serves `batches`, lending each batch's pooled embeddings and
    /// breakdown to `sink(batch_index, pooled, breakdown)`.
    ///
    /// # Errors
    ///
    /// Batch validation, capacity and simulator errors, as documented
    /// by each implementation.
    fn serve_stream<F>(&mut self, batches: &[QueryBatch], sink: F) -> Result<ServeReport>
    where
        F: FnMut(usize, &[Matrix], &EmbeddingBreakdown);

    /// Advances any engine-internal background machinery to modeled
    /// instant `now_ns`. Front-ends with a clock (the scheduler) call
    /// this between batches; [`UpdlrmEngine`] uses it to drive the
    /// online replanner (DESIGN.md §4.11). Default: no-op.
    ///
    /// # Errors
    ///
    /// Implementation-defined; the default never fails.
    fn on_tick(&mut self, _now_ns: u64) -> Result<()> {
        Ok(())
    }
}

impl BatchServer for UpdlrmEngine {
    fn staged_batch_capacity(&self) -> usize {
        self.config().batch_size * 2
    }

    fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    fn serve_stream<F>(&mut self, batches: &[QueryBatch], sink: F) -> Result<ServeReport>
    where
        F: FnMut(usize, &[Matrix], &EmbeddingBreakdown),
    {
        UpdlrmEngine::serve_stream(self, batches, sink)
    }

    fn on_tick(&mut self, now_ns: u64) -> Result<()> {
        UpdlrmEngine::on_tick(self, now_ns)
    }
}

/// Batch schedule used by [`UpdlrmEngine::serve`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PipelineMode {
    /// Batches run back to back — stage 1 of batch `i + 1` waits for
    /// stage 3 of batch `i` (the paper's measurement mode).
    #[default]
    Sequential,
    /// Batch `i + 1`'s stage-1 scatter overlaps batch `i`'s stage-2
    /// kernel via the two MRAM staging slots per DPU.
    DoubleBuf,
}

impl PipelineMode {
    /// CLI spelling of the mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            PipelineMode::Sequential => "sequential",
            PipelineMode::DoubleBuf => "doublebuf",
        }
    }
}

impl std::fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for PipelineMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "sequential" => Ok(PipelineMode::Sequential),
            "doublebuf" => Ok(PipelineMode::DoubleBuf),
            other => Err(format!(
                "unknown pipeline mode '{other}' (expected 'sequential' or 'doublebuf')"
            )),
        }
    }
}

/// Aggregate statistics of one [`UpdlrmEngine::serve`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeReport {
    /// Schedule that was executed.
    pub mode: PipelineMode,
    /// Effective batches in flight (the configured depth capped at the
    /// number of MRAM staging slots).
    pub queue_depth: usize,
    /// Number of batches served.
    pub batches: usize,
    /// Total samples across all batches.
    pub samples: usize,
    /// Modeled wall-clock of the whole schedule (ns).
    pub wall_ns: f64,
    /// Modeled throughput in samples per second.
    pub throughput_qps: f64,
    /// Median per-batch modeled latency (stage-1 issue → stage-3
    /// drain), nearest-rank.
    pub p50_latency_ns: f64,
    /// 95th-percentile per-batch modeled latency, nearest-rank.
    pub p95_latency_ns: f64,
    /// 99th-percentile per-batch modeled latency, nearest-rank.
    pub p99_latency_ns: f64,
}

/// Everything [`UpdlrmEngine::serve`] produces: per-batch pooled
/// embeddings and breakdowns, plus the schedule-level report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Pooled `batch x dim` embeddings, per batch then per table.
    pub pooled: Vec<Vec<Matrix>>,
    /// Per-batch stage breakdowns (same data `run_batch` returns).
    pub breakdowns: Vec<EmbeddingBreakdown>,
    /// Aggregate wall/throughput/latency statistics.
    pub report: ServeReport,
}

/// Reusable per-engine working memory for [`UpdlrmEngine::serve_stream`]
/// — event-time vectors and the per-batch breakdown list. Cleared and
/// refilled each call, so steady-state serving allocates nothing here
/// after warm-up.
#[derive(Debug, Default)]
pub(crate) struct ServeScratch {
    s1_start: Vec<f64>,
    s1_done: Vec<f64>,
    s2_done: Vec<f64>,
    drain: Vec<f64>,
    pub(crate) latencies: Vec<f64>,
    pub(crate) breakdowns: Vec<EmbeddingBreakdown>,
}

/// Assembles the aggregate [`ServeReport`] from a finished schedule's
/// scratch (sorts the latency list in place). Shared by the
/// single-rank serve schedules here and the tiered engine's sequential
/// schedule ([`crate::tiered`]).
pub(crate) fn finish_report(
    mode: PipelineMode,
    queue_depth: usize,
    batches: &[QueryBatch],
    scr: &mut ServeScratch,
    wall_ns: f64,
) -> ServeReport {
    let samples: usize = batches.iter().map(QueryBatch::batch_size).sum();
    scr.latencies
        .sort_unstable_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    ServeReport {
        mode,
        queue_depth,
        batches: batches.len(),
        samples,
        wall_ns,
        throughput_qps: if wall_ns > 0.0 {
            samples as f64 / (wall_ns * 1e-9)
        } else {
            0.0
        },
        p50_latency_ns: percentile(&scr.latencies, 0.50),
        p95_latency_ns: percentile(&scr.latencies, 0.95),
        p99_latency_ns: percentile(&scr.latencies, 0.99),
    }
}

impl UpdlrmEngine {
    /// Serves a stream of batches under the configured
    /// [`PipelineMode`] and queue depth, returning per-batch pooled
    /// embeddings and breakdowns plus a [`ServeReport`].
    ///
    /// Under [`PipelineMode::DoubleBuf`] (with `queue_depth >= 2`) the
    /// executed wall equals
    /// [`pipelined_wall_ns`](crate::pipeline::pipelined_wall_ns) of the
    /// returned breakdowns exactly; under [`PipelineMode::Sequential`]
    /// (or `queue_depth == 1`) it equals
    /// [`sequential_wall_ns`](crate::pipeline::sequential_wall_ns).
    ///
    /// This is a convenience wrapper over
    /// [`UpdlrmEngine::serve_stream`] that clones every batch's pooled
    /// embeddings into the returned [`ServeOutcome`]; latency-sensitive
    /// callers that can consume results in place should use
    /// `serve_stream` directly.
    ///
    /// # Errors
    ///
    /// `queue_depth == 0` is rejected with
    /// [`CoreError::InvalidConfig`]; batch-level errors are as in
    /// [`UpdlrmEngine::run_batch`].
    pub fn serve(&mut self, batches: &[QueryBatch]) -> Result<ServeOutcome> {
        let mut pooled: Vec<Vec<Matrix>> = Vec::with_capacity(batches.len());
        let report = self.serve_stream(batches, |i, p, _| {
            debug_assert_eq!(i, pooled.len(), "sink fires in batch order");
            pooled.push(p.to_vec());
        })?;
        Ok(ServeOutcome {
            pooled,
            breakdowns: self.serve_scratch.breakdowns.clone(),
            report,
        })
    }

    /// The zero-allocation serving path: identical schedule, timing and
    /// numerics to [`UpdlrmEngine::serve`], but each batch's pooled
    /// embeddings are *lent* to `sink(batch_index, pooled, breakdown)`
    /// and recycled afterwards instead of being accumulated into a
    /// [`ServeOutcome`]. The sink fires once per batch in batch order
    /// (for the double-buffered schedule that is one batch behind the
    /// scatter of the following batch, exactly when its stage 3 drains).
    ///
    /// After warm-up (one serve over each staging slot, i.e. two
    /// batches) a steady-state call performs no heap allocation — the
    /// property pinned down by `tests/alloc_tests.rs`.
    ///
    /// The collected breakdowns remain available to the caller through
    /// the engine until the next serve; `serve` uses that to assemble
    /// its outcome.
    ///
    /// # Errors
    ///
    /// Same conditions as [`UpdlrmEngine::serve`].
    pub fn serve_stream<F>(&mut self, batches: &[QueryBatch], sink: F) -> Result<ServeReport>
    where
        F: FnMut(usize, &[Matrix], &EmbeddingBreakdown),
    {
        let queue_depth = self.config().queue_depth;
        let mode = self.config().pipeline_mode;
        if queue_depth == 0 {
            return Err(CoreError::InvalidConfig(
                "queue_depth must be >= 1 (0 admits no batch in flight)".into(),
            ));
        }
        let depth = queue_depth.min(STAGING_SLOTS);
        // Take the scratch out of the engine so stage methods can borrow
        // `self` mutably; restore it afterwards (on error it is simply
        // rebuilt — and re-warmed — by the next call).
        let mut scr = std::mem::take(&mut self.serve_scratch);
        let result = match (mode, depth) {
            (PipelineMode::DoubleBuf, d) if d >= 2 => self.serve_doublebuf(batches, &mut scr, sink),
            _ => self.serve_sequential(batches, mode, &mut scr, sink),
        };
        self.serve_scratch = scr;
        if let Ok(report) = &result {
            // Serve-level telemetry: the executed wall plus what the same
            // batches would cost back-to-back — the difference is the
            // wall the pipeline overlap saved.
            let sequential = sequential_wall_ns(&self.serve_scratch.breakdowns);
            self.metrics.record_serve(report, sequential);
        }
        result
    }

    /// Back-to-back schedule: each batch fully drains before the next
    /// one's stage 1 is issued. Wall equals `sequential_wall_ns`.
    fn serve_sequential<F>(
        &mut self,
        batches: &[QueryBatch],
        mode: PipelineMode,
        scr: &mut ServeScratch,
        mut sink: F,
    ) -> Result<ServeReport>
    where
        F: FnMut(usize, &[Matrix], &EmbeddingBreakdown),
    {
        scr.breakdowns.clear();
        scr.latencies.clear();
        let mut wall = 0.0f64;
        for (i, batch) in batches.iter().enumerate() {
            // Same stage sequence (and f64 operation order) as
            // `run_batch`, with the pooled set recycled after the sink.
            let routed = self.route_batch(batch)?;
            let mut bd = routed.breakdown_seed();
            let scatter = self.scatter_streams(0)?;
            bd.stage1_ns = scatter.wall_ns;
            bd.energy_pj += scatter.energy_pj;
            let stage2 = self.launch_stage2(routed.batch_size, 0)?;
            stage2.fold_into(&mut bd);
            let (pooled, combine_ns, gather) = self.gather_combine(routed.batch_size, 0)?;
            bd.stage3_ns = gather.wall_ns;
            bd.energy_pj += gather.energy_pj;
            bd.combine_ns = combine_ns;
            // Matches `sequential_wall_ns`'s `map(total_ns).sum()` fold.
            wall += bd.total_ns();
            scr.latencies.push(bd.total_ns());
            self.metrics.record_batch(routed.batch_size, &bd);
            scr.breakdowns.push(bd);
            sink(i, &pooled, scr.breakdowns.last().expect("just pushed"));
            self.recycle_pooled(pooled);
        }
        debug_assert_eq!(wall, sequential_wall_ns(&scr.breakdowns));
        Ok(finish_report(mode, 1, batches, scr, wall))
    }

    /// Depth-2 double-buffered schedule. The event bookkeeping below is
    /// a line-for-line mirror of
    /// [`pipelined_wall_ns`](crate::pipeline::pipelined_wall_ns) — the
    /// same recurrence over the same measured stage times in the same
    /// f64 operation order — which is what makes the executed wall
    /// *exactly* equal to the analytic model.
    fn serve_doublebuf<F>(
        &mut self,
        batches: &[QueryBatch],
        scr: &mut ServeScratch,
        mut sink: F,
    ) -> Result<ServeReport>
    where
        F: FnMut(usize, &[Matrix], &EmbeddingBreakdown),
    {
        let n = batches.len();
        scr.breakdowns.clear();
        scr.s1_start.clear();
        scr.s1_start.resize(n, 0.0);
        scr.s1_done.clear();
        scr.s1_done.resize(n, 0.0);
        scr.s2_done.clear();
        scr.s2_done.resize(n, 0.0);
        scr.drain.clear();
        scr.drain.resize(n, 0.0);

        let mut bus_free = 0.0f64; // when the host bus is next available
        let mut dpu_free = 0.0f64; // when the DPU array is next available
        let mut finish = 0.0f64;

        // Bus phases run in batch order: s1_0, s1_1, s3_0, s1_2, s3_1,
        // ... — batch i's scatter reuses slot i % 2, which batch i - 2
        // released when its stage 3 drained one iteration ago.
        for i in 0..n {
            // stage 1 of batch i.
            let routed = self.route_batch(&batches[i])?;
            let mut bd = routed.breakdown_seed();
            let scatter = self.scatter_streams(i % STAGING_SLOTS)?;
            bd.stage1_ns = scatter.wall_ns;
            bd.energy_pj += scatter.energy_pj;
            let start = bus_free;
            bus_free = start + bd.stage1_ns;
            scr.s1_start[i] = start;
            scr.s1_done[i] = bus_free;

            // stage 2 of batch i can start once its stage 1 landed and
            // the DPU array is free.
            let stage2 = self.launch_stage2(routed.batch_size, i % STAGING_SLOTS)?;
            stage2.fold_into(&mut bd);
            let start = scr.s1_done[i].max(dpu_free);
            dpu_free = start + bd.stage2_ns;
            scr.s2_done[i] = dpu_free;
            scr.breakdowns.push(bd);

            // stage 3 of batch i - 1 (its results are ready by now or
            // we wait for them); one batch in flight bounds staging.
            if i > 0 {
                let j = i - 1;
                bus_free = self.gather_one(batches, j, scr, bus_free, &mut sink)?;
                finish = finish.max(bus_free);
                scr.drain[j] = bus_free;
            }
        }
        // Drain the last batch's stage 3.
        if let Some(last) = n.checked_sub(1) {
            let end = self.gather_one(batches, last, scr, bus_free, &mut sink)?;
            finish = finish.max(end);
            scr.drain[last] = end;
        }
        debug_assert_eq!(finish, pipelined_wall_ns(&scr.breakdowns));

        scr.latencies.clear();
        for i in 0..n {
            scr.latencies.push(scr.drain[i] - scr.s1_start[i]);
        }
        Ok(finish_report(
            PipelineMode::DoubleBuf,
            STAGING_SLOTS,
            batches,
            scr,
            finish,
        ))
    }

    /// Gathers batch `j`'s partial sums out of its slot, fills in its
    /// breakdown, lends the pooled set to the sink, and returns when its
    /// stage 3 leaves the bus.
    fn gather_one<F>(
        &mut self,
        batches: &[QueryBatch],
        j: usize,
        scr: &mut ServeScratch,
        bus_free: f64,
        sink: &mut F,
    ) -> Result<f64>
    where
        F: FnMut(usize, &[Matrix], &EmbeddingBreakdown),
    {
        let b = batches[j].batch_size();
        let (pooled, combine_ns, report) = self.gather_combine(b, j % STAGING_SLOTS)?;
        scr.breakdowns[j].stage3_ns = report.wall_ns;
        scr.breakdowns[j].energy_pj += report.energy_pj;
        scr.breakdowns[j].combine_ns = combine_ns;
        self.metrics.record_batch(b, &scr.breakdowns[j]);
        let start = scr.s2_done[j].max(bus_free);
        let end = start + scr.breakdowns[j].stage3_ns;
        sink(j, &pooled, &scr.breakdowns[j]);
        self.recycle_pooled(pooled);
        Ok(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_mode_round_trips_through_strings() {
        for mode in [PipelineMode::Sequential, PipelineMode::DoubleBuf] {
            let parsed: PipelineMode = mode.as_str().parse().expect("round trip");
            assert_eq!(parsed, mode);
            assert_eq!(format!("{mode}"), mode.as_str());
        }
        assert!("dbl".parse::<PipelineMode>().is_err());
    }
}
