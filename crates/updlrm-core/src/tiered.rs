//! The tiered multi-rank engine: executes a [`placement::PlacementPlan`]
//! on a [`upmem_sim::Fleet`].
//!
//! Where [`UpdlrmEngine`](crate::engine::UpdlrmEngine) runs every
//! lookup on the EMT tiles of a *single* rank, this engine routes each
//! reference by the plan's tier:
//!
//! 1. **host tier** — the row lives in a host-DRAM hot cache; the host
//!    probes it during stage-1 routing and folds it into the pooled
//!    output during the combine (no PIM traffic at all);
//! 2. **replicated tier** — the row sits in every partition's replica
//!    block; traffic is spread round-robin by `(row + sample) %
//!    partitions`, the same rule the single-rank engine uses;
//! 3. **cold tier** — the row lives in exactly one partition's MRAM
//!    past the replica block; the reference goes to that partition.
//!
//! Each cold partition owns one fleet DPU (full embedding dimension, no
//! column slicing), so a table may span several ranks. Per batch the
//! stages run rank by rank and are combined with the fleet's shared
//! rules ([`Fleet::combine_transfers`] / [`Fleet::combine_launches`]):
//! per-rank buses move bytes in parallel, the host driver pays a serial
//! per-rank setup (`rank_base_ns`) per transfer phase and a serial
//! dispatch (`rank_launch_ns`) per kernel launch issued. A launch is
//! issued per `(table, rank)` group, so a table fanned across many
//! ranks pays more dispatch — the cost tiering trades against
//! (DESIGN.md §4.9).
//!
//! **Functional contract** (enforced by `tests/tiered_diff.rs`): under
//! *any* valid plan the pooled embeddings equal the untiered
//! single-rank engine's on the same trace — bit-identical for
//! integer-valued tables, where every partial sum is exact. Timing
//! differs by design; numerics must not.
//!
//! In the breakdown, host-tier hits are reported in
//! [`EmbeddingBreakdown::cache_hits`] (they are served by a host-side
//! cache) and PIM-bound references in `emt_lookups`.

use crate::config::UpdlrmConfig;
use crate::engine::EmbeddingBreakdown;
use crate::error::{CoreError, Result};
use crate::kernel::{build_stream_into, DpuTask, EmbeddingKernel, StreamBuilder};
use crate::pipeline::sequential_wall_ns;
use crate::serve::{finish_report, PipelineMode, ServeReport, ServeScratch};
use crate::telemetry::{MetricsRegistry, Snapshot};
use dlrm_model::{simd, EmbeddingTable, Matrix, QueryBatch};
use placement::{PlacementPlan, TIER_COLD, TIER_HOST, TIER_REPLICATED};
use upmem_sim::{DpuId, Fleet, LaunchReport, TransferReport};

/// One table's execution state: plan vectors, MRAM bases, host store
/// and the prebuilt kernel.
struct TieredTable {
    rows: usize,
    dim: usize,
    parts: usize,
    row_bytes: usize,
    input_base: u32,
    output_base: u32,
    /// Tier/partition/slot per row, copied from the plan.
    tier_of_row: Vec<u8>,
    part_of_row: Vec<u32>,
    slot_of_row: Vec<u32>,
    /// Host-tier rows in host-slot order, `dim` f32s each.
    host_store: Vec<f32>,
    /// Per partition: `(rank, rank-local dpu)`.
    locs: Vec<(usize, DpuId)>,
    /// Launch groups: rank-local DPU ids per rank this table touches.
    rank_ids: Vec<(usize, Vec<DpuId>)>,
    /// Prebuilt kernel; only `n_samples` changes per launch. Tasks are
    /// keyed by rank-local id — identical per table, so two partitions
    /// sharing a local id on different ranks share one entry.
    kernel: EmbeddingKernel,
}

/// One routed reference stream: the global `(table, part)` it belongs
/// to plus its serialized bytes (table-major, partition-minor order).
#[derive(Debug, Default)]
struct StreamSlot {
    table: usize,
    bytes: Vec<u8>,
}

/// Reusable per-batch working memory (same recycling discipline as the
/// single-rank engine's `BatchScratch`).
#[derive(Debug, Default)]
struct TieredScratch {
    /// Per-(partition, sample) routed references of the table being
    /// routed, indexed `p * batch_size + s`.
    refs: Vec<Vec<u32>>,
    /// One stream per cold partition, table-major.
    streams: Vec<StreamSlot>,
    builder: StreamBuilder,
    /// Host-tier hits per table: `(sample, host slot)` in route order.
    host_refs: Vec<Vec<(u32, u32)>>,
    /// Per in-use rank: stage-3 gather request list.
    rank_requests: Vec<Vec<(DpuId, u32, usize)>>,
    /// Per in-use rank: gathered partial-sum bytes.
    gather_bufs: Vec<Vec<u8>>,
    /// Per-rank transfer reports of the current phase.
    transfers: Vec<TransferReport>,
    /// One launch report per `(table, rank)` group, recycled.
    launches: Vec<LaunchReport>,
    /// Per-DPU cycles across all launches of one batch.
    all_cycles: Vec<u64>,
    /// Returned pooled-output sets available for reuse.
    matrix_pool: Vec<Vec<Matrix>>,
}

/// Host-side counters from routing one batch.
#[derive(Debug, Clone, Copy)]
struct RoutedTiered {
    batch_size: usize,
    route_ns: f64,
    host_hits: u64,
    pim_refs: u64,
}

/// Aggregated stage-2 result over all `(table, rank)` launches.
#[derive(Debug, Clone, Copy, Default)]
struct TieredStage2 {
    wall_ns: f64,
    energy_pj: f64,
    dma_transfers: u64,
    instrs: u64,
    lookup_imbalance: f64,
}

/// The tiered multi-rank UpDLRM engine: a [`Fleet`] loaded according to
/// a [`PlacementPlan`], serving batches with per-tier routing.
///
/// Built with [`TieredEngine::new`]; the plan must describe exactly the
/// `tables` passed in (same count, rows and dims). From
/// [`UpdlrmConfig`] it uses `tasklets`, `batch_size`,
/// `input_reserve_bytes`, `dedup`, `pad_transfers`, the cost model and
/// the host-side ns knobs; `nr_dpus` and `strategy` are ignored — the
/// plan's fleet topology governs. Serving is always sequential: each
/// DPU has a single staging slot, so `pipeline_mode` is ignored too.
pub struct TieredEngine {
    fleet: Fleet,
    config: UpdlrmConfig,
    plan: PlacementPlan,
    tables: Vec<TieredTable>,
    /// Ranks hosting at least one partition, ascending.
    ranks_in_use: Vec<usize>,
    /// Per in-use rank: `(stream index, dpu, input base)` scatter list.
    scatter_meta: Vec<Vec<(usize, DpuId, u32)>>,
    /// Per in-use rank: `(dpu, output base, table)` gather list, in
    /// (table, partition) order within the rank.
    gather_meta: Vec<Vec<(DpuId, u32, usize)>>,
    scratch: TieredScratch,
    serve_scratch: ServeScratch,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for TieredEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredEngine")
            .field("topology", &self.plan.config.topology)
            .field("tables", &self.tables.len())
            .field("dpus_used", &self.plan.dpus_used)
            .finish()
    }
}

impl TieredEngine {
    /// Builds a fleet from `plan.config.topology`, loads every
    /// partition's MRAM (replica block then cold rows) and the host
    /// store, and prebuilds the per-table kernels.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the plan fails its own
    /// invariants or does not match `tables` (count, rows, dim), when a
    /// row exceeds one DMA transfer (2048 B) or is not 8-byte aligned;
    /// [`CoreError::CapacityExceeded`] when the EMT, input or output
    /// regions overflow MRAM; simulator errors propagate.
    pub fn new(
        config: UpdlrmConfig,
        plan: &PlacementPlan,
        tables: &[EmbeddingTable],
    ) -> Result<Self> {
        plan.check_invariants()
            .map_err(|e| CoreError::InvalidConfig(format!("placement plan: {e}")))?;
        if tables.len() != plan.tables.len() {
            return Err(CoreError::InvalidConfig(format!(
                "plan places {} tables, engine got {}",
                plan.tables.len(),
                tables.len()
            )));
        }
        let topo = plan.config.topology;
        let mut fleet = Fleet::new(
            topo,
            config.tasklets,
            config.cost.clone(),
            config.host_threads,
            plan.config.rank_cost.clone(),
        )?;

        let capacity = |e: upmem_sim::SimError| match e {
            upmem_sim::SimError::MramOutOfBounds {
                addr,
                len,
                capacity,
            } => CoreError::CapacityExceeded {
                partition: 0,
                required: addr as usize + len,
                available: capacity,
            },
            other => CoreError::Sim(other),
        };

        let mut states = Vec::with_capacity(tables.len());
        for (t, (table, tp)) in tables.iter().zip(plan.tables.iter()).enumerate() {
            if table.rows() != tp.rows || table.dim() != tp.dim {
                return Err(CoreError::InvalidConfig(format!(
                    "table {t}: plan places {} x {}, engine got {} x {}",
                    tp.rows,
                    tp.dim,
                    table.rows(),
                    table.dim()
                )));
            }
            let row_bytes = tp.dim * 4;
            if !row_bytes.is_multiple_of(8) {
                return Err(CoreError::InvalidConfig(format!(
                    "table {t}: dim {} rows are not 8-byte aligned (need an even dim)",
                    tp.dim
                )));
            }
            if row_bytes > upmem_sim::arch::DMA_MAX_TRANSFER {
                return Err(CoreError::InvalidConfig(format!(
                    "table {t}: {row_bytes}-byte rows exceed one {}-byte DMA (the tiered \
                     engine stores full rows per partition)",
                    upmem_sim::arch::DMA_MAX_TRANSFER
                )));
            }
            let replicas = tp.replicated_rows.len();

            // MRAM regions per partition DPU of this table:
            // [EMT (replica block + cold rows) | input | output].
            let max_cold = tp.rows_per_part.iter().copied().max().unwrap_or(0) as usize;
            let mut layout = upmem_sim::MramLayout::new();
            layout
                .reserve((replicas + max_cold) * row_bytes)
                .map_err(capacity)?;
            let input_base = layout
                .reserve(config.input_reserve_bytes)
                .map_err(capacity)?;
            let output_base = layout
                .reserve(config.batch_size * row_bytes * 2)
                .map_err(capacity)?;

            // Cold rows per partition in slot order.
            let mut rows_in_part: Vec<Vec<u32>> = tp
                .rows_per_part
                .iter()
                .map(|&n| vec![0u32; n as usize])
                .collect();
            for r in 0..tp.rows {
                if tp.tier_of_row[r] == TIER_COLD {
                    let p = tp.part_of_row[r] as usize;
                    rows_in_part[p][tp.slot_of_row[r] as usize - replicas] = r as u32;
                }
            }

            // Load each partition: shared replica block, then cold rows.
            let mut locs = Vec::with_capacity(tp.parts);
            for (p, &global) in tp.dpus.iter().enumerate() {
                let (rank, local) = topo.locate(global);
                let dpu = DpuId(local as u32);
                locs.push((rank, dpu));
                let mut buf = Vec::with_capacity((replicas + rows_in_part[p].len()) * row_bytes);
                for &r in tp
                    .replicated_rows
                    .iter()
                    .map(|&r| r as u32)
                    .collect::<Vec<_>>()
                    .iter()
                    .chain(rows_in_part[p].iter())
                {
                    for &v in table.row(r as u64)? {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
                if !buf.is_empty() {
                    fleet.rank_mut(rank)?.load_mram(dpu, 0, &buf)?;
                }
            }

            // Host store: hot rows in host-slot order.
            let mut host_store = Vec::with_capacity(tp.host_rows.len() * tp.dim);
            for &r in &tp.host_rows {
                host_store.extend_from_slice(table.row(r)?);
            }

            // Launch groups and the prebuilt kernel.
            let mut rank_ids: Vec<(usize, Vec<DpuId>)> = Vec::new();
            let mut kernel = EmbeddingKernel::new(row_bytes, config.dedup);
            for &(rank, dpu) in &locs {
                kernel.set_task(
                    dpu,
                    DpuTask {
                        emt_base: 0,
                        cache_base: 0,
                        input_base,
                        output_base,
                        n_samples: 0,
                    },
                );
                match rank_ids.iter_mut().find(|(r, _)| *r == rank) {
                    Some((_, ids)) => ids.push(dpu),
                    None => rank_ids.push((rank, vec![dpu])),
                }
            }
            rank_ids.sort_by_key(|(r, _)| *r);

            states.push(TieredTable {
                rows: tp.rows,
                dim: tp.dim,
                parts: tp.parts,
                row_bytes,
                input_base,
                output_base,
                tier_of_row: tp.tier_of_row.clone(),
                part_of_row: tp.part_of_row.clone(),
                slot_of_row: tp.slot_of_row.clone(),
                host_store,
                locs,
                rank_ids,
                kernel,
            });
        }

        // Fixed scatter/gather structure: ranks in use, then per rank
        // the (stream, dpu, base) and (dpu, base, table) lists in
        // global (table, partition) order.
        let mut ranks_in_use: Vec<usize> = states
            .iter()
            .flat_map(|s| s.locs.iter().map(|&(r, _)| r))
            .collect();
        ranks_in_use.sort_unstable();
        ranks_in_use.dedup();
        let rank_pos = |rank: usize| {
            ranks_in_use
                .binary_search(&rank)
                .expect("rank is in ranks_in_use")
        };
        let mut scatter_meta: Vec<Vec<(usize, DpuId, u32)>> = vec![Vec::new(); ranks_in_use.len()];
        let mut gather_meta: Vec<Vec<(DpuId, u32, usize)>> = vec![Vec::new(); ranks_in_use.len()];
        let mut streams = Vec::new();
        for (t, state) in states.iter().enumerate() {
            for &(rank, dpu) in &state.locs {
                let ri = rank_pos(rank);
                scatter_meta[ri].push((streams.len(), dpu, state.input_base));
                gather_meta[ri].push((dpu, state.output_base, t));
                streams.push(StreamSlot {
                    table: t,
                    bytes: Vec::new(),
                });
            }
        }

        let launch_groups: usize = states.iter().map(|s| s.rank_ids.len()).sum();
        let metrics = MetricsRegistry::new(config.telemetry, topo.nr_dpus());
        let n_ranks = ranks_in_use.len();
        let n_tables = states.len();
        Ok(TieredEngine {
            fleet,
            config,
            plan: plan.clone(),
            tables: states,
            ranks_in_use,
            scatter_meta,
            gather_meta,
            scratch: TieredScratch {
                streams,
                host_refs: vec![Vec::new(); n_tables],
                rank_requests: vec![Vec::new(); n_ranks],
                gather_bufs: vec![Vec::new(); n_ranks],
                launches: {
                    let mut v = Vec::new();
                    v.resize_with(launch_groups, LaunchReport::default);
                    v
                },
                ..TieredScratch::default()
            },
            serve_scratch: ServeScratch::default(),
            metrics,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &UpdlrmConfig {
        &self.config
    }

    /// The placement plan this engine executes.
    pub fn plan(&self) -> &PlacementPlan {
        &self.plan
    }

    /// Number of embedding tables loaded.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The live telemetry recorder.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the telemetry recorder (see
    /// [`UpdlrmEngine::metrics_mut`](crate::engine::UpdlrmEngine::metrics_mut)).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Takes a deterministic telemetry [`Snapshot`].
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Runs the embedding layer for one batch on the fleet: returns the
    /// pooled `batch x dim` embeddings per table and the stage
    /// breakdown (stage walls combined with the fleet's rank rules).
    ///
    /// # Errors
    ///
    /// Malformed batches, out-of-range indices, reference streams
    /// exceeding the input reserve, and simulator faults.
    pub fn run_batch(&mut self, batch: &QueryBatch) -> Result<(Vec<Matrix>, EmbeddingBreakdown)> {
        let routed = self.route_batch(batch)?;
        let mut bd = EmbeddingBreakdown {
            route_ns: routed.route_ns,
            cache_hits: routed.host_hits,
            emt_lookups: routed.pim_refs,
            ..EmbeddingBreakdown::default()
        };
        let scatter = self.scatter_streams()?;
        bd.stage1_ns = scatter.wall_ns;
        bd.energy_pj += scatter.energy_pj;
        let s2 = self.launch_stage2(routed.batch_size)?;
        bd.stage2_ns = s2.wall_ns;
        bd.energy_pj += s2.energy_pj;
        bd.dma_transfers += s2.dma_transfers;
        bd.instrs += s2.instrs;
        bd.lookup_imbalance = s2.lookup_imbalance;
        let (pooled, combine_ns, gather) = self.gather_combine(routed.batch_size)?;
        bd.stage3_ns = gather.wall_ns;
        bd.energy_pj += gather.energy_pj;
        bd.combine_ns = combine_ns;
        self.metrics.record_batch(routed.batch_size, &bd);
        Ok((pooled, bd))
    }

    /// Serves a stream of batches back to back (the tiered engine has a
    /// single staging slot per DPU, so the schedule is always
    /// sequential regardless of `pipeline_mode`), lending each batch's
    /// pooled embeddings to `sink` exactly as
    /// [`UpdlrmEngine::serve_stream`](crate::engine::UpdlrmEngine::serve_stream)
    /// does.
    ///
    /// # Errors
    ///
    /// `queue_depth == 0` is rejected; batch-level errors as in
    /// [`TieredEngine::run_batch`].
    pub fn serve_stream<F>(&mut self, batches: &[QueryBatch], sink: F) -> Result<ServeReport>
    where
        F: FnMut(usize, &[Matrix], &EmbeddingBreakdown),
    {
        if self.config.queue_depth == 0 {
            return Err(CoreError::InvalidConfig(
                "queue_depth must be >= 1 (0 admits no batch in flight)".into(),
            ));
        }
        let mut scr = std::mem::take(&mut self.serve_scratch);
        let result = self.serve_sequential(batches, &mut scr, sink);
        self.serve_scratch = scr;
        if let Ok(report) = &result {
            let sequential = sequential_wall_ns(&self.serve_scratch.breakdowns);
            self.metrics.record_serve(report, sequential);
        }
        result
    }

    fn serve_sequential<F>(
        &mut self,
        batches: &[QueryBatch],
        scr: &mut ServeScratch,
        mut sink: F,
    ) -> Result<ServeReport>
    where
        F: FnMut(usize, &[Matrix], &EmbeddingBreakdown),
    {
        scr.breakdowns.clear();
        scr.latencies.clear();
        let mut wall = 0.0f64;
        for (i, batch) in batches.iter().enumerate() {
            let routed = self.route_batch(batch)?;
            let mut bd = EmbeddingBreakdown {
                route_ns: routed.route_ns,
                cache_hits: routed.host_hits,
                emt_lookups: routed.pim_refs,
                ..EmbeddingBreakdown::default()
            };
            let scatter = self.scatter_streams()?;
            bd.stage1_ns = scatter.wall_ns;
            bd.energy_pj += scatter.energy_pj;
            let s2 = self.launch_stage2(routed.batch_size)?;
            bd.stage2_ns = s2.wall_ns;
            bd.energy_pj += s2.energy_pj;
            bd.dma_transfers += s2.dma_transfers;
            bd.instrs += s2.instrs;
            bd.lookup_imbalance = s2.lookup_imbalance;
            let (pooled, combine_ns, gather) = self.gather_combine(routed.batch_size)?;
            bd.stage3_ns = gather.wall_ns;
            bd.energy_pj += gather.energy_pj;
            bd.combine_ns = combine_ns;
            wall += bd.total_ns();
            scr.latencies.push(bd.total_ns());
            self.metrics.record_batch(routed.batch_size, &bd);
            scr.breakdowns.push(bd);
            sink(i, &pooled, scr.breakdowns.last().expect("just pushed"));
            self.recycle_pooled(pooled);
        }
        Ok(finish_report(
            PipelineMode::Sequential,
            1,
            batches,
            scr,
            wall,
        ))
    }

    /// Stage-1 host routing: splits every reference by tier, builds the
    /// per-partition streams and records host-tier hits.
    fn route_batch(&mut self, batch: &QueryBatch) -> Result<RoutedTiered> {
        batch.validate()?;
        if batch.sparse.len() != self.tables.len() {
            return Err(CoreError::InvalidConfig(format!(
                "batch has {} sparse groups, engine has {} tables",
                batch.sparse.len(),
                self.tables.len()
            )));
        }
        let b = batch.batch_size();
        let tasklets = self.config.tasklets;
        for state in &self.tables {
            let acc = b * state.row_bytes;
            if acc + tasklets * 64 > upmem_sim::arch::WRAM_CAPACITY {
                return Err(CoreError::InvalidConfig(format!(
                    "batch {b} x {} B rows needs {acc} B of WRAM accumulators (64 KB available)",
                    state.row_bytes
                )));
            }
            let out_cap = self.config.batch_size * 2;
            if b > out_cap {
                return Err(CoreError::InvalidConfig(format!(
                    "batch of {b} samples exceeds the {out_cap} staged output rows per DPU \
                     (engine was built with config.batch_size = {}; raise it)",
                    self.config.batch_size
                )));
            }
        }

        let mut total_refs = 0u64;
        let mut host_hits = 0u64;
        let mut pim_refs = 0u64;
        let TieredEngine {
            tables,
            config,
            scratch,
            ..
        } = self;
        let mut k = 0usize; // stream index, table-major
        for (t, state) in tables.iter().enumerate() {
            let sparse = &batch.sparse[t];
            let parts = state.parts;
            let need = parts * b;
            if scratch.refs.len() < need {
                scratch.refs.resize_with(need, Vec::new);
            }
            let refs = &mut scratch.refs[..need];
            for v in refs.iter_mut() {
                v.clear();
            }
            scratch.host_refs[t].clear();
            for s in 0..b {
                let sample = sparse.sample(s);
                total_refs += sample.len() as u64;
                for &idx in sample {
                    let r = idx as usize;
                    if r >= state.rows {
                        return Err(CoreError::Model(dlrm_model::ModelError::IndexOutOfRange {
                            index: idx,
                            rows: state.rows,
                        }));
                    }
                    let slot = state.slot_of_row[r];
                    match state.tier_of_row[r] {
                        TIER_HOST => {
                            host_hits += 1;
                            scratch.host_refs[t].push((s as u32, slot));
                        }
                        TIER_REPLICATED => {
                            // Replicated rows live in every partition at
                            // the same slot; spread round-robin like the
                            // single-rank engine.
                            pim_refs += 1;
                            refs[((r + s) % parts) * b + s].push(slot);
                        }
                        _ => {
                            pim_refs += 1;
                            refs[state.part_of_row[r] as usize * b + s].push(slot);
                        }
                    }
                }
            }
            for p in 0..parts {
                let slot = &mut scratch.streams[k];
                debug_assert_eq!(slot.table, t);
                build_stream_into(
                    &refs[p * b..(p + 1) * b],
                    tasklets,
                    config.dedup,
                    &mut scratch.builder,
                    &mut slot.bytes,
                );
                if slot.bytes.len() > config.input_reserve_bytes {
                    return Err(CoreError::CapacityExceeded {
                        partition: p,
                        required: slot.bytes.len(),
                        available: config.input_reserve_bytes,
                    });
                }
                k += 1;
            }
        }
        if config.pad_transfers {
            let max_len = scratch
                .streams
                .iter()
                .map(|s| s.bytes.len())
                .max()
                .unwrap_or(0);
            for s in &mut scratch.streams {
                s.bytes.resize(max_len, 0);
            }
        }
        Ok(RoutedTiered {
            batch_size: b,
            route_ns: total_refs as f64 * config.route_ns_per_ref
                + host_hits as f64 * self.plan.config.host_probe_ns,
            host_hits,
            pim_refs,
        })
    }

    /// Stage 1 on the fleet: scatters the routed streams rank by rank
    /// and combines the per-rank reports.
    fn scatter_streams(&mut self) -> Result<TransferReport> {
        let TieredEngine {
            fleet,
            ranks_in_use,
            scatter_meta,
            scratch,
            metrics,
            ..
        } = self;
        scratch.transfers.clear();
        for (ri, &rank) in ranks_in_use.iter().enumerate() {
            let requests: Vec<(DpuId, u32, &[u8])> = scatter_meta[ri]
                .iter()
                .map(|&(si, dpu, base)| (dpu, base, scratch.streams[si].bytes.as_slice()))
                .collect();
            let report = fleet.rank_mut(rank)?.scatter(&requests)?;
            scratch.transfers.push(report);
        }
        let combined = fleet.combine_transfers(scratch.transfers.iter());
        metrics.record_transfer(true, &combined);
        Ok(combined)
    }

    /// Stage 2 on the fleet: one kernel launch per `(table, rank)`
    /// group, combined with the fleet's dispatch rule.
    fn launch_stage2(&mut self, n_samples: usize) -> Result<TieredStage2> {
        let topo = self.plan.config.topology;
        let TieredEngine {
            fleet,
            tables,
            scratch,
            metrics,
            ..
        } = self;
        let mut out = TieredStage2::default();
        scratch.all_cycles.clear();
        let mut g = 0usize;
        for state in tables.iter_mut() {
            for task in state.kernel.tasks.values_mut() {
                task.n_samples = n_samples as u32;
            }
            for (rank, ids) in &state.rank_ids {
                let report = &mut scratch.launches[g];
                fleet
                    .rank_mut(*rank)?
                    .launch_into(ids, &state.kernel, report)?;
                out.energy_pj += report.energy_pj;
                out.dma_transfers += report.total_dma_transfers();
                out.instrs += report.total_instrs();
                for (id, stats) in &report.per_dpu {
                    metrics.record_dpu(rank * topo.dpus_per_rank + id.0 as usize, stats);
                }
                scratch
                    .all_cycles
                    .extend(report.per_dpu.iter().map(|(_, s)| s.cycles.0));
                g += 1;
            }
        }
        let (wall, _energy) = fleet.combine_launches(scratch.launches[..g].iter());
        out.wall_ns = wall;
        let all_cycles = &scratch.all_cycles;
        if !all_cycles.is_empty() {
            let max = *all_cycles.iter().max().expect("nonempty") as f64;
            let mean = all_cycles.iter().sum::<u64>() as f64 / all_cycles.len() as f64;
            out.lookup_imbalance = if mean > 0.0 { max / mean } else { 1.0 };
            metrics.record_launch(out.lookup_imbalance);
        }
        Ok(out)
    }

    /// Stage 3 + host combine: gathers every partition's partial-sum
    /// rows rank by rank, then assembles the pooled matrices — host-tier
    /// rows first, then the PIM partials in rank order. All summands
    /// are f32 adds of functional row data, so for integer-valued
    /// tables the result is exact regardless of grouping.
    fn gather_combine(&mut self, n_samples: usize) -> Result<(Vec<Matrix>, f64, TransferReport)> {
        let b = n_samples;
        let TieredEngine {
            fleet,
            tables,
            ranks_in_use,
            gather_meta,
            scratch,
            config,
            plan,
            metrics,
            ..
        } = self;
        scratch.transfers.clear();
        for (ri, &rank) in ranks_in_use.iter().enumerate() {
            let requests = &mut scratch.rank_requests[ri];
            requests.clear();
            for &(dpu, base, t) in &gather_meta[ri] {
                requests.push((dpu, base, b * tables[t].row_bytes));
            }
            let report = fleet
                .rank(rank)?
                .gather_into(requests, &mut scratch.gather_bufs[ri])?;
            scratch.transfers.push(report);
        }
        let combined = fleet.combine_transfers(scratch.transfers.iter());
        metrics.record_transfer(false, &combined);

        let mut pooled: Vec<Matrix> = match scratch.matrix_pool.pop() {
            Some(mut set) if set.len() == tables.len() => {
                for (m, s) in set.iter_mut().zip(tables.iter()) {
                    m.reset_zeroed(b, s.dim);
                }
                set
            }
            _ => tables.iter().map(|s| Matrix::zeros(b, s.dim)).collect(),
        };

        // Host tier: add hot rows straight from the host store.
        let mut host_adds = 0u64;
        for (t, state) in tables.iter().enumerate() {
            let dim = state.dim;
            for &(s, slot) in &scratch.host_refs[t] {
                let row = &state.host_store[slot as usize * dim..(slot as usize + 1) * dim];
                let out = pooled[t].row_mut(s as usize);
                simd::add_assign(out, row);
                host_adds += dim as u64;
            }
        }

        // PIM partials, rank-major then (table, partition) order.
        let mut pim_adds = 0u64;
        for (ri, meta) in gather_meta.iter().enumerate() {
            let buf = &scratch.gather_bufs[ri];
            let mut off = 0usize;
            for &(_, _, t) in meta {
                let state = &tables[t];
                let row_bytes = state.row_bytes;
                for s in 0..b {
                    let row = &buf[off + s * row_bytes..off + (s + 1) * row_bytes];
                    let out = pooled[t].row_mut(s);
                    simd::add_assign_le(out, row);
                    pim_adds += state.dim as u64;
                }
                off += b * row_bytes;
            }
        }
        let combine_ns = pim_adds as f64 * config.combine_ns_per_add
            + host_adds as f64 * plan.config.host_combine_ns_per_add;
        Ok((pooled, combine_ns, combined))
    }

    fn recycle_pooled(&mut self, set: Vec<Matrix>) {
        if self.scratch.matrix_pool.len() <= 2 {
            self.scratch.matrix_pool.push(set);
        }
    }
}

impl crate::serve::BatchServer for TieredEngine {
    fn staged_batch_capacity(&self) -> usize {
        self.config.batch_size * 2
    }

    fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    fn serve_stream<F>(&mut self, batches: &[QueryBatch], sink: F) -> Result<ServeReport>
    where
        F: FnMut(usize, &[Matrix], &EmbeddingBreakdown),
    {
        TieredEngine::serve_stream(self, batches, sink)
    }
}
