//! Fleet-wide telemetry: per-stage spans, per-DPU utilization counters
//! and cache-traffic statistics for the three-stage serving pipeline.
//!
//! The paper's argument is about *where* cycles and bytes go — EMT
//! lookup traffic vs partial-sum-cache traffic, per-DPU load balance
//! under the three partitioning strategies — so the engine can record,
//! per batch and per launch, everything needed to attribute a latency
//! change to a stage, a DPU, or a traffic stream.
//!
//! Two types split the job:
//!
//! * [`MetricsRegistry`] — the live recorder owned by the engine. All
//!   counter arenas (one [`upmem_sim::DpuCounters`] cell per DPU, the
//!   per-stage [`Accum`]s, the [`cooccur_cache::CacheTraffic`] cell)
//!   are preallocated at engine construction, so steady-state recording
//!   performs **zero heap allocation** — the same invariant the serving
//!   path itself upholds (DESIGN.md §4.5, proven together with it by
//!   `tests/alloc_tests.rs`). Telemetry is off by default; when
//!   disabled every record call is a single branch.
//! * [`Snapshot`] — a serde-serializable, order-stable copy of the
//!   registry taken *outside* the hot path. Every value in a snapshot
//!   is a count or a *modeled* time (never a measured wall clock), so
//!   two runs with the same seed and flags produce byte-identical
//!   snapshots — which is what lets CI diff them against a committed
//!   golden (`tests/golden/metrics_snapshot.json`).

use cooccur_cache::CacheTraffic;
use upmem_sim::DpuCounters;

use crate::engine::EmbeddingBreakdown;
use crate::serve::ServeReport;

/// Version stamp of the [`Snapshot`] schema; bump on any field change
/// so the CI golden diff fails loudly instead of silently reshaping.
///
/// v2 added the [`SchedSnapshot`] block (open-loop scheduler counters).
/// v3 added the [`RuntimeSnapshot`] block (measured-vs-modeled walls
/// from the wall-clock serving runtime; all zero on modeled-only runs).
/// v4 added the [`DriftSnapshot`] block (online replanning and EMT
/// shard-migration counters; all zero with `--replan off`).
/// v5 added the [`TenantSnapshot`] breakout (per-tenant admission,
/// latency, SLO and fleet-share statistics from the multi-tenant
/// fleet; an empty list outside `updlrm serve --tenants`).
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 5;

/// Why the open-loop batcher closed a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedTrigger {
    /// The queue reached `max_batch_size`.
    Size,
    /// The oldest queued request hit its `max_wait_ns` deadline.
    Deadline,
    /// The arrival stream ended and the queue was flushed.
    Drain,
}

/// Running distribution summary of one recurring quantity (a stage's
/// nanoseconds, a launch's imbalance index): count, sum and extrema.
/// Fixed-size so recording never allocates.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Accum {
    /// Observations folded in.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`0.0` before the first).
    pub min: f64,
    /// Largest observation (`0.0` before the first).
    pub max: f64,
}

impl Accum {
    /// Folds one observation into the summary.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean observation (`0.0` before the first).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds another summary into this one (count/sum add, extrema
    /// widen). Lossless for everything a snapshot reports.
    pub fn merge(&mut self, other: &Accum) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One DPU's accumulated utilization in a [`Snapshot`], in DPU-id order.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DpuSnapshot {
    /// DPU id (index into the fleet).
    pub dpu: u32,
    /// Kernel launches this DPU participated in.
    pub launches: u64,
    /// Total modeled cycles across those launches.
    pub cycles: u64,
    /// Total pipeline instructions issued.
    pub instrs: u64,
    /// Total MRAM DMA transfers issued.
    pub dma_transfers: u64,
    /// Total bytes moved over the MRAM DMA engine.
    pub mram_bytes: u64,
    /// Mean tasklet occupancy over all launches (busy / provisioned).
    pub tasklet_occupancy: f64,
}

/// Cache hit/miss and traffic counters in a [`Snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheSnapshot {
    /// Samples probed against the partial-sum cache.
    pub lookups: u64,
    /// Raw embedding-row references across those samples.
    pub refs: u64,
    /// Cached combination rows fetched (partial-sum traffic).
    pub hit_entries: u64,
    /// References covered by those cached combinations.
    pub covered_refs: u64,
    /// References falling through to EMT row fetches.
    pub residual_refs: u64,
    /// Fraction of references served from cached combinations.
    pub hit_rate: f64,
    /// Row fetches avoided versus looking up every reference.
    pub fetches_saved: u64,
}

/// Open-loop scheduler counters in a [`Snapshot`]: admission, overload
/// and batch-formation statistics recorded by the `scheduler` crate
/// through the engine's registry. Fixed-size, so recording never
/// allocates.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SchedSnapshot {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests evicted by the shed-oldest overload policy.
    pub shed_oldest: u64,
    /// Requests dropped at the door by the reject-new policy.
    pub rejected_new: u64,
    /// Requests that found the queue full under the block policy and
    /// had to wait at the door.
    pub blocked: u64,
    /// Batches formed.
    pub batches: u64,
    /// Batches closed because the queue reached `max_batch_size`.
    pub trigger_size: u64,
    /// Batches closed by the oldest request's wait deadline.
    pub trigger_deadline: u64,
    /// Batches closed by the end-of-trace flush.
    pub trigger_drain: u64,
    /// Deepest the admission queue ever got.
    pub queue_depth_high_water: u64,
    /// Formed batch sizes (count, sum, extrema).
    pub batch_fill: Accum,
}

/// Wall-clock serving-runtime measurements in a [`Snapshot`] — the one
/// block whose values are *measured* wall time alongside the modeled
/// quantity they correspond to. Modeled-only runs never populate it,
/// so it stays all-zero there and golden snapshots remain
/// byte-deterministic; wall-clock runs (`updlrm serve --runtime wall`)
/// carry machine-dependent values by design.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RuntimeSnapshot {
    /// Engine shards (worker threads) the runtime drove.
    pub shards: u64,
    /// Whether the run was locked to the modeled-time oracle.
    pub deterministic: bool,
    /// Wall nanoseconds per modeled nanosecond during trace replay.
    pub time_scale: f64,
    /// Measured wall time from runtime start to last completion (ns).
    pub wall_elapsed_ns: f64,
    /// Completed requests per second of measured wall time.
    pub measured_qps: f64,
    /// Sum of modeled pipeline walls across all batches (ns).
    pub modeled_service_ns: f64,
    /// Sum of measured `serve_stream` walls across the same batches
    /// (ns) — the measured-vs-modeled stage-wall comparison.
    pub measured_service_ns: f64,
    /// Measured median per-request latency (ns; wall clock).
    pub measured_p50_latency_ns: f64,
    /// Measured 95th-percentile per-request latency (ns).
    pub measured_p95_latency_ns: f64,
    /// Measured 99th-percentile per-request latency (ns).
    pub measured_p99_latency_ns: f64,
}

/// Online-replanning and EMT shard-migration counters in a
/// [`Snapshot`]. Every time is *modeled* nanoseconds — the migration
/// cost comes from the same DMA/bus charge arithmetic as serving — so
/// the block stays byte-deterministic and golden-diffable.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftSnapshot {
    /// Replans the policy triggered and the engine accepted (a
    /// background migration was started for each).
    pub replans_triggered: u64,
    /// Replans the policy triggered but the engine declined: the fresh
    /// plan did not fit the reserved capacity or changed nothing.
    pub replans_skipped: u64,
    /// Migrations whose atomic flip completed.
    pub migrations_completed: u64,
    /// EMT rows rewritten into the staging region across all
    /// migrations (counted per column-replica copy).
    pub rows_moved: u64,
    /// Bytes moved for those rows (read-out plus write-in).
    pub migrated_bytes: u64,
    /// Total modeled migration cost (ns) charged across all
    /// migrations.
    pub migration_ns: f64,
    /// Modeled time of the most recent flip (ns; 0 before the first).
    pub last_flip_ns: u64,
}

/// One tenant's breakout in a [`Snapshot`]: admission, latency, SLO
/// and fleet-share statistics recorded by the multi-tenant fleet
/// (`tenancy` crate) at end of run. Every value is a count or a
/// modeled time, so the block is byte-deterministic like the rest of
/// the snapshot.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TenantSnapshot {
    /// Tenant name (unique within the fleet).
    pub name: String,
    /// Configured arbitration weight (SLO share).
    pub weight: f64,
    /// Requests admitted into the tenant's queue.
    pub admitted: u64,
    /// Requests evicted by the tenant's shed-oldest policy.
    pub shed: u64,
    /// Requests dropped at the door by reject-new.
    pub rejected: u64,
    /// Requests held at the door by the block policy.
    pub blocked: u64,
    /// Requests that completed through the shared fleet.
    pub completed: u64,
    /// Batches the tenant's queue formed.
    pub batches: u64,
    /// The tenant's p99 latency target, ns (0 = no SLO).
    pub slo_p99_ns: f64,
    /// Completed requests whose latency exceeded the SLO target.
    pub slo_violations: u64,
    /// Mean completed-request latency, ns.
    pub mean_latency_ns: f64,
    /// Median completed-request latency, ns.
    pub p50_latency_ns: f64,
    /// 95th-percentile completed-request latency, ns.
    pub p95_latency_ns: f64,
    /// 99th-percentile completed-request latency, ns.
    pub p99_latency_ns: f64,
    /// Share of total fleet busy time the arbiter was configured to
    /// grant this tenant (`weight / sum of weights`).
    pub fleet_share_configured: f64,
    /// Share of total fleet busy time the tenant actually consumed.
    pub fleet_share_achieved: f64,
}

/// A deterministic, serializable copy of everything a
/// [`MetricsRegistry`] has recorded.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Schema version ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Whether telemetry was enabled (a disabled registry snapshots as
    /// all zeros).
    pub enabled: bool,
    /// `serve`/`serve_stream` calls recorded.
    pub serves: u64,
    /// Batches recorded (serve batches plus direct `run_batch` calls).
    pub batches: u64,
    /// Samples across those batches.
    pub samples: u64,
    /// Host-side routing span per batch (ns).
    pub route_ns: Accum,
    /// Stage-1 CPU→MRAM scatter span per batch (ns).
    pub stage1_ns: Accum,
    /// Stage-2 kernel span per batch (ns).
    pub stage2_ns: Accum,
    /// Stage-3 MRAM→CPU gather span per batch (ns).
    pub stage3_ns: Accum,
    /// Host-side combine span per batch (ns).
    pub combine_ns: Accum,
    /// Modeled energy across all recorded batches (pJ).
    pub energy_pj: f64,
    /// Executed wall across all recorded serves (ns).
    pub serve_wall_ns: f64,
    /// Back-to-back wall of the same batches (ns): what the serves
    /// would have cost without inter-batch overlap.
    pub sequential_wall_ns: f64,
    /// Wall saved by pipeline overlap across all serves
    /// (`sequential_wall_ns - serve_wall_ns`).
    pub overlap_saved_ns: f64,
    /// Bytes scattered CPU→MRAM in stage 1.
    pub stage1_bytes: u64,
    /// Bytes gathered MRAM→CPU in stage 3.
    pub stage3_bytes: u64,
    /// Stage-2 fleet launches recorded (one per batch).
    pub launches: u64,
    /// Per-launch load-imbalance index (slowest DPU cycles over mean;
    /// `1.0` = perfectly balanced).
    pub load_imbalance: Accum,
    /// Partial-sum cache hit/miss and traffic counters.
    pub cache: CacheSnapshot,
    /// Open-loop scheduler counters (all zero outside `updlrm serve`).
    pub sched: SchedSnapshot,
    /// Wall-clock runtime measurements (all zero outside
    /// `updlrm serve --runtime wall`).
    pub runtime: RuntimeSnapshot,
    /// Online-replanning counters (all zero with `--replan off`).
    pub drift: DriftSnapshot,
    /// Per-tenant breakout, in fleet tenant order (empty outside
    /// multi-tenant serving).
    pub tenants: Vec<TenantSnapshot>,
    /// Per-DPU utilization, ascending by DPU id. Empty when telemetry
    /// was disabled.
    pub per_dpu: Vec<DpuSnapshot>,
}

impl Snapshot {
    /// Sum of the three pipeline stages' mean spans (ns) — the paper's
    /// per-batch embedding-layer time.
    pub fn mean_stage_total_ns(&self) -> f64 {
        self.stage1_ns.mean() + self.stage2_ns.mean() + self.stage3_ns.mean()
    }
}

/// The engine's live telemetry recorder. See the module docs for the
/// allocation and determinism contracts.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    serves: u64,
    batches: u64,
    samples: u64,
    route_ns: Accum,
    stage1_ns: Accum,
    stage2_ns: Accum,
    stage3_ns: Accum,
    combine_ns: Accum,
    energy_pj: f64,
    serve_wall_ns: f64,
    sequential_wall_ns: f64,
    overlap_saved_ns: f64,
    stage1_bytes: u64,
    stage3_bytes: u64,
    launches: u64,
    load_imbalance: Accum,
    cache: CacheTraffic,
    sched: SchedSnapshot,
    runtime: RuntimeSnapshot,
    drift: DriftSnapshot,
    /// Per-tenant breakouts, recorded once per tenant at end of a
    /// multi-tenant run (never in the steady-state serving loop).
    tenants: Vec<TenantSnapshot>,
    /// One preallocated cell per DPU, indexed by DPU id.
    per_dpu: Vec<DpuCounters>,
}

impl MetricsRegistry {
    /// Creates a registry for a fleet of `nr_dpus` DPUs. When
    /// `enabled` is false no arena is allocated and every record call
    /// is a single branch.
    pub fn new(enabled: bool, nr_dpus: usize) -> Self {
        MetricsRegistry {
            enabled,
            per_dpu: if enabled {
                vec![DpuCounters::default(); nr_dpus]
            } else {
                Vec::new()
            },
            ..MetricsRegistry::default()
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Resets every counter to zero (the arenas stay allocated).
    pub fn reset(&mut self) {
        let enabled = self.enabled;
        let mut per_dpu = std::mem::take(&mut self.per_dpu);
        per_dpu.fill(DpuCounters::default());
        *self = MetricsRegistry {
            enabled,
            per_dpu,
            ..MetricsRegistry::default()
        };
    }

    /// Records one completed batch's stage breakdown.
    #[inline]
    pub(crate) fn record_batch(&mut self, batch_size: usize, bd: &EmbeddingBreakdown) {
        if !self.enabled {
            return;
        }
        self.batches += 1;
        self.samples += batch_size as u64;
        self.route_ns.record(bd.route_ns);
        self.stage1_ns.record(bd.stage1_ns);
        self.stage2_ns.record(bd.stage2_ns);
        self.stage3_ns.record(bd.stage3_ns);
        self.combine_ns.record(bd.combine_ns);
        self.energy_pj += bd.energy_pj;
    }

    /// Records one stage-2 fleet launch: its load-imbalance index and
    /// every participating DPU's run statistics.
    #[inline]
    pub(crate) fn record_launch(&mut self, imbalance: f64) {
        if !self.enabled {
            return;
        }
        self.launches += 1;
        self.load_imbalance.record(imbalance);
    }

    /// Folds one DPU's launch statistics into its preallocated cell.
    #[inline]
    pub(crate) fn record_dpu(&mut self, dpu: usize, stats: &upmem_sim::DpuRunStats) {
        if !self.enabled {
            return;
        }
        if let Some(cell) = self.per_dpu.get_mut(dpu) {
            cell.record(stats);
        }
    }

    /// Records one host⇄MRAM transfer phase (`to_mram` distinguishes
    /// stage 1 from stage 3).
    #[inline]
    pub(crate) fn record_transfer(&mut self, to_mram: bool, report: &upmem_sim::TransferReport) {
        if !self.enabled {
            return;
        }
        if to_mram {
            self.stage1_bytes += report.bytes;
        } else {
            self.stage3_bytes += report.bytes;
        }
    }

    /// Records one sample's partial-sum cache lookup outcome.
    #[inline]
    pub(crate) fn record_cache_lookup(&mut self, sample_len: usize, hit: &cooccur_cache::CacheHit) {
        if !self.enabled {
            return;
        }
        self.cache.record(sample_len, hit);
    }

    /// Records one completed serve: its executed wall and the
    /// back-to-back wall of the same batches.
    #[inline]
    pub(crate) fn record_serve(&mut self, report: &ServeReport, sequential_ns: f64) {
        if !self.enabled {
            return;
        }
        self.serves += 1;
        self.serve_wall_ns += report.wall_ns;
        self.sequential_wall_ns += sequential_ns;
        self.overlap_saved_ns += sequential_ns - report.wall_ns;
    }

    /// Records one request admitted into the scheduler queue and the
    /// queue depth right after admission.
    #[inline]
    pub fn record_sched_admit(&mut self, depth_after: usize) {
        if !self.enabled {
            return;
        }
        self.sched.admitted += 1;
        self.sched.queue_depth_high_water =
            self.sched.queue_depth_high_water.max(depth_after as u64);
    }

    /// Records one request evicted by the shed-oldest policy.
    #[inline]
    pub fn record_sched_shed(&mut self) {
        if !self.enabled {
            return;
        }
        self.sched.shed_oldest += 1;
    }

    /// Records one request dropped at the door by reject-new.
    #[inline]
    pub fn record_sched_reject(&mut self) {
        if !self.enabled {
            return;
        }
        self.sched.rejected_new += 1;
    }

    /// Records one request held at the door by the block policy.
    #[inline]
    pub fn record_sched_block(&mut self) {
        if !self.enabled {
            return;
        }
        self.sched.blocked += 1;
    }

    /// Records a wall-clock runtime's measured-vs-modeled summary.
    /// Last write wins — a registry describes one run.
    #[inline]
    pub fn record_runtime(&mut self, runtime: RuntimeSnapshot) {
        if !self.enabled {
            return;
        }
        self.runtime = runtime;
    }

    /// Appends one tenant's end-of-run breakout. Called by the
    /// multi-tenant fleet once per tenant *after* the serving loop has
    /// drained (it allocates, so it must never run in steady state);
    /// tenants appear in the snapshot in recording order.
    pub fn record_tenant(&mut self, tenant: TenantSnapshot) {
        if !self.enabled {
            return;
        }
        self.tenants.push(tenant);
    }

    /// Records a replan the engine accepted: a migration of
    /// `rows_moved` row copies (`bytes` total traffic) was started at
    /// a modeled cost of `migration_ns`.
    #[inline]
    pub(crate) fn record_replan_begin(&mut self, rows_moved: u64, bytes: u64, migration_ns: f64) {
        if !self.enabled {
            return;
        }
        self.drift.replans_triggered += 1;
        self.drift.rows_moved += rows_moved;
        self.drift.migrated_bytes += bytes;
        self.drift.migration_ns += migration_ns;
    }

    /// Records a replan the policy triggered but the engine declined.
    #[inline]
    pub(crate) fn record_replan_skip(&mut self) {
        if !self.enabled {
            return;
        }
        self.drift.replans_skipped += 1;
    }

    /// Records a completed migration flip at modeled time `now_ns`.
    #[inline]
    pub(crate) fn record_migration_flip(&mut self, now_ns: u64) {
        if !self.enabled {
            return;
        }
        self.drift.migrations_completed += 1;
        self.drift.last_flip_ns = now_ns;
    }

    /// Records one formed batch: its size and why it was closed.
    #[inline]
    pub fn record_sched_batch(&mut self, size: usize, trigger: SchedTrigger) {
        if !self.enabled {
            return;
        }
        self.sched.batches += 1;
        self.sched.batch_fill.record(size as f64);
        match trigger {
            SchedTrigger::Size => self.sched.trigger_size += 1,
            SchedTrigger::Deadline => self.sched.trigger_deadline += 1,
            SchedTrigger::Drain => self.sched.trigger_drain += 1,
        }
    }

    /// Folds another registry's recorded telemetry into this one,
    /// rotating its per-DPU cells by `dpu_offset` (mod this fleet's
    /// size). The multi-tenant fleet uses this to aggregate each
    /// tenant engine's counters into one fleet-wide snapshot: stage
    /// spans, traffic, scheduler and drift counters fold into fleet
    /// totals, while the per-tenant breakout keeps the per-lane split.
    /// Runtime measurements are not merged (a modeled fleet has no
    /// wall clock). Called once per tenant after the serving loop has
    /// drained, never in steady state.
    pub fn absorb(&mut self, other: &MetricsRegistry, dpu_offset: usize) {
        if !self.enabled || !other.enabled {
            return;
        }
        self.serves += other.serves;
        self.batches += other.batches;
        self.samples += other.samples;
        self.route_ns.merge(&other.route_ns);
        self.stage1_ns.merge(&other.stage1_ns);
        self.stage2_ns.merge(&other.stage2_ns);
        self.stage3_ns.merge(&other.stage3_ns);
        self.combine_ns.merge(&other.combine_ns);
        self.energy_pj += other.energy_pj;
        self.serve_wall_ns += other.serve_wall_ns;
        self.sequential_wall_ns += other.sequential_wall_ns;
        self.overlap_saved_ns += other.overlap_saved_ns;
        self.stage1_bytes += other.stage1_bytes;
        self.stage3_bytes += other.stage3_bytes;
        self.launches += other.launches;
        self.load_imbalance.merge(&other.load_imbalance);
        self.cache.lookups += other.cache.lookups;
        self.cache.refs += other.cache.refs;
        self.cache.hit_entries += other.cache.hit_entries;
        self.cache.covered_refs += other.cache.covered_refs;
        self.cache.residual_refs += other.cache.residual_refs;
        self.sched.admitted += other.sched.admitted;
        self.sched.shed_oldest += other.sched.shed_oldest;
        self.sched.rejected_new += other.sched.rejected_new;
        self.sched.blocked += other.sched.blocked;
        self.sched.batches += other.sched.batches;
        self.sched.trigger_size += other.sched.trigger_size;
        self.sched.trigger_deadline += other.sched.trigger_deadline;
        self.sched.trigger_drain += other.sched.trigger_drain;
        self.sched.queue_depth_high_water = self
            .sched
            .queue_depth_high_water
            .max(other.sched.queue_depth_high_water);
        self.sched.batch_fill.merge(&other.sched.batch_fill);
        self.drift.replans_triggered += other.drift.replans_triggered;
        self.drift.replans_skipped += other.drift.replans_skipped;
        self.drift.migrations_completed += other.drift.migrations_completed;
        self.drift.rows_moved += other.drift.rows_moved;
        self.drift.migrated_bytes += other.drift.migrated_bytes;
        self.drift.migration_ns += other.drift.migration_ns;
        self.drift.last_flip_ns = self.drift.last_flip_ns.max(other.drift.last_flip_ns);
        let n = self.per_dpu.len();
        if n > 0 {
            for (i, c) in other.per_dpu.iter().enumerate() {
                self.per_dpu[(i + dpu_offset) % n].merge(c);
            }
        }
    }

    /// Copies the registry into a deterministic, serializable
    /// [`Snapshot`]. Allocates (the per-DPU vector) — call it outside
    /// the serving loop.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            enabled: self.enabled,
            serves: self.serves,
            batches: self.batches,
            samples: self.samples,
            route_ns: self.route_ns,
            stage1_ns: self.stage1_ns,
            stage2_ns: self.stage2_ns,
            stage3_ns: self.stage3_ns,
            combine_ns: self.combine_ns,
            energy_pj: self.energy_pj,
            serve_wall_ns: self.serve_wall_ns,
            sequential_wall_ns: self.sequential_wall_ns,
            overlap_saved_ns: self.overlap_saved_ns,
            stage1_bytes: self.stage1_bytes,
            stage3_bytes: self.stage3_bytes,
            launches: self.launches,
            load_imbalance: self.load_imbalance,
            cache: CacheSnapshot {
                lookups: self.cache.lookups,
                refs: self.cache.refs,
                hit_entries: self.cache.hit_entries,
                covered_refs: self.cache.covered_refs,
                residual_refs: self.cache.residual_refs,
                hit_rate: self.cache.hit_rate(),
                fetches_saved: self.cache.fetches_saved(),
            },
            sched: self.sched,
            runtime: self.runtime,
            drift: self.drift,
            tenants: self.tenants.clone(),
            per_dpu: self
                .per_dpu
                .iter()
                .enumerate()
                .map(|(i, c)| DpuSnapshot {
                    dpu: i as u32,
                    launches: c.launches,
                    cycles: c.cycles,
                    instrs: c.instrs,
                    dma_transfers: c.dma_transfers,
                    mram_bytes: c.dma_bytes,
                    tasklet_occupancy: c.occupancy(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_tracks_extrema_and_mean() {
        let mut a = Accum::default();
        assert_eq!(a.mean(), 0.0);
        a.record(3.0);
        a.record(1.0);
        a.record(5.0);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 5.0);
        assert_eq!(a.sum, 9.0);
        assert_eq!(a.mean(), 3.0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::new(false, 8);
        m.record_batch(64, &EmbeddingBreakdown::default());
        m.record_launch(1.5);
        m.record_transfer(true, &upmem_sim::TransferReport::default());
        let s = m.snapshot();
        assert!(!s.enabled);
        assert_eq!(s.batches, 0);
        assert_eq!(s.launches, 0);
        assert!(s.per_dpu.is_empty());
    }

    #[test]
    fn enabled_registry_accumulates_and_resets() {
        let mut m = MetricsRegistry::new(true, 2);
        let bd = EmbeddingBreakdown {
            stage1_ns: 10.0,
            stage2_ns: 20.0,
            stage3_ns: 30.0,
            route_ns: 1.0,
            combine_ns: 2.0,
            energy_pj: 100.0,
            ..EmbeddingBreakdown::default()
        };
        m.record_batch(4, &bd);
        m.record_batch(4, &bd);
        m.record_launch(1.25);
        let s = m.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.samples, 8);
        assert_eq!(s.stage1_ns.sum, 20.0);
        assert_eq!(s.stage2_ns.mean(), 20.0);
        assert_eq!(s.energy_pj, 200.0);
        assert_eq!(s.load_imbalance.max, 1.25);
        assert_eq!(s.per_dpu.len(), 2);
        assert_eq!(s.mean_stage_total_ns(), 60.0);

        m.reset();
        let s = m.snapshot();
        assert!(s.enabled);
        assert_eq!(s.batches, 0);
        assert_eq!(s.per_dpu.len(), 2, "arena survives reset");
        assert_eq!(s.per_dpu[0].launches, 0);
    }

    #[test]
    fn sched_counters_accumulate_and_reset() {
        let mut m = MetricsRegistry::new(true, 1);
        m.record_sched_admit(3);
        m.record_sched_admit(7);
        m.record_sched_admit(5);
        m.record_sched_shed();
        m.record_sched_reject();
        m.record_sched_block();
        m.record_sched_batch(64, SchedTrigger::Size);
        m.record_sched_batch(12, SchedTrigger::Deadline);
        m.record_sched_batch(3, SchedTrigger::Drain);
        let s = m.snapshot();
        assert_eq!(s.sched.admitted, 3);
        assert_eq!(s.sched.queue_depth_high_water, 7);
        assert_eq!(s.sched.shed_oldest, 1);
        assert_eq!(s.sched.rejected_new, 1);
        assert_eq!(s.sched.blocked, 1);
        assert_eq!(s.sched.batches, 3);
        assert_eq!(s.sched.trigger_size, 1);
        assert_eq!(s.sched.trigger_deadline, 1);
        assert_eq!(s.sched.trigger_drain, 1);
        assert_eq!(s.sched.batch_fill.max, 64.0);
        assert_eq!(s.sched.batch_fill.min, 3.0);
        m.reset();
        assert_eq!(m.snapshot().sched, SchedSnapshot::default());

        // Disabled registries ignore sched records too.
        let mut off = MetricsRegistry::new(false, 1);
        off.record_sched_admit(9);
        off.record_sched_batch(4, SchedTrigger::Size);
        assert_eq!(off.snapshot().sched, SchedSnapshot::default());
    }

    #[test]
    fn runtime_block_records_and_resets() {
        let mut m = MetricsRegistry::new(true, 1);
        assert_eq!(m.snapshot().runtime, RuntimeSnapshot::default());
        let rt = RuntimeSnapshot {
            shards: 2,
            deterministic: false,
            time_scale: 4.0,
            wall_elapsed_ns: 1e9,
            measured_qps: 1234.5,
            modeled_service_ns: 5e8,
            measured_service_ns: 7e8,
            measured_p50_latency_ns: 1e6,
            measured_p95_latency_ns: 2e6,
            measured_p99_latency_ns: 3e6,
        };
        m.record_runtime(rt);
        assert_eq!(m.snapshot().runtime, rt);
        m.reset();
        assert_eq!(m.snapshot().runtime, RuntimeSnapshot::default());

        // Disabled registries ignore runtime records too.
        let mut off = MetricsRegistry::new(false, 1);
        off.record_runtime(rt);
        assert_eq!(off.snapshot().runtime, RuntimeSnapshot::default());
    }

    #[test]
    fn drift_counters_accumulate_and_reset() {
        let mut m = MetricsRegistry::new(true, 1);
        m.record_replan_begin(100, 25_600, 5_000.0);
        m.record_replan_begin(50, 12_800, 2_500.0);
        m.record_replan_skip();
        m.record_migration_flip(123_456);
        let s = m.snapshot();
        assert_eq!(s.drift.replans_triggered, 2);
        assert_eq!(s.drift.replans_skipped, 1);
        assert_eq!(s.drift.migrations_completed, 1);
        assert_eq!(s.drift.rows_moved, 150);
        assert_eq!(s.drift.migrated_bytes, 38_400);
        assert_eq!(s.drift.migration_ns, 7_500.0);
        assert_eq!(s.drift.last_flip_ns, 123_456);
        m.reset();
        assert_eq!(m.snapshot().drift, DriftSnapshot::default());

        // Disabled registries ignore drift records too.
        let mut off = MetricsRegistry::new(false, 1);
        off.record_replan_begin(1, 1, 1.0);
        off.record_migration_flip(9);
        assert_eq!(off.snapshot().drift, DriftSnapshot::default());
    }

    #[test]
    fn tenant_breakouts_record_in_order_and_reset() {
        let mut m = MetricsRegistry::new(true, 1);
        assert!(m.snapshot().tenants.is_empty());
        let a = TenantSnapshot {
            name: "victim".into(),
            weight: 2.0,
            admitted: 100,
            completed: 98,
            shed: 2,
            batches: 7,
            slo_p99_ns: 2e6,
            slo_violations: 1,
            p99_latency_ns: 1.5e6,
            fleet_share_configured: 0.4,
            fleet_share_achieved: 0.35,
            ..TenantSnapshot::default()
        };
        let b = TenantSnapshot {
            name: "adversary".into(),
            weight: 3.0,
            ..TenantSnapshot::default()
        };
        m.record_tenant(a.clone());
        m.record_tenant(b.clone());
        let s = m.snapshot();
        assert_eq!(s.tenants, vec![a, b], "recording order is snapshot order");
        m.reset();
        assert!(m.snapshot().tenants.is_empty());

        // Disabled registries ignore tenant records too.
        let mut off = MetricsRegistry::new(false, 1);
        off.record_tenant(TenantSnapshot::default());
        assert!(off.snapshot().tenants.is_empty());
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut m = MetricsRegistry::new(true, 3);
        m.record_batch(
            16,
            &EmbeddingBreakdown {
                stage1_ns: 1.5,
                stage2_ns: 2.5,
                stage3_ns: 3.5,
                ..EmbeddingBreakdown::default()
            },
        );
        m.record_launch(1.1);
        m.record_tenant(TenantSnapshot {
            name: "solo".into(),
            weight: 1.0,
            completed: 42,
            ..TenantSnapshot::default()
        });
        let snap = m.snapshot();
        let text = serde::json::to_string_pretty(&snap);
        let back: Snapshot = serde::json::from_str(&text).expect("parses");
        assert_eq!(back, snap);
        // Serialization is deterministic: same snapshot, same bytes.
        assert_eq!(serde::json::to_string_pretty(&snap), text);
    }
}
