//! The DPU-side embedding kernel (stage 2 of Fig. 4).
//!
//! Each DPU holds one tile of one embedding table (its row partition ×
//! its column slice) plus, under cache-aware partitioning, a region of
//! cached partial-sum rows. Per batch, the host writes a *reference
//! stream* into MRAM and launches this kernel.
//!
//! ## Execution model
//!
//! The host deduplicates row references across the whole batch
//! (pre-processing, Fig. 4 stage 1): a row needed by several samples is
//! fetched from MRAM exactly once. Unique rows are distributed
//! round-robin over the tasklets; every tasklet accumulates its rows
//! into a *shared* WRAM accumulator block (`n_samples x row_bytes`),
//! which on real hardware is guarded by per-accumulator mutexes (the
//! cost model charges that synchronization inside the accumulate cost).
//! Finally each tasklet writes its share of the per-sample partial-sum
//! rows to the MRAM output region.
//!
//! ## Reference stream layout (little-endian `u32`, 8-byte padded)
//!
//! ```text
//! input_base: [n_tasklets + 1 stream end-offsets, bytes rel. to streams_base]
//! per tasklet: [n_entries] { [ref] [k] [k x global sample ids] } x n_entries
//! ```
//!
//! A `ref` with [`CACHE_REF_BIT`] set addresses the cache region
//! (slot within this partition's cached combination rows), otherwise
//! the EMT region.

use dlrm_model::quant::{self, QROW_HEADER_BYTES};
use dlrm_model::{simd, EmbedDtype, FxHashMap};
use std::collections::HashMap;
use std::sync::Mutex;
use upmem_sim::{DpuId, Kernel, SimError, TaskletCtx};

/// High bit of a reference word: set = cache region, clear = EMT region.
pub const CACHE_REF_BIT: u32 = 1 << 31;

/// Per-DPU launch parameters for [`EmbeddingKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpuTask {
    /// MRAM base of the EMT tile (row-major `row_bytes` rows).
    pub emt_base: u32,
    /// MRAM base of the cached combination rows.
    pub cache_base: u32,
    /// MRAM base of the reference stream written by the host.
    pub input_base: u32,
    /// MRAM base of the output region (`n_samples` rows).
    pub output_base: u32,
    /// Samples in the batch.
    pub n_samples: u32,
}

/// The embedding lookup-and-reduce kernel.
///
/// Two stream formats are supported (see [`build_stream`]):
///
/// * **CSR** (`dedup = false`, the paper's IDX+OFFSET transfer): each
///   tasklet owns the samples `s ≡ tasklet_id (mod n_tasklets)`,
///   gathers their rows and writes the partial sums directly — no
///   barrier needed.
/// * **Dedup** (`dedup = true`, an extension): unique rows are dealt
///   round-robin to tasklets, accumulated into shared WRAM and written
///   back after a barrier ([`Kernel::finalize`]).
#[derive(Debug, Default)]
pub struct EmbeddingKernel {
    /// Bytes per *output* (and cache) row (`N_c * 4`), a multiple of 8.
    pub row_bytes: usize,
    /// Whether streams use the dedup format.
    pub dedup: bool,
    /// Storage dtype of the EMT tile. Cache rows, accumulators and
    /// output rows are always f32; only the EMT fetch (and its MRAM
    /// stride) changes under [`EmbedDtype::Int8`], where each row is a
    /// [`quant`]-format `[scale][min][u8 values]` record dequantized on
    /// the fly into the accumulate.
    pub dtype: EmbedDtype,
    /// Per-DPU parameters; DPUs not present return immediately.
    pub tasks: HashMap<DpuId, DpuTask>,
    /// Reusable per-DPU tasklet scratch (accumulator/stream/output
    /// buffers; embedding rows are borrowed straight out of MRAM via
    /// [`TaskletCtx::mram_view`]). Behind a `Mutex` only to satisfy
    /// `Kernel: Sync`: all
    /// tasklets of one DPU run sequentially on one host thread, and
    /// parallel launch workers own disjoint DPU sets, so every lock is
    /// uncontended. Warmed buffers make steady-state runs allocation
    /// free.
    scratch: HashMap<DpuId, Mutex<TaskletScratch>>,
}

/// Reusable buffers for one DPU's tasklets (see
/// [`EmbeddingKernel::scratch`](EmbeddingKernel)).
#[derive(Debug, Default)]
struct TaskletScratch {
    /// f32 accumulator (row decode / CSR sample accumulate).
    acc: Vec<f32>,
    /// Absolute MRAM byte offsets of one sample's rows, staged for the
    /// fused [`simd::sum_rows_le`] gather (CSR f32 fast path).
    offs: Vec<usize>,
}

impl EmbeddingKernel {
    /// Creates an f32 kernel for tiles of `row_bytes` bytes per row
    /// reading streams built with the same `dedup` flag.
    pub fn new(row_bytes: usize, dedup: bool) -> Self {
        Self::with_dtype(row_bytes, dedup, EmbedDtype::F32)
    }

    /// Creates a kernel whose EMT tile is stored as `dtype` rows.
    /// `row_bytes` is the f32 output/cache row size (`N_c * 4`)
    /// regardless of the EMT storage dtype.
    pub fn with_dtype(row_bytes: usize, dedup: bool, dtype: EmbedDtype) -> Self {
        EmbeddingKernel {
            row_bytes,
            dedup,
            dtype,
            tasks: HashMap::new(),
            scratch: HashMap::new(),
        }
    }

    /// Bytes per EMT row as stored in MRAM (the EMT region stride).
    #[inline]
    pub fn emt_row_bytes(&self) -> usize {
        self.dtype.stored_row_bytes(self.row_bytes / 4)
    }

    /// Registers one DPU's launch parameters (and allocates its
    /// reusable scratch entry).
    pub fn set_task(&mut self, dpu: DpuId, task: DpuTask) {
        self.tasks.insert(dpu, task);
        self.scratch.entry(dpu).or_default();
    }

    /// Locks `dpu`'s scratch and runs `f` with it; DPUs registered
    /// through [`EmbeddingKernel::set_task`] always have one, but a
    /// task inserted directly into [`EmbeddingKernel::tasks`] falls
    /// back to a temporary.
    fn with_scratch<R>(&self, dpu: DpuId, f: impl FnOnce(&mut TaskletScratch) -> R) -> R {
        match self.scratch.get(&dpu) {
            Some(m) => f(&mut m.lock().unwrap_or_else(|e| e.into_inner())),
            None => f(&mut TaskletScratch::default()),
        }
    }
}

fn u32_at(buf: &[u8], idx: usize) -> u32 {
    u32::from_le_bytes([
        buf[4 * idx],
        buf[4 * idx + 1],
        buf[4 * idx + 2],
        buf[4 * idx + 3],
    ])
}

impl EmbeddingKernel {
    /// CSR mode: each tasklet serves its own samples end to end.
    ///
    /// The whole read side (offset pairs, reference arrays, embedding
    /// and cache rows) runs over a [`TaskletCtx::split_reader`] window:
    /// every array is borrowed straight out of MRAM with zero staging
    /// copies, while the matching DMA charges go through the split-off
    /// [`upmem_sim::Charges`] — the same charge sequence the copying
    /// path would issue, so modeled time is unchanged. The reader spans
    /// everything below the output region (EMT, cache, input — the
    /// layout places output last), which is exactly the kernel's read
    /// footprint.
    fn run_csr(
        &self,
        ctx: &mut TaskletCtx<'_>,
        task: DpuTask,
        scr: &mut TaskletScratch,
    ) -> Result<(), SimError> {
        let t = ctx.tasklet_id();
        let n_tasklets = ctx.n_tasklets();
        let n_c = self.row_bytes / 4;
        let n_samples = task.n_samples as usize;
        let refs_base = task.input_base + (((n_samples + 1) * 4 + 7) & !7) as u32;
        let erb = self.emt_row_bytes();
        // Fast row path: when every row fetch is a single aligned DMA
        // (the layout planner always produces this shape), rows are
        // indexed straight out of the region slices and the per-row
        // charges are issued in bulk after the loop — all charge
        // counters are integers, so `n` identical charges and one
        // multiplied charge are the same sum. Odd-shaped tasks (rows
        // not a multiple of 8, oversized rows, misaligned bases) take
        // the general per-row DMA path below, which reports the exact
        // alignment/size errors the DMA engine would.
        let align = upmem_sim::arch::DMA_ALIGN;
        let fast = self.row_bytes.is_multiple_of(align)
            && erb.is_multiple_of(align)
            && self.row_bytes <= upmem_sim::arch::DMA_MAX_TRANSFER
            && erb <= upmem_sim::arch::DMA_MAX_TRANSFER
            && (task.emt_base as usize).is_multiple_of(align)
            && (task.cache_base as usize).is_multiple_of(align);
        let mut s = t;
        while s < n_samples {
            let (mram, ch) = ctx.split_reader(task.output_base as usize);
            // offsets[s], offsets[s+1]: the 8-byte request spans at most
            // 16 aligned bytes, always a single DMA.
            let oaddr = task.input_base + (4 * s) as u32;
            let ostart = oaddr & !7;
            let oend = (oaddr as usize + 8 + 7) & !7;
            let ow = mram.dma(ostart, oend - ostart as usize)?;
            ch.charge_dma(oend - ostart as usize);
            let olead = (oaddr - ostart) as usize;
            let start = u32_at(&ow[olead..], 0) as usize;
            let end = u32_at(&ow[olead..], 1) as usize;
            ch.charge_int_ops(4);
            if end < start {
                return Err(SimError::KernelFault(format!(
                    "sample {s}: offsets decrease ({start}..{end})"
                )));
            }
            let n_refs = end - start;
            // Reference array: one contiguous borrow, charged as the
            // same <= 2048 B DMA chunk series a staged read would use.
            let raddr = refs_base + (4 * start) as u32;
            let rstart = raddr & !7;
            let rend = (raddr as usize + 4 * n_refs + 7) & !7;
            let window = rend - rstart as usize;
            let refs = if n_refs > 0 {
                let refs = mram.window(rstart, window)?;
                let mut off = 0usize;
                while off < window {
                    let chunk = (window - off).min(upmem_sim::arch::DMA_MAX_TRANSFER);
                    ch.charge_dma(chunk);
                    off += chunk;
                }
                &refs[(raddr - rstart) as usize..]
            } else {
                &[][..]
            };
            scr.acc.clear();
            scr.acc.resize(n_c, 0.0);
            ch.charge_int_ops((n_c / 2) as u64);
            // Loop bookkeeping is linear in iterations, so one bulk
            // charge up front is bit-identical to charging inside the
            // loop — and keeps the per-reference path to the fetch,
            // the accumulate and their own charges.
            ch.charge_loop(n_refs as u64);
            if fast && n_refs > 0 {
                let cache_rows = mram.tail(task.cache_base)?;
                let emt_rows = mram.tail(task.emt_base)?;
                let oob = |base: u32, off: usize, len: usize| SimError::MramOutOfBounds {
                    addr: base + off as u32,
                    len,
                    capacity: mram.len(),
                };
                let mut n_cache = 0u64;
                let mut n_emt = 0u64;
                match self.dtype {
                    EmbedDtype::F32 => {
                        // Cache and EMT rows have the same shape, so
                        // one pair of bulk charges covers both regions.
                        // Row addresses are resolved (and bounds-checked
                        // with the DMA engine's exact error) up front,
                        // then all rows accumulate in one fused SIMD
                        // pass that keeps the accumulator in registers.
                        let bank = mram.tail(0)?;
                        scr.offs.clear();
                        for i in 0..n_refs {
                            let r = u32_at(refs, i);
                            let off = (r & !CACHE_REF_BIT) as usize * self.row_bytes;
                            let base = if r & CACHE_REF_BIT != 0 {
                                n_cache += 1;
                                task.cache_base
                            } else {
                                n_emt += 1;
                                task.emt_base
                            };
                            let abs = base as usize + off;
                            if abs + self.row_bytes > bank.len() {
                                return Err(oob(base, off, self.row_bytes));
                            }
                            scr.offs.push(abs);
                        }
                        simd::sum_rows_le(&mut scr.acc, bank, &scr.offs);
                        ch.charge_dma_repeat(self.row_bytes, n_cache + n_emt);
                        ch.charge_accumulate_repeat(n_c as u64, n_cache + n_emt);
                    }
                    EmbedDtype::Int8 => {
                        for i in 0..n_refs {
                            let r = u32_at(refs, i);
                            let slot = (r & !CACHE_REF_BIT) as usize;
                            if r & CACHE_REF_BIT != 0 {
                                // Cache rows stay f32 partial sums.
                                let off = slot * self.row_bytes;
                                let row = cache_rows
                                    .get(off..off + self.row_bytes)
                                    .ok_or_else(|| oob(task.cache_base, off, self.row_bytes))?;
                                simd::add_assign_le(&mut scr.acc, row);
                                n_cache += 1;
                            } else {
                                let off = slot * erb;
                                let qrow = emt_rows
                                    .get(off..off + erb)
                                    .ok_or_else(|| oob(task.emt_base, off, erb))?;
                                let (scale, min) = quant::row_params(qrow)
                                    .map_err(|e| SimError::KernelFault(e.to_string()))?;
                                simd::add_assign_dequant_u8(
                                    &mut scr.acc,
                                    &qrow[QROW_HEADER_BYTES..QROW_HEADER_BYTES + n_c],
                                    scale,
                                    min,
                                );
                                n_emt += 1;
                            }
                        }
                        ch.charge_dma_repeat(self.row_bytes, n_cache);
                        ch.charge_dma_repeat(erb, n_emt);
                        ch.charge_accumulate_repeat(n_c as u64, n_cache);
                        ch.charge_accumulate_u8_repeat(n_c as u64, n_emt);
                    }
                }
            } else {
                for i in 0..n_refs {
                    let r = u32_at(refs, i);
                    let slot = (r & !CACHE_REF_BIT) as usize;
                    if r & CACHE_REF_BIT != 0 {
                        // Cache rows are always stored as f32 partial sums.
                        let row = mram.dma(
                            task.cache_base + (slot * self.row_bytes) as u32,
                            self.row_bytes,
                        )?;
                        ch.charge_dma(self.row_bytes);
                        simd::add_assign_le(&mut scr.acc, row);
                        ch.charge_accumulate(n_c as u64);
                    } else {
                        match self.dtype {
                            EmbedDtype::F32 => {
                                let row = mram.dma(
                                    task.emt_base + (slot * self.row_bytes) as u32,
                                    self.row_bytes,
                                )?;
                                ch.charge_dma(self.row_bytes);
                                simd::add_assign_le(&mut scr.acc, row);
                                ch.charge_accumulate(n_c as u64);
                            }
                            EmbedDtype::Int8 => {
                                let qrow = mram.dma(task.emt_base + (slot * erb) as u32, erb)?;
                                ch.charge_dma(erb);
                                let (scale, min) = quant::row_params(qrow)
                                    .map_err(|e| SimError::KernelFault(e.to_string()))?;
                                simd::add_assign_dequant_u8(
                                    &mut scr.acc,
                                    &qrow[QROW_HEADER_BYTES..QROW_HEADER_BYTES + n_c],
                                    scale,
                                    min,
                                );
                                ch.charge_accumulate_u8(n_c as u64);
                            }
                        }
                    }
                }
            }
            let dst = ctx.mram_view_mut(
                task.output_base + (s * self.row_bytes) as u32,
                self.row_bytes,
            )?;
            for (b, a) in dst.chunks_exact_mut(4).zip(scr.acc.iter()) {
                b.copy_from_slice(&a.to_le_bytes());
            }
            ctx.charge_loop(1);
            s += n_tasklets;
        }
        Ok(())
    }
}

impl Kernel for EmbeddingKernel {
    fn shared_wram_bytes(&self) -> usize {
        if !self.dedup {
            return 0;
        }
        // The shared accumulator block: one row per sample of the
        // largest registered batch.
        self.tasks
            .values()
            .map(|t| t.n_samples as usize * self.row_bytes)
            .max()
            .unwrap_or(0)
    }

    fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
        let Some(task) = self.tasks.get(&ctx.dpu_id()).copied() else {
            return Ok(());
        };
        if !self.dedup {
            return self.with_scratch(ctx.dpu_id(), |scr| self.run_csr(ctx, task, scr));
        }
        self.with_scratch(ctx.dpu_id(), |scr| self.run_dedup(ctx, task, scr))
    }

    fn finalize(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
        // Post-barrier phase (dedup mode only): each tasklet writes its
        // share of the per-sample output rows from the shared
        // accumulators to MRAM.
        if !self.dedup {
            return Ok(());
        }
        let Some(task) = self.tasks.get(&ctx.dpu_id()).copied() else {
            return Ok(());
        };
        let t = ctx.tasklet_id();
        let n_tasklets = ctx.n_tasklets();
        let n_samples = task.n_samples as usize;
        let mut s = t;
        while s < n_samples {
            let off = s * self.row_bytes;
            ctx.mram_write_from_shared(task.output_base + off as u32, off, self.row_bytes)?;
            ctx.charge_loop(1);
            s += n_tasklets;
        }
        Ok(())
    }
}

impl EmbeddingKernel {
    /// Dedup mode: unique rows dealt round-robin, accumulated into the
    /// shared WRAM block.
    fn run_dedup(
        &self,
        ctx: &mut TaskletCtx<'_>,
        task: DpuTask,
        scr: &mut TaskletScratch,
    ) -> Result<(), SimError> {
        let t = ctx.tasklet_id();
        let n_tasklets = ctx.n_tasklets();
        let n_c = self.row_bytes / 4;
        let n_samples = task.n_samples as usize;
        let acc_bytes = n_samples * self.row_bytes;
        // As in `run_csr`, the read side (header, tasklet stream,
        // rows) is borrowed zero-copy from a split reader; the shared
        // accumulator block comes from the same split, so row views
        // stay alive across shared-WRAM accumulates. Charges mirror the
        // staged-copy path exactly.
        let (mram, shared, ch) = ctx.split_reader_shared(task.output_base as usize);

        // Tasklet 0 zeroes the shared accumulator block (the others
        // wait at a barrier on real hardware; launch overhead covers it).
        if t == 0 {
            shared[..acc_bytes].fill(0);
            ch.charge_int_ops((n_samples * n_c / 2) as u64);
        }

        // Header: stream end-offsets for every tasklet (one padded DMA
        // window — `MAX_TASKLETS + 2` u32s fit a single transfer).
        let hbytes = (n_tasklets + 2) * 4;
        let hwin = (hbytes + 7) & !7;
        let hdr = mram.dma(task.input_base, hwin)?;
        ch.charge_dma(hwin);
        ch.charge_int_ops(4);
        let streams_base = task.input_base + (((n_tasklets + 2) * 4 + 7) & !7) as u32;
        let start = u32_at(hdr, t);
        let end = u32_at(hdr, t + 1);
        if end < start {
            return Err(SimError::KernelFault(format!(
                "tasklet {t}: stream ends before it starts ({start}..{end})"
            )));
        }

        // This tasklet's unique-row entries: one contiguous borrow,
        // charged as the <= 2048 B DMA chunk series of a staged read.
        let slen = (end - start) as usize;
        if slen > 0 {
            let saddr = streams_base + start;
            let sstart = saddr & !7;
            let send = (saddr as usize + slen + 7) & !7;
            let swin = send - sstart as usize;
            let sview = mram.window(sstart, swin)?;
            let mut off = 0usize;
            while off < swin {
                let chunk = (swin - off).min(upmem_sim::arch::DMA_MAX_TRANSFER);
                ch.charge_dma(chunk);
                off += chunk;
            }
            let stream = &sview[(saddr - sstart) as usize..];
            let n_entries = u32_at(stream, 0) as usize;
            ch.charge_int_ops(2);
            let mut pos = 1usize; // u32 cursor
            for _ in 0..n_entries {
                if (pos + 2) * 4 > slen {
                    return Err(SimError::KernelFault("truncated stream entry".into()));
                }
                let r = u32_at(stream, pos);
                let k = u32_at(stream, pos + 1) as usize;
                pos += 2;
                if (pos + k) * 4 > slen {
                    return Err(SimError::KernelFault("truncated sample id list".into()));
                }
                // Resolve the row address, fetch it once, and decode it
                // to f32 once; it is added into every referencing
                // sample below.
                let slot = (r & !CACHE_REF_BIT) as usize;
                ch.charge_loop(1);
                if r & CACHE_REF_BIT != 0 || self.dtype == EmbedDtype::F32 {
                    let base = if r & CACHE_REF_BIT != 0 {
                        task.cache_base
                    } else {
                        task.emt_base
                    };
                    let row = mram.dma(base + (slot * self.row_bytes) as u32, self.row_bytes)?;
                    ch.charge_dma(self.row_bytes);
                    scr.acc.clear();
                    scr.acc.extend(
                        row.chunks_exact(4)
                            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk"))),
                    );
                } else {
                    // Quantized EMT row: fetch the narrow record and
                    // dequantize into the per-entry decode buffer (the
                    // dequantize cost rides on the u8 accumulate charge).
                    let erb = self.emt_row_bytes();
                    let qrow = mram.dma(task.emt_base + (slot * erb) as u32, erb)?;
                    ch.charge_dma(erb);
                    let (scale, min) = quant::row_params(qrow)
                        .map_err(|e| SimError::KernelFault(e.to_string()))?;
                    scr.acc.clear();
                    scr.acc.resize(n_c, 0.0);
                    simd::add_assign_dequant_u8(
                        &mut scr.acc,
                        &qrow[QROW_HEADER_BYTES..QROW_HEADER_BYTES + n_c],
                        scale,
                        min,
                    );
                    ch.charge_accumulate_u8(n_c as u64);
                }
                // Accumulate into each referencing sample's shared row
                // (mutex-guarded on hardware; cost inside the charge).
                for j in 0..k {
                    let sample = u32_at(stream, pos + j) as usize;
                    if sample >= n_samples {
                        return Err(SimError::KernelFault(format!(
                            "sample id {sample} out of range {n_samples}"
                        )));
                    }
                    let off = sample * self.row_bytes;
                    let dst = &mut shared[off..off + self.row_bytes];
                    simd::add_assign_into_le(dst, &scr.acc);
                    ch.charge_accumulate(n_c as u64);
                }
                pos += k;
            }
        }

        Ok(())
    }
}

/// Builds one DPU's reference stream from per-sample reference lists.
///
/// `refs_per_sample[s]` holds sample `s`'s encoded references (EMT slot
/// or cache slot with [`CACHE_REF_BIT`]).
///
/// * `dedup = false` (the paper's format): a CSR stream —
///   `offsets[n_samples + 1]` followed by the flat 4-byte reference
///   array, exactly the IDX+OFFSET transfer of Fig. 4.
/// * `dedup = true` (extension): references are deduplicated across the
///   whole batch — a row shared by several samples is fetched from MRAM
///   once. Unique entries `[ref][k][k sample ids]` are dealt
///   round-robin to the `n_tasklets` tasklet streams behind a
///   per-tasklet end-offset header.
///
/// Returns the bytes to write at `input_base` (8-byte padded).
pub fn build_stream(refs_per_sample: &[Vec<u32>], n_tasklets: usize, dedup: bool) -> Vec<u8> {
    let mut builder = StreamBuilder::default();
    let mut out = Vec::new();
    build_stream_into(refs_per_sample, n_tasklets, dedup, &mut builder, &mut out);
    out
}

/// Reusable working state for [`build_stream_into`]: the dedup format's
/// first-seen-order index and per-tasklet streams. One builder serves
/// any number of streams; a warm builder makes stream construction
/// allocation free.
#[derive(Debug, Default)]
pub struct StreamBuilder {
    /// ref -> slot in `order`/`users`. Probed once per reference on the
    /// serving path, hence the fast hasher.
    index: FxHashMap<u32, usize>,
    /// Unique refs in first-seen order.
    order: Vec<u32>,
    /// Sample ids per unique ref, parallel to `order` (recycled
    /// lazily: only the first `order.len()` entries are live).
    users: Vec<Vec<u32>>,
    /// Per-tasklet u32 streams.
    streams: Vec<Vec<u32>>,
}

/// [`build_stream`] serializing into the caller-owned `out` (cleared
/// first, capacity reused, pre-sized from the known sample/ref counts).
/// `builder` holds the dedup working state; it is untouched for CSR
/// streams. Output bytes are identical to [`build_stream`].
pub fn build_stream_into(
    refs_per_sample: &[Vec<u32>],
    n_tasklets: usize,
    dedup: bool,
    builder: &mut StreamBuilder,
    out: &mut Vec<u8>,
) {
    assert!(n_tasklets > 0, "need at least one tasklet");
    out.clear();
    if !dedup {
        // CSR: offsets (n_samples + 1, 8-byte padded), then refs — both
        // region sizes are known up front.
        let n = refs_per_sample.len();
        let total_refs: usize = refs_per_sample.iter().map(Vec::len).sum();
        let off_bytes = ((n + 1) * 4 + 7) & !7;
        let ref_bytes = (total_refs * 4 + 7) & !7;
        out.reserve(off_bytes + ref_bytes);
        let mut acc = 0u32;
        out.extend_from_slice(&0u32.to_le_bytes());
        for refs in refs_per_sample {
            acc += refs.len() as u32;
            out.extend_from_slice(&acc.to_le_bytes());
        }
        out.resize(off_bytes, 0);
        for refs in refs_per_sample {
            for r in refs {
                out.extend_from_slice(&r.to_le_bytes());
            }
        }
        out.resize(off_bytes + ref_bytes, 0);
        return;
    }
    let StreamBuilder {
        index,
        order,
        users,
        streams,
    } = builder;
    // Collect (ref -> sample ids), preserving first-seen order.
    index.clear();
    order.clear();
    for (s, refs) in refs_per_sample.iter().enumerate() {
        for &r in refs {
            let slot = match index.entry(r) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let slot = order.len();
                    order.push(r);
                    if users.len() <= slot {
                        users.push(Vec::new());
                    }
                    users[slot].clear();
                    e.insert(slot);
                    slot
                }
            };
            users[slot].push(s as u32);
        }
    }
    // Deal entries round-robin to tasklet streams. Each stream leads
    // with its entry count, which round-robin dealing fixes up front:
    // tasklet t gets entries t, t + n_tasklets, ...
    if streams.len() < n_tasklets {
        streams.resize_with(n_tasklets, Vec::new);
    }
    for (t, st) in streams.iter_mut().enumerate().take(n_tasklets) {
        st.clear();
        let count = if order.len() > t {
            (order.len() - t).div_ceil(n_tasklets)
        } else {
            0
        };
        st.push(count as u32);
    }
    for (i, r) in order.iter().enumerate() {
        let t = i % n_tasklets;
        let ids = &users[i];
        streams[t].push(*r);
        streams[t].push(ids.len() as u32);
        streams[t].extend_from_slice(ids);
    }
    // Header: a leading zero plus the end offset of each tasklet's
    // stream in bytes, zero-padded to n_tasklets + 2 words and then to
    // 8 bytes — both paddings are plain zero bytes, written by the
    // final resize.
    let header_bytes = ((n_tasklets + 2) * 4 + 7) & !7;
    let body_words: usize = streams[..n_tasklets].iter().map(Vec::len).sum();
    let body_bytes = (body_words * 4 + 7) & !7;
    out.reserve(header_bytes + body_bytes);
    out.extend_from_slice(&0u32.to_le_bytes());
    let mut acc = 0u32;
    for s in &streams[..n_tasklets] {
        acc += (s.len() * 4) as u32;
        out.extend_from_slice(&acc.to_le_bytes());
    }
    out.resize(header_bytes, 0);
    for s in &streams[..n_tasklets] {
        for w in s {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out.resize(header_bytes + body_bytes, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::{PimConfig, PimSystem};

    /// Loads a toy tile, runs the kernel, checks functional output.
    fn run_case(
        rows: &[[f32; 2]],
        refs_per_sample: &[Vec<u32>],
        n_tasklets: usize,
    ) -> Vec<[f32; 2]> {
        let row_bytes = 8;
        let mut sys = PimSystem::new(PimConfig::new(1, n_tasklets)).unwrap();
        let dpu = DpuId(0);
        let mut emt = Vec::new();
        for r in rows {
            emt.extend_from_slice(&r[0].to_le_bytes());
            emt.extend_from_slice(&r[1].to_le_bytes());
        }
        sys.load_mram(dpu, 0, &emt).unwrap();
        let input_base = 4096u32;
        let stream = build_stream(refs_per_sample, n_tasklets, true);
        sys.load_mram(dpu, input_base, &stream).unwrap();
        let output_base = 8192u32;
        let mut kernel = EmbeddingKernel::new(row_bytes, true);
        kernel.set_task(
            dpu,
            DpuTask {
                emt_base: 0,
                cache_base: 2048,
                input_base,
                output_base,
                n_samples: refs_per_sample.len() as u32,
            },
        );
        sys.launch_all(&kernel).unwrap();
        let (bufs, _) = sys
            .gather(&[(dpu, output_base, refs_per_sample.len() * row_bytes)])
            .unwrap();
        bufs[0]
            .chunks_exact(8)
            .map(|c| {
                [
                    f32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    f32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                ]
            })
            .collect()
    }

    #[test]
    fn sums_single_sample() {
        let rows = [[1.0, 2.0], [10.0, 20.0], [100.0, 200.0]];
        let out = run_case(&rows, &[vec![0, 2]], 2);
        assert_eq!(out[0], [101.0, 202.0]);
    }

    #[test]
    fn correct_across_tasklet_counts() {
        let rows = [[1.0, 2.0], [10.0, 20.0], [100.0, 200.0]];
        let refs = vec![vec![0u32], vec![1], vec![2], vec![0, 1, 2]];
        for n_tasklets in [1, 2, 3, 8, 14] {
            let out = run_case(&rows, &refs, n_tasklets);
            assert_eq!(out[0], [1.0, 2.0], "tasklets={n_tasklets}");
            assert_eq!(out[1], [10.0, 20.0]);
            assert_eq!(out[2], [100.0, 200.0]);
            assert_eq!(out[3], [111.0, 222.0]);
        }
    }

    #[test]
    fn shared_rows_are_deduplicated_across_batch() {
        // Two samples both use row 0: the stream carries one entry with
        // k = 2 regardless of the tasklet count.
        let refs = vec![vec![0u32], vec![0u32]];
        for n_tasklets in [1usize, 2] {
            let stream = build_stream(&refs, n_tasklets, true);
            let header_bytes = ((n_tasklets + 2) * 4 + 7) & !7;
            let body = &stream[header_bytes..];
            let n_entries = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
            assert_eq!(n_entries, 1, "tasklets={n_tasklets}");
            let k = u32::from_le_bytes([body[8], body[9], body[10], body[11]]);
            assert_eq!(k, 2);
        }
        let out = run_case(&[[5.0, 7.0]], &refs, 2);
        assert_eq!(out[0], [5.0, 7.0]);
        assert_eq!(out[1], [5.0, 7.0]);
    }

    #[test]
    fn csr_format_is_offsets_then_refs() {
        let refs = vec![vec![7u32, 9], vec![], vec![9]];
        let stream = build_stream(&refs, 4, false);
        // offsets [0, 2, 2, 3] = 16 bytes (already 8-aligned), refs
        // [7, 9, 9] padded to 16 bytes.
        assert_eq!(stream.len(), 32);
        let off: Vec<u32> = (0..4)
            .map(|i| u32::from_le_bytes(stream[4 * i..4 * i + 4].try_into().unwrap()))
            .collect();
        assert_eq!(off, vec![0, 2, 2, 3]);
        let refs_out: Vec<u32> = (4..7)
            .map(|i| u32::from_le_bytes(stream[4 * i..4 * i + 4].try_into().unwrap()))
            .collect();
        assert_eq!(refs_out, vec![7, 9, 9]);
    }

    /// Runs the same case in CSR (no-dedup) mode.
    fn run_case_csr(
        rows: &[[f32; 2]],
        refs_per_sample: &[Vec<u32>],
        n_tasklets: usize,
    ) -> Vec<[f32; 2]> {
        let row_bytes = 8;
        let mut sys = PimSystem::new(PimConfig::new(1, n_tasklets)).unwrap();
        let dpu = DpuId(0);
        let mut emt = Vec::new();
        for r in rows {
            emt.extend_from_slice(&r[0].to_le_bytes());
            emt.extend_from_slice(&r[1].to_le_bytes());
        }
        sys.load_mram(dpu, 0, &emt).unwrap();
        let input_base = 4096u32;
        sys.load_mram(
            dpu,
            input_base,
            &build_stream(refs_per_sample, n_tasklets, false),
        )
        .unwrap();
        let mut kernel = EmbeddingKernel::new(row_bytes, false);
        kernel.set_task(
            dpu,
            DpuTask {
                emt_base: 0,
                cache_base: 2048,
                input_base,
                output_base: 8192,
                n_samples: refs_per_sample.len() as u32,
            },
        );
        sys.launch_all(&kernel).unwrap();
        let (bufs, _) = sys
            .gather(&[(dpu, 8192, refs_per_sample.len() * row_bytes)])
            .unwrap();
        bufs[0]
            .chunks_exact(8)
            .map(|c| {
                [
                    f32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    f32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                ]
            })
            .collect()
    }

    #[test]
    fn csr_mode_correct_across_tasklet_counts() {
        let rows = [[1.0, 2.0], [10.0, 20.0], [100.0, 200.0]];
        let refs = vec![vec![0u32], vec![1], vec![2], vec![0, 1, 2], vec![]];
        for n_tasklets in [1, 2, 3, 8, 14] {
            let out = run_case_csr(&rows, &refs, n_tasklets);
            assert_eq!(out[0], [1.0, 2.0], "tasklets={n_tasklets}");
            assert_eq!(out[1], [10.0, 20.0]);
            assert_eq!(out[2], [100.0, 200.0]);
            assert_eq!(out[3], [111.0, 222.0]);
            assert_eq!(out[4], [0.0, 0.0]);
        }
    }

    #[test]
    fn csr_mode_is_cheaper_to_transfer_than_dedup_entries() {
        // The CSR stream carries 4 bytes per reference; the dedup format
        // carries 12+ for unshared rows.
        let refs: Vec<Vec<u32>> = (0..16u32).map(|i| vec![i, i + 16]).collect();
        let csr = build_stream(&refs, 8, false);
        let dedup = build_stream(&refs, 8, true);
        assert!(
            csr.len() < dedup.len(),
            "csr {} vs dedup {}",
            csr.len(),
            dedup.len()
        );
    }

    #[test]
    fn empty_samples_produce_zero_rows() {
        let rows = [[1.0, 2.0]];
        let out = run_case(&rows, &[vec![], vec![0]], 2);
        assert_eq!(out[0], [0.0, 0.0]);
        assert_eq!(out[1], [1.0, 2.0]);
    }

    #[test]
    fn cache_refs_read_the_cache_region() {
        let row_bytes = 8;
        let mut sys = PimSystem::new(PimConfig::new(1, 2)).unwrap();
        let dpu = DpuId(0);
        let cache_base = 1024u32;
        sys.load_mram(dpu, 0, &[0u8; 8]).unwrap();
        let mut cached = Vec::new();
        cached.extend_from_slice(&42.0f32.to_le_bytes());
        cached.extend_from_slice(&43.0f32.to_le_bytes());
        sys.load_mram(dpu, cache_base, &cached).unwrap();
        let refs = vec![vec![CACHE_REF_BIT]];
        let input_base = 4096;
        sys.load_mram(dpu, input_base, &build_stream(&refs, 2, true))
            .unwrap();
        let mut kernel = EmbeddingKernel::new(row_bytes, true);
        kernel.set_task(
            dpu,
            DpuTask {
                emt_base: 0,
                cache_base,
                input_base,
                output_base: 8192,
                n_samples: 1,
            },
        );
        sys.launch_all(&kernel).unwrap();
        let (bufs, _) = sys.gather(&[(dpu, 8192, 8)]).unwrap();
        let x = f32::from_le_bytes(bufs[0][0..4].try_into().unwrap());
        let y = f32::from_le_bytes(bufs[0][4..8].try_into().unwrap());
        assert_eq!((x, y), (42.0, 43.0));
    }

    #[test]
    fn more_reuse_means_fewer_dma_transfers() {
        // 8 samples all hitting the same row should cost far fewer MRAM
        // reads than 8 samples hitting distinct rows.
        let rows: Vec<[f32; 2]> = (0..8).map(|i| [i as f32, 0.0]).collect();
        let shared_refs: Vec<Vec<u32>> = (0..8).map(|_| vec![0u32]).collect();
        let distinct_refs: Vec<Vec<u32>> = (0..8).map(|i| vec![i as u32]).collect();

        let run_and_count = |refs: &[Vec<u32>]| {
            let mut sys = PimSystem::new(PimConfig::new(1, 4)).unwrap();
            let dpu = DpuId(0);
            let mut emt = Vec::new();
            for r in &rows {
                emt.extend_from_slice(&r[0].to_le_bytes());
                emt.extend_from_slice(&r[1].to_le_bytes());
            }
            sys.load_mram(dpu, 0, &emt).unwrap();
            sys.load_mram(dpu, 4096, &build_stream(refs, 4, true))
                .unwrap();
            let mut kernel = EmbeddingKernel::new(8, true);
            kernel.set_task(
                dpu,
                DpuTask {
                    emt_base: 0,
                    cache_base: 2048,
                    input_base: 4096,
                    output_base: 8192,
                    n_samples: refs.len() as u32,
                },
            );
            sys.launch_all(&kernel).unwrap().total_dma_transfers()
        };
        let shared = run_and_count(&shared_refs);
        let distinct = run_and_count(&distinct_refs);
        assert!(
            shared + 6 <= distinct,
            "shared {shared} vs distinct {distinct}"
        );
    }

    #[test]
    fn unknown_dpu_task_is_noop() {
        let mut sys = PimSystem::new(PimConfig::new(2, 2)).unwrap();
        let kernel = EmbeddingKernel::new(8, true); // no tasks registered
        let rep = sys.launch_all(&kernel).unwrap();
        assert_eq!(rep.total_dma_transfers(), 0);
    }

    /// Runs `rows` (dim 8) through one DPU with the given dtype and
    /// stream format, returning the per-sample outputs and the launch
    /// report.
    fn run_dim8(
        rows: &[Vec<f32>],
        refs_per_sample: &[Vec<u32>],
        dtype: EmbedDtype,
        dedup: bool,
    ) -> (Vec<Vec<f32>>, upmem_sim::LaunchReport) {
        let n_c = 8usize;
        let row_bytes = n_c * 4;
        let mut sys = PimSystem::new(PimConfig::new(1, 4)).unwrap();
        let dpu = DpuId(0);
        let mut emt = Vec::new();
        for r in rows {
            assert_eq!(r.len(), n_c);
            match dtype {
                EmbedDtype::F32 => {
                    for v in r {
                        emt.extend_from_slice(&v.to_le_bytes());
                    }
                }
                EmbedDtype::Int8 => {
                    let mut rec = vec![0u8; quant::quantized_row_bytes(n_c)];
                    quant::quantize_row_into(r, &mut rec).unwrap();
                    emt.extend_from_slice(&rec);
                }
            }
        }
        sys.load_mram(dpu, 0, &emt).unwrap();
        let input_base = 8192u32;
        sys.load_mram(dpu, input_base, &build_stream(refs_per_sample, 4, dedup))
            .unwrap();
        let output_base = 16384u32;
        let mut kernel = EmbeddingKernel::with_dtype(row_bytes, dedup, dtype);
        kernel.set_task(
            dpu,
            DpuTask {
                emt_base: 0,
                cache_base: 4096,
                input_base,
                output_base,
                n_samples: refs_per_sample.len() as u32,
            },
        );
        let rep = sys.launch_all(&kernel).unwrap();
        let (bufs, _) = sys
            .gather(&[(dpu, output_base, refs_per_sample.len() * row_bytes)])
            .unwrap();
        let outs = bufs[0]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect::<Vec<f32>>()
            .chunks_exact(n_c)
            .map(<[f32]>::to_vec)
            .collect();
        (outs, rep)
    }

    fn awkward_rows(n_rows: usize) -> Vec<Vec<f32>> {
        (0..n_rows)
            .map(|i| {
                (0..8)
                    .map(|j| ((i * 8 + j) as f32).sin() * 3.7 - 1.1)
                    .collect()
            })
            .collect()
    }

    /// Per-sample error budget: the sum of each referenced row's
    /// quantization bound (summation adds the per-row errors).
    fn int8_budget(rows: &[Vec<f32>], refs: &[u32]) -> f32 {
        refs.iter()
            .map(|&r| {
                let row = &rows[r as usize];
                let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let max_abs = lo.abs().max(hi.abs());
                quant::max_abs_error_bound((hi - lo) / 255.0, max_abs)
            })
            .sum::<f32>()
            * 1.5
    }

    #[test]
    fn int8_csr_matches_f32_within_quant_bound() {
        let rows = awkward_rows(24);
        let refs: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![], vec![5], (0..24).collect()];
        let (f32_out, _) = run_dim8(&rows, &refs, EmbedDtype::F32, false);
        let (i8_out, _) = run_dim8(&rows, &refs, EmbedDtype::Int8, false);
        for (s, sample_refs) in refs.iter().enumerate() {
            let budget = int8_budget(&rows, sample_refs);
            for (a, b) in f32_out[s].iter().zip(&i8_out[s]) {
                assert!(
                    (a - b).abs() <= budget,
                    "sample {s}: |{a} - {b}| > {budget}"
                );
            }
        }
    }

    #[test]
    fn int8_dedup_matches_f32_within_quant_bound() {
        let rows = awkward_rows(16);
        let refs: Vec<Vec<u32>> = vec![vec![0, 3, 3, 7], vec![3], vec![], vec![15, 0]];
        let (f32_out, _) = run_dim8(&rows, &refs, EmbedDtype::F32, true);
        let (i8_out, _) = run_dim8(&rows, &refs, EmbedDtype::Int8, true);
        for (s, sample_refs) in refs.iter().enumerate() {
            let budget = int8_budget(&rows, sample_refs);
            for (a, b) in f32_out[s].iter().zip(&i8_out[s]) {
                assert!(
                    (a - b).abs() <= budget,
                    "sample {s}: |{a} - {b}| > {budget}"
                );
            }
        }
    }

    #[test]
    fn int8_csr_launch_is_strictly_cheaper_than_f32() {
        // For n_c = 8 an int8 row is 16 B vs 32 B f32, and the fused
        // dequantize-accumulate charges fewer instructions — both the
        // DMA-engine bound and the pipeline bound shrink, so the launch
        // must be strictly faster whichever bound binds.
        let rows = awkward_rows(64);
        let refs: Vec<Vec<u32>> = (0..32)
            .map(|s| (0..8).map(|j| (s + j * 3) % 64).collect())
            .collect();
        let (_, f32_rep) = run_dim8(&rows, &refs, EmbedDtype::F32, false);
        let (_, i8_rep) = run_dim8(&rows, &refs, EmbedDtype::Int8, false);
        assert!(
            i8_rep.wall_cycles.0 < f32_rep.wall_cycles.0,
            "int8 {} !< f32 {}",
            i8_rep.wall_cycles.0,
            f32_rep.wall_cycles.0
        );
        assert!(i8_rep.total_dma_bytes() < f32_rep.total_dma_bytes());
        assert!(i8_rep.total_instrs() < f32_rep.total_instrs());
    }

    #[test]
    fn int8_constant_rows_are_exact() {
        // scale = 0 rows reconstruct exactly, so integer-valued constant
        // rows must sum bit-exactly even through the quantized path.
        let rows: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32 + 1.0; 8]).collect();
        let refs: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3], vec![2]];
        let (f32_out, _) = run_dim8(&rows, &refs, EmbedDtype::F32, false);
        let (i8_out, _) = run_dim8(&rows, &refs, EmbedDtype::Int8, false);
        assert_eq!(f32_out, i8_out);
    }
}
