//! The DPU-side embedding kernel (stage 2 of Fig. 4).
//!
//! Each DPU holds one tile of one embedding table (its row partition ×
//! its column slice) plus, under cache-aware partitioning, a region of
//! cached partial-sum rows. Per batch, the host writes a *reference
//! stream* into MRAM and launches this kernel.
//!
//! ## Execution model
//!
//! The host deduplicates row references across the whole batch
//! (pre-processing, Fig. 4 stage 1): a row needed by several samples is
//! fetched from MRAM exactly once. Unique rows are distributed
//! round-robin over the tasklets; every tasklet accumulates its rows
//! into a *shared* WRAM accumulator block (`n_samples x row_bytes`),
//! which on real hardware is guarded by per-accumulator mutexes (the
//! cost model charges that synchronization inside the accumulate cost).
//! Finally each tasklet writes its share of the per-sample partial-sum
//! rows to the MRAM output region.
//!
//! ## Reference stream layout (little-endian `u32`, 8-byte padded)
//!
//! ```text
//! input_base: [n_tasklets + 1 stream end-offsets, bytes rel. to streams_base]
//! per tasklet: [n_entries] { [ref] [k] [k x global sample ids] } x n_entries
//! ```
//!
//! A `ref` with [`CACHE_REF_BIT`] set addresses the cache region
//! (slot within this partition's cached combination rows), otherwise
//! the EMT region.

use std::collections::HashMap;
use upmem_sim::{DpuId, Kernel, SimError, TaskletCtx};

/// High bit of a reference word: set = cache region, clear = EMT region.
pub const CACHE_REF_BIT: u32 = 1 << 31;

/// Per-DPU launch parameters for [`EmbeddingKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpuTask {
    /// MRAM base of the EMT tile (row-major `row_bytes` rows).
    pub emt_base: u32,
    /// MRAM base of the cached combination rows.
    pub cache_base: u32,
    /// MRAM base of the reference stream written by the host.
    pub input_base: u32,
    /// MRAM base of the output region (`n_samples` rows).
    pub output_base: u32,
    /// Samples in the batch.
    pub n_samples: u32,
}

/// The embedding lookup-and-reduce kernel.
///
/// Two stream formats are supported (see [`build_stream`]):
///
/// * **CSR** (`dedup = false`, the paper's IDX+OFFSET transfer): each
///   tasklet owns the samples `s ≡ tasklet_id (mod n_tasklets)`,
///   gathers their rows and writes the partial sums directly — no
///   barrier needed.
/// * **Dedup** (`dedup = true`, an extension): unique rows are dealt
///   round-robin to tasklets, accumulated into shared WRAM and written
///   back after a barrier ([`Kernel::finalize`]).
#[derive(Debug, Clone, Default)]
pub struct EmbeddingKernel {
    /// Bytes per row (`N_c * 4`), a multiple of 8.
    pub row_bytes: usize,
    /// Whether streams use the dedup format.
    pub dedup: bool,
    /// Per-DPU parameters; DPUs not present return immediately.
    pub tasks: HashMap<DpuId, DpuTask>,
}

impl EmbeddingKernel {
    /// Creates a kernel for tiles of `row_bytes` bytes per row reading
    /// streams built with the same `dedup` flag.
    pub fn new(row_bytes: usize, dedup: bool) -> Self {
        EmbeddingKernel {
            row_bytes,
            dedup,
            tasks: HashMap::new(),
        }
    }

    /// Registers one DPU's launch parameters.
    pub fn set_task(&mut self, dpu: DpuId, task: DpuTask) {
        self.tasks.insert(dpu, task);
    }
}

/// Reads `len` bytes at (possibly unaligned) `addr` via aligned DMA.
fn read_padded(ctx: &mut TaskletCtx<'_>, addr: u32, len: usize) -> Result<Vec<u8>, SimError> {
    if len == 0 {
        return Ok(Vec::new());
    }
    let start = addr & !7;
    let end = (addr as usize + len + 7) & !7;
    let mut out = vec![0u8; end - start as usize];
    let mut off = 0usize;
    while off < out.len() {
        let chunk = (out.len() - off).min(2048);
        ctx.mram_read(start + off as u32, &mut out[off..off + chunk])?;
        off += chunk;
    }
    let lead = (addr - start) as usize;
    out.drain(..lead);
    out.truncate(len);
    Ok(out)
}

fn u32_at(buf: &[u8], idx: usize) -> u32 {
    u32::from_le_bytes([
        buf[4 * idx],
        buf[4 * idx + 1],
        buf[4 * idx + 2],
        buf[4 * idx + 3],
    ])
}

impl EmbeddingKernel {
    /// CSR mode: each tasklet serves its own samples end to end.
    fn run_csr(&self, ctx: &mut TaskletCtx<'_>, task: DpuTask) -> Result<(), SimError> {
        let t = ctx.tasklet_id();
        let n_tasklets = ctx.n_tasklets();
        let n_c = self.row_bytes / 4;
        let n_samples = task.n_samples as usize;
        let refs_base = task.input_base + (((n_samples + 1) * 4 + 7) & !7) as u32;
        let mut row = vec![0u8; self.row_bytes];
        let mut out_row = vec![0u8; self.row_bytes];
        let mut s = t;
        while s < n_samples {
            // offsets[s], offsets[s+1]
            let off = read_padded(ctx, task.input_base + (4 * s) as u32, 8)?;
            ctx.charge_int_ops(4);
            let start = u32_at(&off, 0) as usize;
            let end = u32_at(&off, 1) as usize;
            if end < start {
                return Err(SimError::KernelFault(format!(
                    "sample {s}: offsets decrease ({start}..{end})"
                )));
            }
            let refs = read_padded(ctx, refs_base + (4 * start) as u32, 4 * (end - start))?;
            let mut acc = vec![0.0f32; n_c];
            ctx.charge_int_ops((n_c / 2) as u64);
            for i in 0..(end - start) {
                let r = u32_at(&refs, i);
                let slot = (r & !CACHE_REF_BIT) as usize;
                let base = if r & CACHE_REF_BIT != 0 {
                    task.cache_base
                } else {
                    task.emt_base
                };
                ctx.mram_read(base + (slot * self.row_bytes) as u32, &mut row)?;
                ctx.charge_loop(1);
                for (c, chunk) in row.chunks_exact(4).enumerate() {
                    acc[c] += f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
                ctx.charge_accumulate(n_c as u64);
            }
            for (c, b) in out_row.chunks_exact_mut(4).enumerate() {
                b.copy_from_slice(&acc[c].to_le_bytes());
            }
            ctx.mram_write(task.output_base + (s * self.row_bytes) as u32, &out_row)?;
            ctx.charge_loop(1);
            s += n_tasklets;
        }
        Ok(())
    }
}

impl Kernel for EmbeddingKernel {
    fn shared_wram_bytes(&self) -> usize {
        if !self.dedup {
            return 0;
        }
        // The shared accumulator block: one row per sample of the
        // largest registered batch.
        self.tasks
            .values()
            .map(|t| t.n_samples as usize * self.row_bytes)
            .max()
            .unwrap_or(0)
    }

    fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
        let Some(task) = self.tasks.get(&ctx.dpu_id()).copied() else {
            return Ok(());
        };
        if !self.dedup {
            return self.run_csr(ctx, task);
        }
        let t = ctx.tasklet_id();
        let n_tasklets = ctx.n_tasklets();
        let n_c = self.row_bytes / 4;
        let n_samples = task.n_samples as usize;
        let acc_bytes = n_samples * self.row_bytes;

        // Tasklet 0 zeroes the shared accumulator block (the others
        // wait at a barrier on real hardware; launch overhead covers it).
        if t == 0 {
            ctx.shared_wram()[..acc_bytes].fill(0);
            ctx.charge_int_ops((n_samples * n_c / 2) as u64);
        }

        // Header: stream end-offsets for every tasklet.
        let header = read_padded(ctx, task.input_base, (n_tasklets + 2) * 4)?;
        ctx.charge_int_ops(4);
        let streams_base = task.input_base + (((n_tasklets + 2) * 4 + 7) & !7) as u32;
        let start = u32_at(&header, t);
        let end = u32_at(&header, t + 1);
        if end < start {
            return Err(SimError::KernelFault(format!(
                "tasklet {t}: stream ends before it starts ({start}..{end})"
            )));
        }

        // Stream this tasklet's unique-row entries (chunked MRAM reads).
        let stream = read_padded(ctx, streams_base + start, (end - start) as usize)?;
        if !stream.is_empty() {
            let n_entries = u32_at(&stream, 0) as usize;
            ctx.charge_int_ops(2);
            let mut pos = 1usize; // u32 cursor
            let mut row = vec![0u8; self.row_bytes];
            for _ in 0..n_entries {
                if (pos + 2) * 4 > stream.len() {
                    return Err(SimError::KernelFault("truncated stream entry".into()));
                }
                let r = u32_at(&stream, pos);
                let k = u32_at(&stream, pos + 1) as usize;
                pos += 2;
                if (pos + k) * 4 > stream.len() {
                    return Err(SimError::KernelFault("truncated sample id list".into()));
                }
                // Resolve the row address and fetch it once.
                let slot = (r & !CACHE_REF_BIT) as usize;
                let base = if r & CACHE_REF_BIT != 0 {
                    task.cache_base
                } else {
                    task.emt_base
                };
                let addr = base + (slot * self.row_bytes) as u32;
                ctx.mram_read(addr, &mut row)?;
                ctx.charge_loop(1);
                // Accumulate into each referencing sample's shared row
                // (mutex-guarded on hardware; cost inside the charge).
                for j in 0..k {
                    let sample = u32_at(&stream, pos + j) as usize;
                    if sample >= n_samples {
                        return Err(SimError::KernelFault(format!(
                            "sample id {sample} out of range {n_samples}"
                        )));
                    }
                    let off = sample * self.row_bytes;
                    let shared = ctx.shared_wram();
                    for (c, chunk) in row.chunks_exact(4).enumerate() {
                        let cur = f32::from_le_bytes([
                            shared[off + 4 * c],
                            shared[off + 4 * c + 1],
                            shared[off + 4 * c + 2],
                            shared[off + 4 * c + 3],
                        ]);
                        let v = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                        shared[off + 4 * c..off + 4 * c + 4]
                            .copy_from_slice(&(cur + v).to_le_bytes());
                    }
                    ctx.charge_accumulate(n_c as u64);
                }
                pos += k;
            }
        }

        Ok(())
    }

    fn finalize(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
        // Post-barrier phase (dedup mode only): each tasklet writes its
        // share of the per-sample output rows from the shared
        // accumulators to MRAM.
        if !self.dedup {
            return Ok(());
        }
        let Some(task) = self.tasks.get(&ctx.dpu_id()).copied() else {
            return Ok(());
        };
        let t = ctx.tasklet_id();
        let n_tasklets = ctx.n_tasklets();
        let n_samples = task.n_samples as usize;
        let mut out_row = vec![0u8; self.row_bytes];
        let mut s = t;
        while s < n_samples {
            let off = s * self.row_bytes;
            {
                let shared = ctx.shared_wram();
                out_row.copy_from_slice(&shared[off..off + self.row_bytes]);
            }
            ctx.mram_write(task.output_base + off as u32, &out_row)?;
            ctx.charge_loop(1);
            s += n_tasklets;
        }
        Ok(())
    }
}

/// Builds one DPU's reference stream from per-sample reference lists.
///
/// `refs_per_sample[s]` holds sample `s`'s encoded references (EMT slot
/// or cache slot with [`CACHE_REF_BIT`]).
///
/// * `dedup = false` (the paper's format): a CSR stream —
///   `offsets[n_samples + 1]` followed by the flat 4-byte reference
///   array, exactly the IDX+OFFSET transfer of Fig. 4.
/// * `dedup = true` (extension): references are deduplicated across the
///   whole batch — a row shared by several samples is fetched from MRAM
///   once. Unique entries `[ref][k][k sample ids]` are dealt
///   round-robin to the `n_tasklets` tasklet streams behind a
///   per-tasklet end-offset header.
///
/// Returns the bytes to write at `input_base` (8-byte padded).
pub fn build_stream(refs_per_sample: &[Vec<u32>], n_tasklets: usize, dedup: bool) -> Vec<u8> {
    assert!(n_tasklets > 0, "need at least one tasklet");
    if !dedup {
        // CSR: offsets (n_samples + 1, 8-byte padded), then refs.
        let n = refs_per_sample.len();
        let total_refs: usize = refs_per_sample.iter().map(Vec::len).sum();
        let mut bytes = Vec::with_capacity((n + 2 + total_refs) * 4 + 16);
        let mut acc = 0u32;
        bytes.extend_from_slice(&0u32.to_le_bytes());
        for refs in refs_per_sample {
            acc += refs.len() as u32;
            bytes.extend_from_slice(&acc.to_le_bytes());
        }
        while bytes.len() % 8 != 0 {
            bytes.push(0);
        }
        for refs in refs_per_sample {
            for r in refs {
                bytes.extend_from_slice(&r.to_le_bytes());
            }
        }
        while bytes.len() % 8 != 0 {
            bytes.push(0);
        }
        return bytes;
    }
    // Collect (ref -> sample ids), preserving first-seen order.
    let mut order: Vec<u32> = Vec::new();
    let mut users: HashMap<u32, Vec<u32>> = HashMap::new();
    for (s, refs) in refs_per_sample.iter().enumerate() {
        for &r in refs {
            let e = users.entry(r).or_default();
            if e.is_empty() {
                order.push(r);
            }
            e.push(s as u32);
        }
    }
    // Deal entries round-robin to tasklet streams.
    let mut streams: Vec<Vec<u32>> = vec![Vec::new(); n_tasklets];
    let mut counts = vec![0u32; n_tasklets];
    for (i, r) in order.iter().enumerate() {
        let t = i % n_tasklets;
        let ids = &users[r];
        streams[t].push(*r);
        streams[t].push(ids.len() as u32);
        streams[t].extend_from_slice(ids);
        counts[t] += 1;
    }
    for (st, c) in streams.iter_mut().zip(counts.iter()) {
        st.insert(0, *c);
    }
    // Header: end offset of each tasklet's stream in bytes, plus a
    // leading zero, padded to 8 bytes.
    let mut offsets = Vec::with_capacity(n_tasklets + 2);
    offsets.push(0u32);
    let mut acc = 0u32;
    for s in &streams {
        acc += (s.len() * 4) as u32;
        offsets.push(acc);
    }
    offsets.push(0); // pad word so the header stays 8-byte aligned
    let header_words = n_tasklets + 2;
    let mut bytes =
        Vec::with_capacity((header_words + streams.iter().map(Vec::len).sum::<usize>()) * 4 + 8);
    for w in offsets.iter().take(header_words) {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    while bytes.len() % 8 != 0 {
        bytes.push(0);
    }
    for s in &streams {
        for w in s {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
    }
    while bytes.len() % 8 != 0 {
        bytes.push(0);
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_sim::{PimConfig, PimSystem};

    /// Loads a toy tile, runs the kernel, checks functional output.
    fn run_case(
        rows: &[[f32; 2]],
        refs_per_sample: &[Vec<u32>],
        n_tasklets: usize,
    ) -> Vec<[f32; 2]> {
        let row_bytes = 8;
        let mut sys = PimSystem::new(PimConfig::new(1, n_tasklets)).unwrap();
        let dpu = DpuId(0);
        let mut emt = Vec::new();
        for r in rows {
            emt.extend_from_slice(&r[0].to_le_bytes());
            emt.extend_from_slice(&r[1].to_le_bytes());
        }
        sys.load_mram(dpu, 0, &emt).unwrap();
        let input_base = 4096u32;
        let stream = build_stream(refs_per_sample, n_tasklets, true);
        sys.load_mram(dpu, input_base, &stream).unwrap();
        let output_base = 8192u32;
        let mut kernel = EmbeddingKernel::new(row_bytes, true);
        kernel.set_task(
            dpu,
            DpuTask {
                emt_base: 0,
                cache_base: 2048,
                input_base,
                output_base,
                n_samples: refs_per_sample.len() as u32,
            },
        );
        sys.launch_all(&kernel).unwrap();
        let (bufs, _) = sys
            .gather(&[(dpu, output_base, refs_per_sample.len() * row_bytes)])
            .unwrap();
        bufs[0]
            .chunks_exact(8)
            .map(|c| {
                [
                    f32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    f32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                ]
            })
            .collect()
    }

    #[test]
    fn sums_single_sample() {
        let rows = [[1.0, 2.0], [10.0, 20.0], [100.0, 200.0]];
        let out = run_case(&rows, &[vec![0, 2]], 2);
        assert_eq!(out[0], [101.0, 202.0]);
    }

    #[test]
    fn correct_across_tasklet_counts() {
        let rows = [[1.0, 2.0], [10.0, 20.0], [100.0, 200.0]];
        let refs = vec![vec![0u32], vec![1], vec![2], vec![0, 1, 2]];
        for n_tasklets in [1, 2, 3, 8, 14] {
            let out = run_case(&rows, &refs, n_tasklets);
            assert_eq!(out[0], [1.0, 2.0], "tasklets={n_tasklets}");
            assert_eq!(out[1], [10.0, 20.0]);
            assert_eq!(out[2], [100.0, 200.0]);
            assert_eq!(out[3], [111.0, 222.0]);
        }
    }

    #[test]
    fn shared_rows_are_deduplicated_across_batch() {
        // Two samples both use row 0: the stream carries one entry with
        // k = 2 regardless of the tasklet count.
        let refs = vec![vec![0u32], vec![0u32]];
        for n_tasklets in [1usize, 2] {
            let stream = build_stream(&refs, n_tasklets, true);
            let header_bytes = ((n_tasklets + 2) * 4 + 7) & !7;
            let body = &stream[header_bytes..];
            let n_entries = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
            assert_eq!(n_entries, 1, "tasklets={n_tasklets}");
            let k = u32::from_le_bytes([body[8], body[9], body[10], body[11]]);
            assert_eq!(k, 2);
        }
        let out = run_case(&[[5.0, 7.0]], &refs, 2);
        assert_eq!(out[0], [5.0, 7.0]);
        assert_eq!(out[1], [5.0, 7.0]);
    }

    #[test]
    fn csr_format_is_offsets_then_refs() {
        let refs = vec![vec![7u32, 9], vec![], vec![9]];
        let stream = build_stream(&refs, 4, false);
        // offsets [0, 2, 2, 3] = 16 bytes (already 8-aligned), refs
        // [7, 9, 9] padded to 16 bytes.
        assert_eq!(stream.len(), 32);
        let off: Vec<u32> = (0..4)
            .map(|i| u32::from_le_bytes(stream[4 * i..4 * i + 4].try_into().unwrap()))
            .collect();
        assert_eq!(off, vec![0, 2, 2, 3]);
        let refs_out: Vec<u32> = (4..7)
            .map(|i| u32::from_le_bytes(stream[4 * i..4 * i + 4].try_into().unwrap()))
            .collect();
        assert_eq!(refs_out, vec![7, 9, 9]);
    }

    /// Runs the same case in CSR (no-dedup) mode.
    fn run_case_csr(
        rows: &[[f32; 2]],
        refs_per_sample: &[Vec<u32>],
        n_tasklets: usize,
    ) -> Vec<[f32; 2]> {
        let row_bytes = 8;
        let mut sys = PimSystem::new(PimConfig::new(1, n_tasklets)).unwrap();
        let dpu = DpuId(0);
        let mut emt = Vec::new();
        for r in rows {
            emt.extend_from_slice(&r[0].to_le_bytes());
            emt.extend_from_slice(&r[1].to_le_bytes());
        }
        sys.load_mram(dpu, 0, &emt).unwrap();
        let input_base = 4096u32;
        sys.load_mram(
            dpu,
            input_base,
            &build_stream(refs_per_sample, n_tasklets, false),
        )
        .unwrap();
        let mut kernel = EmbeddingKernel::new(row_bytes, false);
        kernel.set_task(
            dpu,
            DpuTask {
                emt_base: 0,
                cache_base: 2048,
                input_base,
                output_base: 8192,
                n_samples: refs_per_sample.len() as u32,
            },
        );
        sys.launch_all(&kernel).unwrap();
        let (bufs, _) = sys
            .gather(&[(dpu, 8192, refs_per_sample.len() * row_bytes)])
            .unwrap();
        bufs[0]
            .chunks_exact(8)
            .map(|c| {
                [
                    f32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    f32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                ]
            })
            .collect()
    }

    #[test]
    fn csr_mode_correct_across_tasklet_counts() {
        let rows = [[1.0, 2.0], [10.0, 20.0], [100.0, 200.0]];
        let refs = vec![vec![0u32], vec![1], vec![2], vec![0, 1, 2], vec![]];
        for n_tasklets in [1, 2, 3, 8, 14] {
            let out = run_case_csr(&rows, &refs, n_tasklets);
            assert_eq!(out[0], [1.0, 2.0], "tasklets={n_tasklets}");
            assert_eq!(out[1], [10.0, 20.0]);
            assert_eq!(out[2], [100.0, 200.0]);
            assert_eq!(out[3], [111.0, 222.0]);
            assert_eq!(out[4], [0.0, 0.0]);
        }
    }

    #[test]
    fn csr_mode_is_cheaper_to_transfer_than_dedup_entries() {
        // The CSR stream carries 4 bytes per reference; the dedup format
        // carries 12+ for unshared rows.
        let refs: Vec<Vec<u32>> = (0..16u32).map(|i| vec![i, i + 16]).collect();
        let csr = build_stream(&refs, 8, false);
        let dedup = build_stream(&refs, 8, true);
        assert!(
            csr.len() < dedup.len(),
            "csr {} vs dedup {}",
            csr.len(),
            dedup.len()
        );
    }

    #[test]
    fn empty_samples_produce_zero_rows() {
        let rows = [[1.0, 2.0]];
        let out = run_case(&rows, &[vec![], vec![0]], 2);
        assert_eq!(out[0], [0.0, 0.0]);
        assert_eq!(out[1], [1.0, 2.0]);
    }

    #[test]
    fn cache_refs_read_the_cache_region() {
        let row_bytes = 8;
        let mut sys = PimSystem::new(PimConfig::new(1, 2)).unwrap();
        let dpu = DpuId(0);
        let cache_base = 1024u32;
        sys.load_mram(dpu, 0, &[0u8; 8]).unwrap();
        let mut cached = Vec::new();
        cached.extend_from_slice(&42.0f32.to_le_bytes());
        cached.extend_from_slice(&43.0f32.to_le_bytes());
        sys.load_mram(dpu, cache_base, &cached).unwrap();
        let refs = vec![vec![CACHE_REF_BIT]];
        let input_base = 4096;
        sys.load_mram(dpu, input_base, &build_stream(&refs, 2, true))
            .unwrap();
        let mut kernel = EmbeddingKernel::new(row_bytes, true);
        kernel.set_task(
            dpu,
            DpuTask {
                emt_base: 0,
                cache_base,
                input_base,
                output_base: 8192,
                n_samples: 1,
            },
        );
        sys.launch_all(&kernel).unwrap();
        let (bufs, _) = sys.gather(&[(dpu, 8192, 8)]).unwrap();
        let x = f32::from_le_bytes(bufs[0][0..4].try_into().unwrap());
        let y = f32::from_le_bytes(bufs[0][4..8].try_into().unwrap());
        assert_eq!((x, y), (42.0, 43.0));
    }

    #[test]
    fn more_reuse_means_fewer_dma_transfers() {
        // 8 samples all hitting the same row should cost far fewer MRAM
        // reads than 8 samples hitting distinct rows.
        let rows: Vec<[f32; 2]> = (0..8).map(|i| [i as f32, 0.0]).collect();
        let shared_refs: Vec<Vec<u32>> = (0..8).map(|_| vec![0u32]).collect();
        let distinct_refs: Vec<Vec<u32>> = (0..8).map(|i| vec![i as u32]).collect();

        let run_and_count = |refs: &[Vec<u32>]| {
            let mut sys = PimSystem::new(PimConfig::new(1, 4)).unwrap();
            let dpu = DpuId(0);
            let mut emt = Vec::new();
            for r in &rows {
                emt.extend_from_slice(&r[0].to_le_bytes());
                emt.extend_from_slice(&r[1].to_le_bytes());
            }
            sys.load_mram(dpu, 0, &emt).unwrap();
            sys.load_mram(dpu, 4096, &build_stream(refs, 4, true))
                .unwrap();
            let mut kernel = EmbeddingKernel::new(8, true);
            kernel.set_task(
                dpu,
                DpuTask {
                    emt_base: 0,
                    cache_base: 2048,
                    input_base: 4096,
                    output_base: 8192,
                    n_samples: refs.len() as u32,
                },
            );
            sys.launch_all(&kernel).unwrap().total_dma_transfers()
        };
        let shared = run_and_count(&shared_refs);
        let distinct = run_and_count(&distinct_refs);
        assert!(
            shared + 6 <= distinct,
            "shared {shared} vs distinct {distinct}"
        );
    }

    #[test]
    fn unknown_dpu_task_is_noop() {
        let mut sys = PimSystem::new(PimConfig::new(2, 2)).unwrap();
        let kernel = EmbeddingKernel::new(8, true); // no tasks registered
        let rep = sys.launch_all(&kernel).unwrap();
        assert_eq!(rep.total_dma_transfers(), 0);
    }
}
