//! Small order statistics shared by the serving and scheduling
//! reports.
//!
//! Hoisted out of `serve.rs` so [`crate::serve::ServeReport`] and the
//! scheduler crate's `SchedReport` compute their latency quantiles from
//! the *same* definition — nearest-rank, the one the paper's latency
//! tables use — instead of two drifting copies.

/// Nearest-rank percentile (`q` in `[0, 1]`) of an ascending-sorted
/// nonempty slice; `0.0` for an empty one.
///
/// Nearest-rank returns an actual observation (rank `ceil(q * n)`,
/// clamped to `[1, n]`), so the result is always bounded by the
/// slice's min and max and is monotone in `q` — both properties are
/// pinned down by proptests.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.95), 4.0);
        assert_eq!(percentile(&v, 0.25), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn extreme_quantiles_hit_the_ends() {
        let v = [-3.0, 0.5, 8.0, 8.0, 12.0];
        assert_eq!(percentile(&v, 0.0), -3.0);
        assert_eq!(percentile(&v, 1.0), 12.0);
    }
}
