//! Inter-batch pipelining of the three-stage embedding pipeline — an
//! extension beyond the paper (its evaluation runs batches back to
//! back; §6 lists further optimization of the inference pipeline as
//! future work).
//!
//! Stages 1 (CPU→DPU) and 3 (DPU→CPU) contend for the host memory bus,
//! while stage 2 runs on the DPU array — two distinct resources. With
//! double buffering in MRAM, batch `i+1`'s stage 1 can overlap batch
//! `i`'s stage 2. [`pipelined_wall_ns`] computes the exact wall time of
//! that schedule from per-batch breakdowns via a small event
//! simulation.

use crate::engine::EmbeddingBreakdown;

/// Wall-clock time of executing `batches` back to back without any
/// overlap (the paper's measurement mode).
pub fn sequential_wall_ns(batches: &[EmbeddingBreakdown]) -> f64 {
    batches.iter().map(EmbeddingBreakdown::total_ns).sum()
}

/// Wall-clock time with inter-batch pipelining under double buffering:
/// stage 2 of batch `i` may overlap bus transfers of neighboring
/// batches, but the bus serializes all stage-1/stage-3 phases and each
/// batch's stages stay ordered (1 → 2 → 3).
///
/// The schedule is work-conserving and processes bus phases in batch
/// order (stage 3 of batch `i` before stage 1 of batch `i + 2`), which
/// is what a host driver with a bounded MRAM staging area does.
pub fn pipelined_wall_ns(batches: &[EmbeddingBreakdown]) -> f64 {
    let mut bus_free = 0.0f64; // when the host bus is next available
    let mut dpu_free = 0.0f64; // when the DPU array is next available
                               // Only two stage-2 completion times are ever live at once (batch
                               // i's and batch i - 1's), so the event recurrence needs no arrays —
                               // this keeps the function heap-free, which the steady-state serve
                               // path relies on when it re-checks itself against this model.
    let mut s2_done_prev; // s2_done of batch i - 1
    let mut s2_done_cur = 0.0f64; // s2_done of batch i
    let mut finish = 0.0f64;

    // Interleave bus phases in batch order: s1_0, s1_1, s3_0, s1_2,
    // s3_1, ... — i.e. before batch i's stage 3, batch i+1's stage 1
    // has been issued (double buffering depth 2).
    for i in 0..batches.len() {
        // stage 1 of batch i.
        let start = bus_free;
        bus_free = start + batches[i].stage1_ns;
        let s1_done = bus_free;

        // stage 2 of batch i can start once its stage 1 landed and the
        // DPU array is free.
        let start = s1_done.max(dpu_free);
        dpu_free = start + batches[i].stage2_ns;
        s2_done_prev = s2_done_cur;
        s2_done_cur = dpu_free;

        // stage 3 of batch i - 1 (its results are ready by now or we
        // wait for them); keeping one batch in flight bounds staging.
        if i > 0 {
            let j = i - 1;
            let start = s2_done_prev.max(bus_free);
            bus_free = start + batches[j].stage3_ns;
            finish = finish.max(bus_free);
        }
    }
    if let Some(last) = batches.len().checked_sub(1) {
        let start = s2_done_cur.max(bus_free);
        finish = finish.max(start + batches[last].stage3_ns);
    }
    finish
}

/// Summary of the pipelining gain over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Back-to-back wall time (ns).
    pub sequential_ns: f64,
    /// Pipelined wall time (ns).
    pub pipelined_ns: f64,
}

impl PipelineReport {
    /// Builds the report from per-batch breakdowns.
    pub fn from_batches(batches: &[EmbeddingBreakdown]) -> Self {
        PipelineReport {
            sequential_ns: sequential_wall_ns(batches),
            pipelined_ns: pipelined_wall_ns(batches),
        }
    }

    /// Speedup of pipelining (≥ 1.0 up to scheduling rounding).
    pub fn speedup(&self) -> f64 {
        if self.pipelined_ns <= 0.0 {
            1.0
        } else {
            self.sequential_ns / self.pipelined_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(s1: f64, s2: f64, s3: f64) -> EmbeddingBreakdown {
        EmbeddingBreakdown {
            stage1_ns: s1,
            stage2_ns: s2,
            stage3_ns: s3,
            ..Default::default()
        }
    }

    #[test]
    fn single_batch_has_no_overlap() {
        let b = [bd(10.0, 50.0, 20.0)];
        assert_eq!(pipelined_wall_ns(&b), 80.0);
        assert_eq!(sequential_wall_ns(&b), 80.0);
    }

    #[test]
    fn lookup_bound_trace_pipelines_to_stage2_sum() {
        // Stage 2 dominates: bus phases hide behind it entirely except
        // the lead-in and drain.
        let b = vec![bd(5.0, 100.0, 5.0); 4];
        let wall = pipelined_wall_ns(&b);
        assert!((wall - (5.0 + 400.0 + 5.0)).abs() < 1e-9, "wall {wall}");
        assert!(wall < sequential_wall_ns(&b));
    }

    #[test]
    fn bus_bound_trace_pipelines_to_bus_sum() {
        let b = vec![bd(50.0, 5.0, 50.0); 4];
        let wall = pipelined_wall_ns(&b);
        // The bus must carry 4 * 100 ns; stage 2 hides inside.
        assert!(wall >= 400.0);
        assert!(wall <= 400.0 + 5.0 + 1e-9, "wall {wall}");
    }

    #[test]
    fn pipelining_never_loses_to_sequential() {
        let traces = [
            vec![bd(10.0, 10.0, 10.0); 8],
            vec![
                bd(1.0, 100.0, 1.0),
                bd(100.0, 1.0, 100.0),
                bd(10.0, 10.0, 10.0),
            ],
            vec![bd(0.0, 0.0, 0.0); 3],
        ];
        for b in &traces {
            assert!(pipelined_wall_ns(b) <= sequential_wall_ns(b) + 1e-9);
        }
    }

    #[test]
    fn report_speedup_is_computed() {
        let b = vec![bd(30.0, 40.0, 30.0); 6];
        let r = PipelineReport::from_batches(&b);
        assert!(r.speedup() > 1.2, "speedup {}", r.speedup());
        let empty = PipelineReport::from_batches(&[]);
        assert_eq!(empty.speedup(), 1.0);
    }

    #[test]
    fn stages_stay_ordered_per_batch() {
        // A degenerate trace where stage 1 of batch 1 is huge: batch 1's
        // stage 2 cannot start before it, so the wall reflects it.
        let b = [bd(1.0, 1.0, 1.0), bd(1000.0, 1.0, 1.0)];
        let wall = pipelined_wall_ns(&b);
        assert!(wall >= 1001.0 + 1.0 + 1.0);
    }
}
