//! # updlrm-core — the UpDLRM system (DAC'24)
//!
//! UpDLRM stores DLRM embedding tables in the MRAM banks of UPMEM DPUs
//! and performs multi-hot lookups and reductions in memory. This crate
//! implements the paper's contribution on top of the [`upmem_sim`]
//! substrate:
//!
//! * **§3.1 uniform tiling** and the Eq. 1–3 tile-shape search
//!   ([`tiling`]);
//! * **§3.2 non-uniform partitioning** — greedy frequency-balanced bin
//!   packing ([`partition::non_uniform`]);
//! * **§3.3 cache-aware non-uniform partitioning** — Algorithm 1,
//!   jointly balancing EMT and partial-sum-cache traffic
//!   ([`partition::cache_aware`]);
//! * the **DPU embedding kernel** ([`kernel`]) and the three-stage
//!   host pipeline of Fig. 4 ([`engine`]), reporting the per-stage
//!   latency breakdown of Fig. 10.
//!
//! See the crate-level example in [`engine::UpdlrmEngine`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod error;
pub mod kernel;
pub mod partition;
pub mod pipeline;
pub mod replan;
pub mod serve;
pub mod stats;
pub mod telemetry;
pub mod tiered;
pub mod tiling;

pub use config::UpdlrmConfig;
pub use engine::{EmbeddingBreakdown, UpdlrmEngine};
pub use error::{CoreError, Result};
pub use kernel::{build_stream, DpuTask, EmbeddingKernel, CACHE_REF_BIT};
pub use partition::{
    cache_aware, non_uniform, uniform, CacheAwareAssignment, PartitionStrategy, RowAssignment,
    CACHED_ROW_SLOT,
};
pub use pipeline::{pipelined_wall_ns, sequential_wall_ns, PipelineReport};
pub use replan::ReplanPolicy;
pub use serve::{BatchServer, PipelineMode, ServeOutcome, ServeReport};
pub use stats::percentile;
pub use telemetry::{
    DriftSnapshot, MetricsRegistry, RuntimeSnapshot, SchedSnapshot, SchedTrigger, Snapshot,
    TenantSnapshot, SNAPSHOT_SCHEMA_VERSION,
};
pub use tiered::TieredEngine;
pub use tiling::{Tiling, TilingProblem, CANDIDATE_NC, MAX_TILE_ELEMENTS};
