//! Online re-partitioning under non-stationary traffic (DESIGN.md §4.11).
//!
//! The engine's placement is chosen once, from the profile of the
//! training trace. Under drifting traffic (UPWL v3 hot-set rotation,
//! flash crowds) that placement goes stale: the rows that are hot *now*
//! pile onto whichever partitions the old profile assigned them to, and
//! the stage-2 wall — the slowest DPU — blows up. This module holds the
//! *decision* side of live reconfiguration:
//!
//! * [`ReplanPolicy`] — when to refresh the placement (`off`,
//!   `periodic:N` batches, `imbalance:T[:N]` threshold);
//! * a sliding-window access profile per table, accumulated by
//!   `route_batch` and consumed by
//!   [`UpdlrmEngine::on_tick`](crate::engine::UpdlrmEngine::on_tick);
//! * the pure planning helpers ([`plan_rows`], [`window_imbalance`],
//!   [`rows_in_parts`], [`replica_block`]) that the engine's migration
//!   machinery calls and the property tests below pin down.
//!
//! The *mechanism* — double-buffered MRAM regions, modeled migration
//! cost, the atomic flip — lives in [`crate::engine`].

use crate::error::Result;
use crate::partition::{self, PartitionStrategy, RowAssignment};
use workloads::FreqProfile;

/// When (and whether) the engine refreshes its placement from the
/// sliding-window access profile.
///
/// Parsed from / displayed as the CLI spellings `off`, `periodic:N`
/// and `imbalance:T[:N]` (threshold `T`, minimum window `N` batches,
/// default 8).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReplanPolicy {
    /// Never replan (the static-placement baseline).
    #[default]
    Off,
    /// Replan every `every_batches` served batches.
    Periodic {
        /// Window length in batches between replans.
        every_batches: u64,
    },
    /// Replan when the window-predicted load imbalance of the current
    /// placement exceeds `threshold` (max-over-mean, 1.0 = perfect),
    /// checked only once `min_batches` batches have accumulated so a
    /// near-empty window cannot trigger on noise.
    Imbalance {
        /// Max-over-mean partition load that triggers a replan.
        threshold: f64,
        /// Minimum window size (batches) before the check applies.
        min_batches: u64,
    },
}

impl ReplanPolicy {
    /// True when this policy can ever trigger a migration (the engine
    /// only reserves the double-buffered MRAM regions in that case).
    pub fn enabled(&self) -> bool {
        !matches!(self, ReplanPolicy::Off)
    }

    /// CLI spelling, the inverse of [`FromStr`](std::str::FromStr).
    pub fn as_string(&self) -> String {
        match self {
            ReplanPolicy::Off => "off".into(),
            ReplanPolicy::Periodic { every_batches } => format!("periodic:{every_batches}"),
            ReplanPolicy::Imbalance {
                threshold,
                min_batches,
            } => format!("imbalance:{threshold}:{min_batches}"),
        }
    }
}

impl std::fmt::Display for ReplanPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_string())
    }
}

impl std::str::FromStr for ReplanPolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        if s == "off" {
            return Ok(ReplanPolicy::Off);
        }
        if let Some(n) = s.strip_prefix("periodic:") {
            let every_batches: u64 = n
                .parse()
                .map_err(|_| format!("bad periodic window '{n}' (expected a batch count)"))?;
            if every_batches == 0 {
                return Err("periodic window must be >= 1 batch".into());
            }
            return Ok(ReplanPolicy::Periodic { every_batches });
        }
        if let Some(rest) = s.strip_prefix("imbalance:") {
            let (t, n) = match rest.split_once(':') {
                Some((t, n)) => (t, Some(n)),
                None => (rest, None),
            };
            let threshold: f64 = t
                .parse()
                .map_err(|_| format!("bad imbalance threshold '{t}'"))?;
            if !threshold.is_finite() || threshold < 1.0 {
                return Err(format!(
                    "imbalance threshold must be a finite value >= 1.0, got {t}"
                ));
            }
            let min_batches = match n {
                Some(n) => n
                    .parse()
                    .map_err(|_| format!("bad imbalance window '{n}' (expected a batch count)"))?,
                None => 8,
            };
            if min_batches == 0 {
                return Err("imbalance window must be >= 1 batch".into());
            }
            return Ok(ReplanPolicy::Imbalance {
                threshold,
                min_batches,
            });
        }
        Err(format!(
            "unknown replan policy '{s}' (expected 'off', 'periodic:N' or 'imbalance:T[:N]')"
        ))
    }
}

/// Plans a fresh row assignment for one (non-cache-aware) table from a
/// window profile, returning the assignment and the replica block in
/// slot order.
///
/// The `Uniform` strategy is *upgraded* to non-uniform packing: a
/// replan exists precisely because load must follow the profile, and a
/// uniform re-cut would reproduce the contiguous hot block that caused
/// the imbalance. `CacheAware` tables are planned by the engine (the
/// cache-list placement needs the host-resident partial-sum store);
/// this helper rejects them.
///
/// # Errors
///
/// Partitioner errors: zero rows/parts, or a plan that cannot fit
/// `capacity_rows` per partition — the engine treats any error as
/// "decline this replan", deterministically.
pub(crate) fn plan_rows(
    strategy: PartitionStrategy,
    rows: usize,
    parts: usize,
    capacity_rows: usize,
    replicate_top: usize,
    profile: &FreqProfile,
) -> Result<(RowAssignment, Vec<u32>)> {
    let assignment = match strategy {
        PartitionStrategy::Uniform | PartitionStrategy::NonUniform => {
            partition::non_uniform(rows, parts, capacity_rows, profile)?
        }
        PartitionStrategy::Replicated => {
            partition::replicated_non_uniform(rows, parts, capacity_rows, profile, replicate_top)?
        }
        PartitionStrategy::CacheAware => {
            return Err(crate::error::CoreError::InvalidConfig(
                "cache-aware tables are replanned by the engine, not plan_rows".into(),
            ))
        }
    };
    let replicas = replica_block(&assignment);
    Ok((assignment, replicas))
}

/// The replicated rows of `assignment` in replica-slot order (the
/// shared block layout every partition stores at its region start).
pub(crate) fn replica_block(assignment: &RowAssignment) -> Vec<u32> {
    let mut replicas: Vec<(u32, u32)> = assignment
        .part_of_row
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p == partition::REPLICATED_ROW_PART)
        .map(|(r, _)| (assignment.slot_of_row[r], r as u32))
        .collect();
    replicas.sort_unstable();
    replicas.into_iter().map(|(_, r)| r).collect()
}

/// Inverts an assignment into per-partition local-slot order: element
/// `[p][s]` is the row stored at slot `rc + s` of partition `p`'s EMT
/// tile (`rc` = replica-block length). Cached and replicated rows are
/// excluded — they live in the cache region / the shared block.
pub(crate) fn rows_in_parts(assignment: &RowAssignment, rc: usize) -> Vec<Vec<u32>> {
    let mut rows_in_part: Vec<Vec<u32>> = assignment
        .rows_per_part
        .iter()
        .map(|&n| vec![0u32; n as usize])
        .collect();
    for (r, (&p, &s)) in assignment
        .part_of_row
        .iter()
        .zip(assignment.slot_of_row.iter())
        .enumerate()
    {
        if p != partition::REPLICATED_ROW_PART && s != partition::CACHED_ROW_SLOT {
            rows_in_part[p as usize][s as usize - rc] = r as u32;
        }
    }
    rows_in_part
}

/// Max-over-mean partition load the *current* assignment would see
/// under the window profile — the quantity
/// [`ReplanPolicy::Imbalance`] thresholds. Replicated rows spread
/// their window mass evenly (matching the engine's round-robin
/// routing); cache-resident rows load the cache, not the EMT, and are
/// excluded.
pub(crate) fn window_imbalance(assignment: &RowAssignment, window: &FreqProfile) -> f64 {
    let parts = assignment.num_parts();
    if parts == 0 {
        return 1.0;
    }
    let mut load = vec![0.0f64; parts];
    let mut spread = 0.0f64;
    for (r, (&p, &s)) in assignment
        .part_of_row
        .iter()
        .zip(assignment.slot_of_row.iter())
        .enumerate()
    {
        let c = window.count(r as u64) as f64;
        if c == 0.0 || s == partition::CACHED_ROW_SLOT {
            continue;
        }
        if p == partition::REPLICATED_ROW_PART {
            spread += c;
            continue;
        }
        load[p as usize] += c;
    }
    let share = spread / parts as f64;
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for l in &load {
        let v = l + share;
        max = max.max(v);
        sum += v;
    }
    let mean = sum / parts as f64;
    if mean <= 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{compute_regions, RegionSpec};
    use proptest::prelude::*;

    #[test]
    fn policy_strings_round_trip() {
        for p in [
            ReplanPolicy::Off,
            ReplanPolicy::Periodic { every_batches: 12 },
            ReplanPolicy::Imbalance {
                threshold: 1.5,
                min_batches: 4,
            },
        ] {
            let parsed: ReplanPolicy = p.as_string().parse().expect("round trip");
            assert_eq!(parsed, p);
            assert_eq!(format!("{p}"), p.as_string());
        }
        // The short imbalance form defaults the window to 8 batches.
        assert_eq!(
            "imbalance:2.0".parse::<ReplanPolicy>().unwrap(),
            ReplanPolicy::Imbalance {
                threshold: 2.0,
                min_batches: 8
            }
        );
        for bad in [
            "on",
            "periodic:0",
            "periodic:x",
            "imbalance:0.5",
            "imbalance:nan",
            "imbalance:2.0:0",
        ] {
            assert!(bad.parse::<ReplanPolicy>().is_err(), "{bad} must not parse");
        }
        assert!(!ReplanPolicy::Off.enabled());
        assert!(ReplanPolicy::Periodic { every_batches: 1 }.enabled());
    }

    fn profile_from_counts(counts: &[u32]) -> FreqProfile {
        let mut p = FreqProfile::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                p.record(i as u64);
            }
        }
        p
    }

    #[test]
    fn window_imbalance_detects_a_hot_partition() {
        // 4 rows uniform over 2 parts: rows 0-1 on part 0, 2-3 on part 1.
        let profile = profile_from_counts(&[0, 0, 0, 0]);
        let a = partition::uniform(4, 2, 4, &profile).unwrap();
        let balanced = profile_from_counts(&[5, 5, 5, 5]);
        assert!((window_imbalance(&a, &balanced) - 1.0).abs() < 1e-12);
        let skewed = profile_from_counts(&[50, 50, 1, 1]);
        assert!(window_imbalance(&a, &skewed) > 1.9);
        // Empty window is neutral, not a trigger.
        assert_eq!(
            window_imbalance(&a, &profile_from_counts(&[0, 0, 0, 0])),
            1.0
        );
    }

    /// Checks the migration row-placement invariant on one assignment:
    /// every row is placed exactly once — in the shared replica block,
    /// in exactly one partition's local slots (dense, non-overlapping),
    /// or in the cache — and `rows_in_parts` inverts it consistently.
    fn assert_rows_placed_exactly_once(a: &RowAssignment, replicas: &[u32]) {
        let rows = a.part_of_row.len();
        let rc = replicas.len();
        let parts = a.num_parts();
        let mut placed = vec![0u32; rows];
        for (slot, &r) in replicas.iter().enumerate() {
            assert_eq!(a.part_of_row[r as usize], partition::REPLICATED_ROW_PART);
            assert_eq!(a.slot_of_row[r as usize], slot as u32);
            placed[r as usize] += 1;
        }
        let local = rows_in_parts(a, rc);
        assert_eq!(local.len(), parts);
        for (p, rows_p) in local.iter().enumerate() {
            assert_eq!(rows_p.len(), a.rows_per_part[p] as usize);
            for (s, &r) in rows_p.iter().enumerate() {
                assert_eq!(a.part_of_row[r as usize] as usize, p);
                assert_eq!(a.slot_of_row[r as usize] as usize, rc + s);
                placed[r as usize] += 1;
            }
        }
        for (r, &n) in placed.iter().enumerate() {
            let cached = a.slot_of_row[r] == partition::CACHED_ROW_SLOT;
            assert_eq!(
                n,
                u32::from(!cached),
                "row {r} placed {n} times (cached: {cached})"
            );
        }
    }

    proptest! {
        /// Every replan plan places every row exactly once, for all
        /// three replannable strategies, arbitrary shapes and windows.
        #[test]
        fn planned_assignments_place_every_row_exactly_once(
            rows in 1usize..200,
            parts in 1usize..9,
            replicate_top in 0usize..32,
            seed in 0u64..1000,
        ) {
            let mut counts = vec![0u32; rows];
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            for c in counts.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *c = (x >> 33) as u32 % 17;
            }
            let profile = profile_from_counts(&counts);
            let capacity = rows + replicate_top; // always feasible
            for strategy in [
                PartitionStrategy::Uniform,
                PartitionStrategy::NonUniform,
                PartitionStrategy::Replicated,
            ] {
                let (a, replicas) =
                    plan_rows(strategy, rows, parts, capacity, replicate_top, &profile).unwrap();
                if strategy == PartitionStrategy::Replicated {
                    prop_assert_eq!(replicas.len(), replicate_top.min(rows));
                } else {
                    prop_assert!(replicas.is_empty());
                }
                assert_rows_placed_exactly_once(&a, &replicas);
            }
        }

        /// The double-buffered MRAM regions never overlap: the staging
        /// EMT/cache regions (slot B) are disjoint from the serving
        /// regions (slot A) and from every per-batch staging slot, so a
        /// migration scatter can never corrupt what slot A is serving.
        #[test]
        fn migration_regions_are_pairwise_disjoint(
            emt_rows_max in 1usize..5000,
            emt_row_bytes in (0usize..5).prop_map(|i| [8usize, 16, 64, 132, 256][i]),
            cache_rows_max in 0usize..300,
            extra_cache_cap in 0usize..300,
            row_bytes in (0usize..3).prop_map(|i| [8usize, 64, 256][i]),
            input_reserve in (0usize..2).prop_map(|i| [1024usize, 65536][i]),
            output_bytes in (0usize..2).prop_map(|i| [1024usize, 32768][i]),
        ) {
            let cache_cap_rows = cache_rows_max + extra_cache_cap;
            let emt_cap_rows = emt_rows_max * 4;
            let r = compute_regions(&RegionSpec {
                replan: true,
                emt_rows_max,
                emt_cap_rows,
                emt_row_bytes,
                cache_rows_max,
                cache_cap_rows,
                row_bytes,
                input_reserve_bytes: input_reserve,
                output_bytes,
            }).unwrap();
            // The plan capacity never shrinks below the live footprint.
            prop_assert!(r.emt_region_rows >= emt_rows_max);
            prop_assert!(r.cache_region_rows >= cache_rows_max);
            // Both EMT regions are real, distinct regions.
            prop_assert!(r.emt_bases[1] > r.emt_bases[0]);
            let emt_bytes = r.emt_region_rows * emt_row_bytes;
            let cache_bytes = r.cache_region_rows * row_bytes;
            let mut regions = vec![
                (r.emt_bases[0] as usize, emt_bytes, "emt A"),
                (r.emt_bases[1] as usize, emt_bytes, "emt B"),
            ];
            if cache_bytes > 0 {
                prop_assert!(r.cache_bases[1] > r.cache_bases[0]);
                regions.push((r.cache_bases[0] as usize, cache_bytes, "cache A"));
                regions.push((r.cache_bases[1] as usize, cache_bytes, "cache B"));
            }
            for (i, &(input, output)) in r.slots.iter().enumerate() {
                regions.push((input as usize, input_reserve, if i == 0 { "in 0" } else { "in 1" }));
                regions.push((output as usize, output_bytes, if i == 0 { "out 0" } else { "out 1" }));
            }
            for (base, _, name) in &regions {
                prop_assert_eq!(base % 8, 0, "{} base {} unaligned", name, base);
            }
            for i in 0..regions.len() {
                for j in i + 1..regions.len() {
                    let (a, al, an) = regions[i];
                    let (b, bl, bn) = regions[j];
                    let disjoint = a + al <= b || b + bl <= a;
                    prop_assert!(disjoint, "{} [{},{}) overlaps {} [{},{})",
                        an, a, a + al, bn, b, b + bl);
                }
            }
        }

        /// `window_imbalance` is always finite and >= 1 up to float
        /// rounding, on plans produced by the planner itself.
        #[test]
        fn window_imbalance_is_finite_and_at_least_one(
            rows in 1usize..120,
            parts in 1usize..7,
            seed in 0u64..500,
        ) {
            let mut counts = vec![0u32; rows];
            let mut x = seed.wrapping_add(7);
            for c in counts.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *c = (x >> 40) as u32 % 9;
            }
            let profile = profile_from_counts(&counts);
            let (a, _) = plan_rows(
                PartitionStrategy::NonUniform, rows, parts, rows, 0, &profile,
            ).unwrap();
            let imb = window_imbalance(&a, &profile);
            prop_assert!(imb.is_finite());
            prop_assert!(imb >= 1.0 - 1e-9, "imbalance {imb} below 1");
        }
    }
}
