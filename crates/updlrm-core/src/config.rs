//! Engine configuration.

use crate::partition::PartitionStrategy;
use crate::replan::ReplanPolicy;
use crate::serve::PipelineMode;
use cooccur_cache::MinerConfig;
use dlrm_model::EmbedDtype;
use upmem_sim::CostModel;

/// Configuration of an [`UpdlrmEngine`](crate::engine::UpdlrmEngine).
///
/// Defaults mirror the paper's evaluation setup: 256 DPUs, 14 tasklets,
/// automatic `N_c` selection, cache-aware partitioning with the cache
/// sized to 100% of the mined cache lists' storage requirement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdlrmConfig {
    /// Total DPUs (the paper uses two modules = 256).
    pub nr_dpus: usize,
    /// Tasklets per DPU (the paper uses 14).
    pub tasklets: usize,
    /// Fixed `N_c` (columns per tile); `None` runs the Eq. 1–3 search.
    pub n_c: Option<usize>,
    /// Partitioning strategy (paper's U / NU / CA).
    pub strategy: PartitionStrategy,
    /// Cache capacity as a fraction of the mined lists' total storage
    /// (the paper's 40%/70%/100% knob). Ignored outside `CacheAware`.
    pub cache_fraction: f64,
    /// Per-DPU MRAM bytes reserved for the EMT region.
    pub emt_capacity_bytes: usize,
    /// Per-DPU MRAM bytes reserved for per-batch reference streams.
    pub input_reserve_bytes: usize,
    /// Batch size assumed by the tiling cost model.
    pub batch_size: usize,
    /// Average reduction assumed by the tiling cost model (overridden
    /// by [`UpdlrmEngine::from_workload`](crate::engine::UpdlrmEngine::from_workload)).
    pub avg_reduction_hint: f64,
    /// PIM timing/energy model.
    pub cost: CostModel,
    /// Host-side batch-global deduplication of row references — an
    /// *extension* beyond the paper's per-access lookups (DESIGN.md
    /// §4.1). Off by default to stay faithful to the paper's kernel;
    /// the ablation bench and Fig. 11 exercise it.
    pub dedup: bool,
    /// Pad stage-1 buffers to a uniform size so rank transfers run in
    /// parallel (ablation knob; on by default — see DESIGN.md §4.4).
    pub pad_transfers: bool,
    /// Cache-list miner parameters (used by `from_workload` under CA).
    pub miner: MinerConfig,
    /// Rows replicated into every partition under
    /// [`PartitionStrategy::Replicated`] (ignored otherwise).
    pub replicate_top: usize,
    /// Host CPU nanoseconds per routed reference (stage-1 preprocessing).
    pub route_ns_per_ref: f64,
    /// Host CPU nanoseconds per scalar add when combining partial sums.
    pub combine_ns_per_add: f64,
    /// Host threads used to fan out the functional DPU simulation
    /// (`1` = serial). Modeled timing is unaffected; this only changes
    /// simulator wall-clock throughput. Defaults to the machine's
    /// available parallelism.
    pub host_threads: usize,
    /// Batch schedule used by [`UpdlrmEngine::serve`](crate::engine::UpdlrmEngine::serve):
    /// back-to-back (the paper's measurement mode) or double-buffered
    /// across the two MRAM staging slots (DESIGN.md §4.5).
    pub pipeline_mode: PipelineMode,
    /// Maximum batches in flight when serving. `1` degenerates to the
    /// sequential schedule even under
    /// [`PipelineMode::DoubleBuf`]; values above the number of MRAM
    /// staging slots (2) are capped there. `0` is rejected by `serve`.
    pub queue_depth: usize,
    /// Record fleet telemetry (per-stage spans, per-DPU counters, cache
    /// traffic) into the engine's
    /// [`MetricsRegistry`](crate::telemetry::MetricsRegistry). Off by
    /// default; enabling costs ≤2% serving throughput and no
    /// steady-state heap allocation (DESIGN.md §4.6).
    pub telemetry: bool,
    /// Storage dtype of the EMT tiles in MRAM (DESIGN.md §4.10).
    /// Cache rows, reference streams and partial-sum outputs are
    /// always f32; [`EmbedDtype::Int8`] shrinks only the EMT region
    /// and its per-lookup row DMA, dequantizing on the fly inside the
    /// kernel's accumulate.
    pub embed_dtype: EmbedDtype,
    /// Online re-partitioning policy (DESIGN.md §4.11). Anything but
    /// [`ReplanPolicy::Off`] makes the engine keep a host-side copy of
    /// the tables, accumulate a sliding-window access profile, and
    /// reserve double-buffered EMT/cache MRAM regions so a stale
    /// placement can be migrated mid-serving and flipped atomically.
    pub replan: ReplanPolicy,
}

impl Default for UpdlrmConfig {
    fn default() -> Self {
        UpdlrmConfig {
            nr_dpus: 256,
            tasklets: 14,
            n_c: None,
            strategy: PartitionStrategy::CacheAware,
            cache_fraction: 1.0,
            emt_capacity_bytes: 48 << 20,
            input_reserve_bytes: 2 << 20,
            batch_size: 64,
            avg_reduction_hint: 100.0,
            cost: CostModel::default(),
            dedup: false,
            pad_transfers: true,
            miner: MinerConfig::default(),
            replicate_top: 64,
            route_ns_per_ref: 1.0,
            combine_ns_per_add: 0.1,
            host_threads: upmem_sim::default_host_threads(),
            pipeline_mode: PipelineMode::Sequential,
            queue_depth: 2,
            telemetry: false,
            embed_dtype: EmbedDtype::F32,
            replan: ReplanPolicy::Off,
        }
    }
}

impl UpdlrmConfig {
    /// A small configuration for tests and examples: `nr_dpus` DPUs and
    /// the given strategy, everything else default.
    pub fn with_dpus(nr_dpus: usize, strategy: PartitionStrategy) -> Self {
        UpdlrmConfig {
            nr_dpus,
            strategy,
            ..UpdlrmConfig::default()
        }
    }

    /// Returns a copy with a fixed `N_c` (Figs. 9/10 sweep the fixed
    /// values 2, 4 and 8).
    pub fn with_fixed_nc(mut self, n_c: usize) -> Self {
        self.n_c = Some(n_c);
        self
    }

    /// Returns a copy with the given cache-capacity fraction.
    pub fn with_cache_fraction(mut self, fraction: f64) -> Self {
        self.cache_fraction = fraction;
        self
    }

    /// Returns a copy with the given number of simulation host threads.
    pub fn with_host_threads(mut self, host_threads: usize) -> Self {
        self.host_threads = host_threads;
        self
    }

    /// Returns a copy with the given serving schedule.
    pub fn with_pipeline_mode(mut self, mode: PipelineMode) -> Self {
        self.pipeline_mode = mode;
        self
    }

    /// Returns a copy with the given serve queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns a copy with telemetry recording enabled.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Returns a copy with the given EMT storage dtype.
    pub fn with_embed_dtype(mut self, dtype: EmbedDtype) -> Self {
        self.embed_dtype = dtype;
        self
    }

    /// Returns a copy with the given online re-partitioning policy.
    pub fn with_replan(mut self, policy: ReplanPolicy) -> Self {
        self.replan = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = UpdlrmConfig::default();
        assert_eq!(c.nr_dpus, 256);
        assert_eq!(c.tasklets, 14);
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.strategy, PartitionStrategy::CacheAware);
        assert_eq!(c.cache_fraction, 1.0);
        assert!(c.n_c.is_none());
        // Serving defaults to the paper's back-to-back measurement mode.
        assert_eq!(c.pipeline_mode, PipelineMode::Sequential);
        assert_eq!(c.queue_depth, 2);
        // Telemetry is opt-in, and tables are stored full-precision
        // unless quantization is requested.
        assert!(!c.telemetry);
        assert_eq!(c.embed_dtype, EmbedDtype::F32);
        // Placement is static unless replanning is opted into.
        assert_eq!(c.replan, ReplanPolicy::Off);
    }

    #[test]
    fn builder_helpers_compose() {
        let c = UpdlrmConfig::with_dpus(32, PartitionStrategy::Uniform)
            .with_fixed_nc(4)
            .with_cache_fraction(0.4)
            .with_pipeline_mode(PipelineMode::DoubleBuf)
            .with_queue_depth(3);
        assert_eq!(c.nr_dpus, 32);
        assert_eq!(c.strategy, PartitionStrategy::Uniform);
        assert_eq!(c.n_c, Some(4));
        assert_eq!(c.cache_fraction, 0.4);
        assert_eq!(c.pipeline_mode, PipelineMode::DoubleBuf);
        assert_eq!(c.queue_depth, 3);
    }
}
