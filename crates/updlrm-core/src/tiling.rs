//! Uniform EMT tiling and the §3.1 tile-shape search (Eq. 1–3).
//!
//! A table of `R x C` f32 values is cut into tiles of `N_r` rows by
//! `N_c` columns, one tile per DPU. The DPUs holding one table form a
//! *group*, arranged as a `row_parts x col_slices` grid: every index
//! lookup is routed to one row partition and executed by all of its
//! column slices in parallel.
//!
//! Choosing `N_c` trades the three stages against each other (paper
//! §3.1): a larger `N_c` means fewer, larger MRAM reads and fewer row
//! partitions (more lookups per DPU, higher CPU→DPU index traffic per
//! DPU) but more DPU→CPU result bytes. The search enumerates the
//! constrained space — `N_c = 2k, 1 <= k <= 4` (Eq. 3), tile elements
//! `<= 1.6e7` (Eq. 2) — and picks the estimated-cost minimizer of Eq. 1.

use crate::error::{CoreError, Result};
use upmem_sim::{CostModel, Cycles};

#[inline]
fn cycles(c: u64) -> Cycles {
    Cycles(c)
}

/// The paper's Eq. 3 candidate set for columns per tile.
pub const CANDIDATE_NC: [usize; 4] = [2, 4, 6, 8];

/// The paper's Eq. 2 bound: elements per tile (64 MB / 4 B).
pub const MAX_TILE_ELEMENTS: usize = 16_000_000;

/// One uniform tiling of a table over a DPU group.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tiling {
    /// Columns per tile (`N_c`).
    pub n_c: usize,
    /// Column slices per group (`C / N_c`).
    pub col_slices: usize,
    /// Row partitions per group (`dpus / col_slices`).
    pub row_parts: usize,
    /// Rows per tile under uniform partitioning (`ceil(R / row_parts)`).
    pub n_r: usize,
    /// Estimated embedding-stage latency (Eq. 1) in nanoseconds.
    pub est_cost_ns: f64,
}

impl Tiling {
    /// Bytes per tile row (`N_c * 4`).
    pub fn row_bytes(&self) -> usize {
        self.n_c * 4
    }

    /// Total DPUs in the group.
    pub fn group_dpus(&self) -> usize {
        self.col_slices * self.row_parts
    }
}

/// Inputs of the tiling cost model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TilingProblem {
    /// Table rows (`R`).
    pub rows: usize,
    /// Table columns (`C`, the embedding dimension).
    pub cols: usize,
    /// DPUs available for this table's group (`N_dpu`).
    pub dpus: usize,
    /// Inference batch size.
    pub batch_size: usize,
    /// Average multi-hot reduction of the workload.
    pub avg_reduction: f64,
    /// MRAM bytes available for the EMT region of each DPU.
    pub emt_capacity_bytes: usize,
}

impl TilingProblem {
    /// Builds a tiling for a specific `N_c`, validating feasibility.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoFeasibleTiling`] when `N_c` does not divide the
    /// column count, the group cannot host the column slices, or the
    /// tile exceeds Eq. 2 / MRAM capacity.
    pub fn tiling_for_nc(&self, n_c: usize, cost: &CostModel) -> Result<Tiling> {
        let infeasible = CoreError::NoFeasibleTiling {
            rows: self.rows,
            cols: self.cols,
            dpus: self.dpus,
        };
        if n_c == 0 || !self.cols.is_multiple_of(n_c) {
            return Err(infeasible);
        }
        let col_slices = self.cols / n_c;
        if col_slices == 0 || self.dpus < col_slices {
            return Err(infeasible);
        }
        let row_parts = self.dpus / col_slices;
        let n_r = self.rows.div_ceil(row_parts);
        if n_r * n_c > MAX_TILE_ELEMENTS || n_r * n_c * 4 > self.emt_capacity_bytes {
            return Err(infeasible);
        }
        let est_cost_ns = self.estimate_cost_ns(n_c, row_parts, cost);
        Ok(Tiling {
            n_c,
            col_slices,
            row_parts,
            n_r,
            est_cost_ns,
        })
    }

    /// Eq. 1: `T_c-comm + T_lkp + T_d-comm` for one batch.
    ///
    /// Stage 2 is per-DPU (all DPUs run in parallel); the transfer
    /// stages share the host bus, so their cost is the group's *total*
    /// byte count over the aggregate bandwidth. The resulting trade-off
    /// matches §3.1: larger `N_c` means more row partitions (less
    /// lookup time per DPU) but more DPU→CPU result bytes.
    fn estimate_cost_ns(&self, n_c: usize, row_parts: usize, cost: &CostModel) -> f64 {
        let total_lookups = self.batch_size as f64 * self.avg_reduction;
        let lookups_per_dpu = total_lookups / row_parts as f64;
        // Stage 1: each reference is a 4-byte CSR entry broadcast to
        // its row partition's column slices in one bus pass.
        let t_c = total_lookups * cost.host_to_mram_ns(4);
        // Stage 2: one MRAM read of N_c*4 bytes plus the accumulate
        // instructions per lookup, on the slowest (here: any) DPU.
        let per_lookup_cycles = cost.dma_engine_cycles(n_c * 4).0.max(
            cost.accumulate_base_instrs
                + (cost.accumulate_per_elem_instrs * n_c as f64).round() as u64
                + cost.loop_overhead_instrs,
        );
        let t_lkp = lookups_per_dpu * cost.cycles_to_ns(cycles(per_lookup_cycles));
        // Stage 3: every DPU returns one partial-sum row (N_c*4 B) per
        // sample over the shared bus: batch * 4 * C * row_parts bytes.
        let t_d = self.batch_size as f64 * cost.mram_to_host_ns(4 * self.cols) * row_parts as f64;
        t_c + t_lkp + t_d
    }

    /// Exhaustive Eq. 1–3 search: the feasible `N_c` with minimum
    /// estimated cost.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoFeasibleTiling`] if no candidate is feasible.
    pub fn search(&self, cost: &CostModel) -> Result<Tiling> {
        CANDIDATE_NC
            .iter()
            .filter_map(|&n_c| self.tiling_for_nc(n_c, cost).ok())
            .min_by(|a, b| {
                a.est_cost_ns
                    .partial_cmp(&b.est_cost_ns)
                    .expect("cost estimates are finite")
            })
            .ok_or(CoreError::NoFeasibleTiling {
                rows: self.rows,
                cols: self.cols,
                dpus: self.dpus,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_problem() -> TilingProblem {
        // One of 8 EMT groups: 32 DPUs, 32-dim embeddings.
        TilingProblem {
            rows: 100_000,
            cols: 32,
            dpus: 32,
            batch_size: 64,
            avg_reduction: 100.0,
            emt_capacity_bytes: 48 << 20,
        }
    }

    #[test]
    fn grid_shapes_follow_nc() {
        let p = paper_problem();
        let cost = CostModel::default();
        let t2 = p.tiling_for_nc(2, &cost).unwrap();
        assert_eq!((t2.col_slices, t2.row_parts), (16, 2));
        let t4 = p.tiling_for_nc(4, &cost).unwrap();
        assert_eq!((t4.col_slices, t4.row_parts), (8, 4));
        let t8 = p.tiling_for_nc(8, &cost).unwrap();
        assert_eq!((t8.col_slices, t8.row_parts), (4, 8));
        assert_eq!(t8.group_dpus(), 32);
        assert_eq!(t8.row_bytes(), 32);
    }

    #[test]
    fn nc_must_divide_cols() {
        let p = paper_problem();
        let cost = CostModel::default();
        // 32 % 6 != 0 -> infeasible.
        assert!(matches!(
            p.tiling_for_nc(6, &cost),
            Err(CoreError::NoFeasibleTiling { .. })
        ));
        assert!(p.tiling_for_nc(0, &cost).is_err());
    }

    #[test]
    fn search_picks_minimum_cost_candidate() {
        let p = paper_problem();
        let cost = CostModel::default();
        let best = p.search(&cost).unwrap();
        for &n_c in &CANDIDATE_NC {
            if let Ok(t) = p.tiling_for_nc(n_c, &cost) {
                assert!(best.est_cost_ns <= t.est_cost_ns);
            }
        }
    }

    #[test]
    fn larger_nc_shifts_cost_between_stages() {
        // Verify the §3.1 trade-off direction: more columns per tile
        // means fewer row partitions, so more lookups land on each DPU
        // (stage 1+2 grow), while stage 3 grows with the result row size.
        let p = paper_problem();
        let cost = CostModel::default();
        let t2 = p.tiling_for_nc(2, &cost).unwrap();
        let t8 = p.tiling_for_nc(8, &cost).unwrap();
        assert!(t8.row_parts > t2.row_parts);
        // Per-DPU lookups: batch*red/row_parts decreases with more parts.
        assert!(t8.n_r < t2.n_r);
    }

    #[test]
    fn capacity_bound_rejects_huge_tiles() {
        let p = TilingProblem {
            rows: 200_000_000,
            cols: 32,
            dpus: 32,
            batch_size: 64,
            avg_reduction: 50.0,
            emt_capacity_bytes: 48 << 20,
        };
        // 200M rows / 2 row parts = 100M rows * 2 cols = 2e8 > 1.6e7.
        assert!(p.tiling_for_nc(2, &CostModel::default()).is_err());
    }

    #[test]
    fn search_fails_when_nothing_feasible() {
        let p = TilingProblem {
            rows: 1_000_000_000,
            cols: 32,
            dpus: 16,
            batch_size: 64,
            avg_reduction: 50.0,
            emt_capacity_bytes: 48 << 20,
        };
        assert!(matches!(
            p.search(&CostModel::default()),
            Err(CoreError::NoFeasibleTiling { .. })
        ));
    }

    #[test]
    fn high_reduction_prefers_more_row_parts() {
        // With very high reduction, per-DPU lookup traffic dominates, so
        // the optimizer should favor large N_c (more row partitions).
        let mut p = paper_problem();
        p.avg_reduction = 400.0;
        let cost = CostModel::default();
        let best = p.search(&cost).unwrap();
        assert!(best.n_c >= 4, "expected n_c >= 4, got {}", best.n_c);
    }
}
