//! Differential tests for the scratch-arena serving path introduced by
//! the zero-allocation refactor: `serve_stream` (which lends pooled
//! embeddings to a sink and recycles them) must be bit-identical to
//! `serve` (which clones them into a `ServeOutcome`), which in turn is
//! pinned against back-to-back `run_batch` by `serve_tests.rs`. Also
//! covers the scratch-reuse hazards the arena design introduces:
//! repeated serves over the same engine, interleaved batch sizes, and
//! the staging-slot capacity guard.

use dlrm_model::{EmbeddingTable, Matrix};
use updlrm_core::{
    EmbeddingBreakdown, PartitionStrategy, PipelineMode, UpdlrmConfig, UpdlrmEngine,
};
use workloads::{DatasetSpec, TraceConfig, Workload};

const DIM: usize = 32;

fn setup(num_tables: usize, batches: usize, batch_size: usize) -> (Vec<EmbeddingTable>, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables,
            num_batches: batches,
            batch_size,
            ..TraceConfig::default()
        },
    );
    let tables = (0..num_tables)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

fn engine(config: UpdlrmConfig, tables: &[EmbeddingTable], workload: &Workload) -> UpdlrmEngine {
    UpdlrmEngine::from_workload(config, tables, workload).unwrap()
}

fn assert_matrices_bit_equal(a: &[Matrix], b: &[Matrix], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: table count");
    for (t, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.rows(), y.rows(), "{what}: table {t} rows");
        for (u, v) in x.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(u.to_bits(), v.to_bits(), "{what}: table {t} value");
        }
    }
}

/// `serve_stream`'s lent results must be bit-identical to `serve`'s
/// owned outcome, for both schedules and across strategies.
#[test]
fn serve_stream_matches_serve_bitwise() {
    let (tables, workload) = setup(2, 4, 32);
    for strategy in [
        PartitionStrategy::Uniform,
        PartitionStrategy::NonUniform,
        PartitionStrategy::CacheAware,
    ] {
        for mode in [PipelineMode::Sequential, PipelineMode::DoubleBuf] {
            let config = UpdlrmConfig::with_dpus(16, strategy)
                .with_pipeline_mode(mode)
                .with_queue_depth(2);
            let mut reference = engine(config.clone(), &tables, &workload);
            let outcome = reference.serve(&workload.batches).unwrap();

            let mut streamed = engine(config, &tables, &workload);
            let mut seen: Vec<(usize, Vec<Matrix>, EmbeddingBreakdown)> = Vec::new();
            let report = streamed
                .serve_stream(&workload.batches, |i, pooled, bd| {
                    seen.push((i, pooled.to_vec(), *bd));
                })
                .unwrap();

            assert_eq!(report, outcome.report, "{strategy}/{mode} report");
            assert_eq!(seen.len(), workload.batches.len(), "{strategy}/{mode}");
            for (i, pooled, bd) in &seen {
                assert_matrices_bit_equal(
                    pooled,
                    &outcome.pooled[*i],
                    &format!("{strategy}/{mode} batch {i}"),
                );
                assert_eq!(bd, &outcome.breakdowns[*i], "{strategy}/{mode} batch {i}");
            }
            // The sink fires in batch order.
            for (pos, (i, _, _)) in seen.iter().enumerate() {
                assert_eq!(pos, *i, "{strategy}/{mode} sink order");
            }
        }
    }
}

/// Serving twice over the same engine reuses every warmed arena; the
/// results must not drift from the first pass.
#[test]
fn repeated_serves_are_stable() {
    let (tables, workload) = setup(2, 3, 32);
    let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware)
        .with_pipeline_mode(PipelineMode::DoubleBuf)
        .with_queue_depth(2);
    let mut eng = engine(config, &tables, &workload);
    let first = eng.serve(&workload.batches).unwrap();
    for round in 1..3 {
        let again = eng.serve(&workload.batches).unwrap();
        assert_eq!(again.report, first.report, "round {round} report");
        for (i, (a, b)) in again.pooled.iter().zip(first.pooled.iter()).enumerate() {
            assert_matrices_bit_equal(a, b, &format!("round {round} batch {i}"));
        }
        assert_eq!(again.breakdowns, first.breakdowns, "round {round}");
    }
}

/// Alternating batch sizes forces the arenas (refs, streams, gather
/// staging, matrix pool) to re-shape between batches; results must
/// match fresh-engine runs of each batch alone.
#[test]
fn mixed_batch_sizes_reuse_scratch_correctly() {
    let (tables, small_wl) = setup(2, 2, 16);
    let (_, large_wl) = setup(2, 2, 48);
    let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform);

    let mixed = vec![
        small_wl.batches[0].clone(),
        large_wl.batches[0].clone(),
        small_wl.batches[1].clone(),
        large_wl.batches[1].clone(),
    ];

    let mut eng = engine(config.clone(), &tables, &small_wl);
    let mut got = Vec::new();
    for batch in &mixed {
        got.push(eng.run_batch(batch).unwrap());
    }
    for (i, batch) in mixed.iter().enumerate() {
        let mut fresh = engine(config.clone(), &tables, &small_wl);
        let (pooled, bd) = fresh.run_batch(batch).unwrap();
        assert_matrices_bit_equal(&got[i].0, &pooled, &format!("mixed batch {i}"));
        assert_eq!(got[i].1, bd, "mixed batch {i} breakdown");
    }
}

/// The staging-slot capacity guard: a batch larger than the MRAM
/// partial-sum region sized at construction must be rejected instead of
/// silently overflowing into the neighbouring region (the latent bug
/// the steady-state benchmark exposed).
#[test]
fn oversized_batch_is_rejected_not_corrupted() {
    let (tables, small_wl) = setup(2, 1, 16);
    // Engine sized for 16-sample batches (x2 slack -> 32 rows staged).
    let mut config = UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform);
    config.batch_size = 16;
    let mut eng = engine(config, &tables, &small_wl);

    let (_, big_wl) = setup(2, 1, 64);
    let err = eng.run_batch(&big_wl.batches[0]).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("staged output rows"),
        "unexpected error: {msg}"
    );
    // The engine stays usable for fitting batches.
    let (pooled, _) = eng.run_batch(&small_wl.batches[0]).unwrap();
    assert_eq!(pooled.len(), 2);
}
