//! Property tests for the partitioning invariants DESIGN.md §6 calls
//! out: completeness (every row placed exactly once), capacity, and
//! balance dominance of NU over U on arbitrary frequency profiles.

use cooccur_cache::{CacheList, CacheListSet};
use proptest::prelude::*;
use updlrm_core::{cache_aware, non_uniform, uniform, CACHED_ROW_SLOT};
use workloads::FreqProfile;

fn profile_from_counts(counts: &[u32]) -> FreqProfile {
    let mut p = FreqProfile::new(counts.len());
    for (i, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            p.record(i as u64);
        }
    }
    p
}

/// Checks that an assignment covers every row exactly once with dense,
/// unique slots per partition.
fn assert_complete(
    part_of_row: &[u32],
    slot_of_row: &[u32],
    rows_per_part: &[u32],
    rows: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(part_of_row.len(), rows);
    let placed: u32 = rows_per_part.iter().sum();
    let cached = slot_of_row
        .iter()
        .filter(|&&s| s == CACHED_ROW_SLOT)
        .count();
    prop_assert_eq!(placed as usize + cached, rows);
    for (part, &n) in rows_per_part.iter().enumerate() {
        let mut slots: Vec<u32> = (0..rows)
            .filter(|&r| part_of_row[r] as usize == part && slot_of_row[r] != CACHED_ROW_SLOT)
            .map(|r| slot_of_row[r])
            .collect();
        slots.sort_unstable();
        let expect: Vec<u32> = (0..n).collect();
        prop_assert_eq!(slots, expect, "partition {} slots not dense", part);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniform and non-uniform placements are complete and in capacity.
    #[test]
    fn placements_are_complete(
        counts in prop::collection::vec(0u32..50, 1..120),
        parts in 1usize..9,
    ) {
        let rows = counts.len();
        let profile = profile_from_counts(&counts);
        let cap = rows; // always enough
        let u = uniform(rows, parts, cap, &profile).unwrap();
        assert_complete(&u.part_of_row, &u.slot_of_row, &u.rows_per_part, rows)?;
        let nu = non_uniform(rows, parts, cap, &profile).unwrap();
        assert_complete(&nu.part_of_row, &nu.slot_of_row, &nu.rows_per_part, rows)?;
        // Total predicted load is conserved.
        let total: f64 = profile.total_accesses() as f64;
        prop_assert!((u.part_load.iter().sum::<f64>() - total).abs() < 1e-6);
        prop_assert!((nu.part_load.iter().sum::<f64>() - total).abs() < 1e-6);
    }

    /// Greedy NU never balances worse than U.
    #[test]
    fn nu_dominates_u_in_balance(
        counts in prop::collection::vec(0u32..50, 8..120),
        parts in 2usize..9,
    ) {
        let rows = counts.len();
        let profile = profile_from_counts(&counts);
        let u = uniform(rows, parts, rows, &profile).unwrap();
        let nu = non_uniform(rows, parts, rows, &profile).unwrap();
        // Greedy LPT-style packing bounds: NU max load <= U max load.
        let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(max(&nu.part_load) <= max(&u.part_load) + 1e-9);
    }

    /// Capacity violations surface as errors, never as silent overflow.
    #[test]
    fn capacity_is_enforced(
        counts in prop::collection::vec(0u32..10, 4..64),
        parts in 1usize..5,
    ) {
        let rows = counts.len();
        let profile = profile_from_counts(&counts);
        let cap = rows / parts; // may round below the needed capacity
        match non_uniform(rows, parts, cap, &profile) {
            Ok(a) => {
                for &n in &a.rows_per_part {
                    prop_assert!((n as usize) <= cap);
                }
                prop_assert_eq!(a.rows_per_part.iter().sum::<u32>() as usize, rows);
            }
            Err(_) => prop_assert!(cap * parts < rows),
        }
    }

    /// Cache-aware placement is complete: cached rows carry the
    /// sentinel, everything else gets a dense EMT slot, and every
    /// placed list's partition stays within cache capacity.
    #[test]
    fn cache_aware_is_complete(
        counts in prop::collection::vec(1u32..30, 12..80),
        parts in 2usize..6,
        list_sizes in prop::collection::vec(2usize..4, 0..4),
        cache_cap in 0usize..32,
    ) {
        let rows = counts.len();
        let profile = profile_from_counts(&counts);
        // Disjoint lists over the first rows.
        let mut next = 0u64;
        let mut lists = Vec::new();
        for s in list_sizes {
            let items: Vec<u64> = (next..next + s as u64).take_while(|&i| (i as usize) < rows).collect();
            next += s as u64;
            if items.len() >= 2 {
                lists.push(CacheList { items, benefit: 5.0 });
            }
        }
        let set = CacheListSet { lists };
        let ca = cache_aware(rows, parts, rows, cache_cap, &profile, &set).unwrap();
        assert_complete(
            &ca.rows.part_of_row,
            &ca.rows.slot_of_row,
            &ca.rows.rows_per_part,
            rows,
        )?;
        // Cached rows are exactly the placed lists' items.
        let cached_rows: usize = ca
            .rows
            .slot_of_row
            .iter()
            .filter(|&&s| s == CACHED_ROW_SLOT)
            .count();
        let placed_items: usize = ca.placed_lists.lists.iter().map(|l| l.items.len()).sum();
        prop_assert_eq!(cached_rows, placed_items);
        // Per-partition cache rows within capacity.
        for &n in &ca.cache_rows_per_part {
            prop_assert!((n as usize) <= cache_cap + 15, "cap {} rows {}", cache_cap, n);
        }
        prop_assert_eq!(ca.placed_lists.lists.len(), ca.list_part.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Nearest-rank percentile is bounded by the input extrema and
    /// monotone in `q` (DESIGN.md §4.7: both serve and scheduler
    /// reports rely on this shared helper).
    #[test]
    fn percentile_is_bounded_and_monotone(
        mut values in prop::collection::vec(-1e9f64..1e9, 1..200),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (values[0], values[values.len() - 1]);
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let pa = updlrm_core::percentile(&values, qa);
        let pb = updlrm_core::percentile(&values, qb);
        prop_assert!(pa >= lo && pa <= hi, "p({qa}) = {pa} outside [{lo}, {hi}]");
        prop_assert!(pb >= lo && pb <= hi, "p({qb}) = {pb} outside [{lo}, {hi}]");
        prop_assert!(pa <= pb, "percentile not monotone: p({qa}) = {pa} > p({qb}) = {pb}");
    }
}
