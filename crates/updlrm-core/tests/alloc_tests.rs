//! Proves the tentpole property: the steady-state serving path is
//! allocation-free. A counting `#[global_allocator]` (wrapping the
//! system allocator — no new dependencies) observes every heap
//! operation in this test binary; after warm-up serves, one more
//! `serve_stream` over the same batch stream must perform exactly zero
//! allocations and reallocations.
//!
//! This file intentionally holds a single test: the allocation counter
//! is process-global, so concurrent tests would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dlrm_model::EmbeddingTable;
use updlrm_core::{PartitionStrategy, PipelineMode, UpdlrmConfig, UpdlrmEngine};
use workloads::{DatasetSpec, TraceConfig, Workload};

/// Counts every alloc/realloc (frees are not counted: a steady-state
/// path that frees without allocating is impossible anyway, and
/// allocations are the property of interest).
struct CountingAlloc;

static ALLOC_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn setup(strategy: PartitionStrategy, telemetry: bool) -> (UpdlrmEngine, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let num_tables = 2;
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables,
            num_batches: 4,
            ..TraceConfig::default()
        },
    );
    let tables: Vec<EmbeddingTable> = (0..num_tables)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, 32, 3, t as u64).unwrap())
        .collect();
    let mut config = UpdlrmConfig::with_dpus(16, strategy)
        .with_pipeline_mode(PipelineMode::DoubleBuf)
        .with_queue_depth(2)
        // Serial fleet execution: the parallel path spawns threads
        // (which allocate); steady-state serving is the 1-thread path.
        .with_host_threads(1);
    config.telemetry = telemetry;
    config.batch_size = workload.config.batch_size;
    let engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
    (engine, workload)
}

#[test]
fn steady_state_serve_stream_is_allocation_free() {
    // Cache-aware is the worst case: routing exercises the partial-sum
    // cache lookup scratch on top of everything else. Telemetry must
    // hold the same invariant: its counter arenas (per-DPU cells, span
    // accumulators, cache traffic) are preallocated at construction, so
    // recording adds zero heap operations to the hot path.
    for (strategy, telemetry) in [
        (PartitionStrategy::Uniform, false),
        (PartitionStrategy::CacheAware, false),
        (PartitionStrategy::Uniform, true),
        (PartitionStrategy::CacheAware, true),
    ] {
        let (mut engine, workload) = setup(strategy, telemetry);

        // Warm-up: two serves populate every arena (both MRAM staging
        // slots' kernels, stream buffers at their high-water marks, the
        // recycled matrix pool, gather staging, serve bookkeeping).
        for _ in 0..2 {
            engine
                .serve_stream(&workload.batches, |_, _, _| {})
                .unwrap();
        }

        let before = ALLOC_OPS.load(Ordering::SeqCst);
        let report = engine
            .serve_stream(&workload.batches, |_, _, _| {})
            .unwrap();
        let after = ALLOC_OPS.load(Ordering::SeqCst);

        assert_eq!(report.batches, workload.batches.len());
        assert!(report.wall_ns > 0.0);
        assert_eq!(
            after - before,
            0,
            "steady-state serve_stream allocated under {strategy} (telemetry {telemetry}) \
             ({} heap ops for {} batches)",
            after - before,
            report.batches
        );
        if telemetry {
            // The metrics actually recorded through the zero-alloc pass.
            let snap = engine.metrics_snapshot();
            assert_eq!(snap.batches as usize, 3 * workload.batches.len());
            assert!(snap.launches > 0);
            assert!(snap.load_imbalance.min >= 1.0 - 1e-9);
        }
    }
}
