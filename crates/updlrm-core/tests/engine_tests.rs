//! Integration tests: the PIM engine must reproduce the reference
//! embedding layer exactly (integer tables) for every strategy and
//! tile shape, and its performance counters must reflect the paper's
//! qualitative claims.

use dlrm_model::{EmbeddingTable, QueryBatch, SparseInput};
use updlrm_core::{PartitionStrategy, UpdlrmConfig, UpdlrmEngine};
use workloads::{DatasetSpec, TraceConfig, Workload};

const DIM: usize = 32;

fn setup(spec: &DatasetSpec, num_tables: usize, batches: usize) -> (Vec<EmbeddingTable>, Workload) {
    let workload = Workload::generate(
        spec,
        TraceConfig {
            num_tables,
            num_batches: batches,
            ..TraceConfig::default()
        },
    );
    let tables = (0..num_tables)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

fn reference_pooled(tables: &[EmbeddingTable], batch: &QueryBatch) -> Vec<Vec<f32>> {
    tables
        .iter()
        .zip(batch.sparse.iter())
        .map(|(t, s)| t.bag_sum(s).unwrap().into_vec())
        .collect()
}

#[test]
fn engine_matches_reference_for_all_strategies() {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let (tables, workload) = setup(&spec, 2, 2);
    for strategy in [
        PartitionStrategy::Uniform,
        PartitionStrategy::NonUniform,
        PartitionStrategy::CacheAware,
    ] {
        let config = UpdlrmConfig::with_dpus(16, strategy);
        let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
        for batch in &workload.batches {
            let (pooled, _) = engine.run_batch(batch).unwrap();
            let expect = reference_pooled(&tables, batch);
            for (t, m) in pooled.iter().enumerate() {
                assert_eq!(
                    m.as_slice(),
                    expect[t].as_slice(),
                    "strategy {strategy}, table {t}"
                );
            }
        }
    }
}

#[test]
fn engine_matches_reference_for_fixed_nc() {
    let spec = DatasetSpec::amazon_home().scaled_down(5000);
    let (tables, workload) = setup(&spec, 2, 1);
    for n_c in [2usize, 4, 8] {
        let config = UpdlrmConfig::with_dpus(64, PartitionStrategy::NonUniform).with_fixed_nc(n_c);
        let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
        let (pooled, breakdown) = engine.run_batch(&workload.batches[0]).unwrap();
        let expect = reference_pooled(&tables, &workload.batches[0]);
        for (t, m) in pooled.iter().enumerate() {
            assert_eq!(m.as_slice(), expect[t].as_slice(), "n_c {n_c}, table {t}");
        }
        assert!(breakdown.total_ns() > 0.0);
        assert_eq!(engine.table_report(0).tiling.n_c, n_c);
    }
}

#[test]
fn cache_aware_reduces_dma_traffic_on_hot_data() {
    // §3.3 / Fig. 6: partial-sum caching cuts memory accesses on
    // co-occurrence-heavy, skewed workloads.
    let mut spec = DatasetSpec::movie().scaled_down(500);
    spec.cooccur.cluster_rate = 0.6;
    let (tables, workload) = setup(&spec, 1, 4);
    let mut total = [0u64; 2];
    for (i, strategy) in [PartitionStrategy::NonUniform, PartitionStrategy::CacheAware]
        .into_iter()
        .enumerate()
    {
        let config = UpdlrmConfig::with_dpus(16, strategy);
        let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
        for batch in &workload.batches {
            let (_, b) = engine.run_batch(batch).unwrap();
            total[i] += b.dma_transfers;
        }
    }
    assert!(
        total[1] < total[0],
        "CA should issue fewer MRAM reads: NU {} vs CA {}",
        total[0],
        total[1]
    );
}

#[test]
fn non_uniform_balances_lookup_cycles_on_skewed_data() {
    // §3.2 / Fig. 6: NU balances per-DPU work where U cannot.
    let spec = DatasetSpec::goodreads().scaled_down(2000);
    let (tables, workload) = setup(&spec, 1, 3);
    let imbalance = |strategy| {
        let config = UpdlrmConfig::with_dpus(16, strategy).with_fixed_nc(8);
        let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
        let mut worst: f64 = 0.0;
        for batch in &workload.batches {
            let (_, b) = engine.run_batch(batch).unwrap();
            worst = worst.max(b.lookup_imbalance);
        }
        worst
    };
    let u = imbalance(PartitionStrategy::Uniform);
    let nu = imbalance(PartitionStrategy::NonUniform);
    assert!(nu < u, "NU lookup imbalance {nu} should beat U {u}");
}

#[test]
fn run_inference_produces_reference_ctr() {
    use dlrm_model::{Dlrm, DlrmConfig};
    let spec = DatasetSpec::amazon_clothes().scaled_down(10_000);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 2,
            num_batches: 1,
            ..TraceConfig::default()
        },
    );
    let config = DlrmConfig {
        num_dense: 13,
        embedding_dim: DIM,
        table_rows: vec![spec.num_items; 2],
        bottom_hidden: vec![32],
        top_hidden: vec![32],
        seed: 5,
    };
    let model = Dlrm::new_integer_tables(config).unwrap();
    let mut engine = UpdlrmEngine::from_workload(
        UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware),
        model.tables(),
        &workload,
    )
    .unwrap();
    let batch = &workload.batches[0];
    let (ctr, _) = engine.run_inference(&model, batch).unwrap();
    assert_eq!(ctr, model.forward(batch).unwrap());
}

#[test]
fn dedup_ablation_increases_dma_but_not_results() {
    let spec = DatasetSpec::goodreads().scaled_down(2000);
    let (tables, workload) = setup(&spec, 1, 1);
    let run = |dedup: bool| {
        let config = UpdlrmConfig {
            dedup,
            ..UpdlrmConfig::with_dpus(8, PartitionStrategy::NonUniform)
        };
        let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
        let (pooled, b) = engine.run_batch(&workload.batches[0]).unwrap();
        (pooled[0].as_slice().to_vec(), b.dma_transfers)
    };
    let (with_dedup, dma_dedup) = run(true);
    let (without, dma_plain) = run(false);
    assert_eq!(with_dedup, without, "dedup must not change results");
    assert!(
        dma_dedup < dma_plain,
        "dedup must cut MRAM reads: {dma_dedup} vs {dma_plain}"
    );
}

#[test]
fn ragged_transfers_are_slower_than_padded() {
    let spec = DatasetSpec::goodreads().scaled_down(2000);
    let (tables, workload) = setup(&spec, 1, 1);
    let stage1 = |pad: bool| {
        let config = UpdlrmConfig {
            pad_transfers: pad,
            ..UpdlrmConfig::with_dpus(8, PartitionStrategy::Uniform)
        };
        let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
        let (_, b) = engine.run_batch(&workload.batches[0]).unwrap();
        b.stage1_ns
    };
    // Uniform partitioning on skewed data gives ragged per-partition
    // streams; padding restores parallel rank transfers.
    assert!(stage1(true) < stage1(false));
}

#[test]
fn engine_rejects_mismatched_batches() {
    let spec = DatasetSpec::amazon_clothes().scaled_down(20_000);
    let (tables, workload) = setup(&spec, 2, 1);
    let mut engine = UpdlrmEngine::from_workload(
        UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform),
        &tables,
        &workload,
    )
    .unwrap();
    // Wrong number of sparse groups.
    let bad = QueryBatch::new(
        vec![0.0; 13],
        13,
        vec![SparseInput::from_samples([vec![0u64]])],
    )
    .unwrap();
    assert!(engine.run_batch(&bad).is_err());
    // Out-of-range index.
    let bad2 = QueryBatch::new(
        vec![0.0; 13],
        13,
        vec![
            SparseInput::from_samples([vec![u64::MAX]]),
            SparseInput::from_samples([vec![0u64]]),
        ],
    )
    .unwrap();
    assert!(engine.run_batch(&bad2).is_err());
}

#[test]
fn engine_rejects_bad_configs() {
    let spec = DatasetSpec::amazon_clothes().scaled_down(20_000);
    let (tables, workload) = setup(&spec, 3, 1);
    // 16 DPUs not divisible by 3 tables.
    assert!(UpdlrmEngine::from_workload(
        UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform),
        &tables,
        &workload
    )
    .is_err());
}

#[test]
fn cache_fraction_zero_behaves_like_non_uniform() {
    let spec = DatasetSpec::movie().scaled_down(1000);
    let (tables, workload) = setup(&spec, 1, 2);
    let config = UpdlrmConfig::with_dpus(8, PartitionStrategy::CacheAware).with_cache_fraction(0.0);
    let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
    assert_eq!(engine.table_report(0).cached_lists, 0);
    let (pooled, _) = engine.run_batch(&workload.batches[0]).unwrap();
    let expect = reference_pooled(&tables, &workload.batches[0]);
    assert_eq!(pooled[0].as_slice(), expect[0].as_slice());
}

#[test]
fn breakdown_reports_cache_hit_counts() {
    let mut spec = DatasetSpec::movie().scaled_down(500);
    spec.cooccur.cluster_rate = 0.6;
    let (tables, workload) = setup(&spec, 1, 2);
    let mut ca = UpdlrmEngine::from_workload(
        UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware),
        &tables,
        &workload,
    )
    .unwrap();
    let (_, b_ca) = ca.run_batch(&workload.batches[0]).unwrap();
    assert!(
        b_ca.cache_hits > 0,
        "CA on a clustered trace should hit the cache"
    );
    assert!(b_ca.emt_lookups > 0);

    let mut nu = UpdlrmEngine::from_workload(
        UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform),
        &tables,
        &workload,
    )
    .unwrap();
    let (_, b_nu) = nu.run_batch(&workload.batches[0]).unwrap();
    assert_eq!(b_nu.cache_hits, 0);
    // Cache hits replace several EMT lookups each: total served lookups
    // match the batch's demand either way.
    let demand: u64 = workload.batches[0]
        .sparse
        .iter()
        .map(|s| s.total_lookups() as u64)
        .sum();
    assert_eq!(b_nu.emt_lookups, demand);
    assert!(b_ca.cache_hits + b_ca.emt_lookups < demand);
}

#[test]
fn replicated_strategy_matches_reference_and_balances_a_hot_row() {
    // A pathological trace: one item appears in every sample while the
    // rest of the reduction is tiny, so a single row carries more load
    // than a balanced partition's share (greedy NU's LPT floor).
    let items = 1024usize;
    let batch = 256usize;
    let spec = DatasetSpec::balanced_synthetic(items, 2.0);
    let base = Workload::generate(
        &spec,
        TraceConfig {
            num_tables: 1,
            batch_size: batch,
            num_batches: 2,
            ..TraceConfig::default()
        },
    );
    let mut workload = base;
    for b in &mut workload.batches {
        let sp = &b.sparse[0];
        let samples: Vec<Vec<u64>> = (0..sp.batch_size())
            .map(|s| {
                let mut v = sp.sample(s).to_vec();
                if !v.contains(&0) {
                    v.push(0);
                }
                v
            })
            .collect();
        b.sparse[0] = SparseInput::from_samples(samples);
    }
    let tables = vec![EmbeddingTable::random_integer_valued(items, DIM, 3, 1).unwrap()];

    let run = |strategy: PartitionStrategy| {
        let mut config = UpdlrmConfig::with_dpus(16, strategy).with_fixed_nc(8);
        config.replicate_top = 8;
        config.batch_size = batch;
        // Remove the fixed launch overhead so per-DPU cycle imbalance
        // reflects the lookup load alone.
        config.cost.launch_overhead_cycles = 0;
        let mut engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
        let (pooled, b) = engine.run_batch(&workload.batches[0]).unwrap();
        (pooled[0].as_slice().to_vec(), b.lookup_imbalance)
    };
    let (nu_out, nu_imb) = run(PartitionStrategy::NonUniform);
    let (rep_out, rep_imb) = run(PartitionStrategy::Replicated);
    // Functional equivalence regardless of placement.
    assert_eq!(nu_out, rep_out, "replication must not change results");
    let expect = tables[0].bag_sum(&workload.batches[0].sparse[0]).unwrap();
    assert_eq!(rep_out, expect.as_slice());
    // And better balance under the planted hot row.
    assert!(
        rep_imb < nu_imb - 0.05,
        "replication should balance the hot row: NU+R {rep_imb} vs NU {nu_imb}"
    );
}

#[test]
fn int8_engine_tracks_f32_within_quant_bound() {
    // Fractional-valued tables quantized to int8 must stay within the
    // per-row quantization error budget end to end: the kernel fuses
    // dequantize into the accumulate, so the worst case per output
    // element is one quantization error per referenced row.
    use dlrm_model::{quant, EmbedDtype};
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let (_, workload) = setup(&spec, 2, 2);
    let tables: Vec<EmbeddingTable> = (0..2)
        .map(|t| EmbeddingTable::random(spec.num_items, DIM, 2.5, 100 + t as u64).unwrap())
        .collect();
    // A valid per-reference bound for every column slice: quantization
    // happens per n_c-wide slice, whose value range is contained in the
    // whole row's range, so the whole-row bound dominates.
    let row_bound = |table: &EmbeddingTable| -> f32 {
        (0..table.rows())
            .map(|r| {
                let row = table.row(r as u64).unwrap();
                let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                quant::max_abs_error_bound((hi - lo) / 255.0, lo.abs().max(hi.abs()))
            })
            .fold(0.0, f32::max)
    };
    let bounds: Vec<f32> = tables.iter().map(row_bound).collect();

    let base = UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform).with_fixed_nc(8);
    let mut f32_engine = UpdlrmEngine::from_workload(base.clone(), &tables, &workload).unwrap();
    let mut i8_engine =
        UpdlrmEngine::from_workload(base.with_embed_dtype(EmbedDtype::Int8), &tables, &workload)
            .unwrap();
    for batch in &workload.batches {
        let (f32_out, _) = f32_engine.run_batch(batch).unwrap();
        let (i8_out, _) = i8_engine.run_batch(batch).unwrap();
        for (t, (a, b)) in f32_out.iter().zip(i8_out.iter()).enumerate() {
            for s in 0..batch.batch_size() {
                let budget = batch.sparse[t].sample(s).len() as f32 * bounds[t] * 1.5;
                for (x, y) in a.row(s).iter().zip(b.row(s).iter()) {
                    assert!(
                        (x - y).abs() <= budget,
                        "table {t} sample {s}: |{x} - {y}| > {budget}"
                    );
                }
            }
        }
    }
}

#[test]
fn int8_stage2_strictly_below_f32() {
    // At n_c = 8 an int8 EMT row DMA moves 16 B instead of 32 B and the
    // fused dequantize-accumulate charges fewer pipeline instructions,
    // so the modeled stage-2 time must strictly drop whichever bound
    // (DMA engine or pipeline) binds. Uniform strategy keeps every
    // lookup on the EMT path.
    use dlrm_model::EmbedDtype;
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let (tables, workload) = setup(&spec, 2, 1);
    let base = UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform).with_fixed_nc(8);
    let mut f32_engine = UpdlrmEngine::from_workload(base.clone(), &tables, &workload).unwrap();
    let mut i8_engine =
        UpdlrmEngine::from_workload(base.with_embed_dtype(EmbedDtype::Int8), &tables, &workload)
            .unwrap();
    let (_, f32_b) = f32_engine.run_batch(&workload.batches[0]).unwrap();
    let (_, i8_b) = i8_engine.run_batch(&workload.batches[0]).unwrap();
    assert!(
        i8_b.stage2_ns < f32_b.stage2_ns,
        "int8 stage2 {} !< f32 stage2 {}",
        i8_b.stage2_ns,
        f32_b.stage2_ns
    );
    // Stage 1 (transfer) and stage 3 (gather/combine) are untouched by
    // the EMT dtype: streams and outputs stay f32.
    assert_eq!(i8_b.stage1_ns.to_bits(), f32_b.stage1_ns.to_bits());
    assert_eq!(i8_b.stage3_ns.to_bits(), f32_b.stage3_ns.to_bits());
}

#[test]
fn int8_constant_rows_stay_exact() {
    // Constant rows quantize with scale = 0 and reconstruct exactly, so
    // the int8 engine must agree with the f32 engine bit for bit.
    use dlrm_model::EmbedDtype;
    let spec = DatasetSpec::amazon_home().scaled_down(5000);
    let (_, workload) = setup(&spec, 2, 1);
    let tables: Vec<EmbeddingTable> = (0..2)
        .map(|t| {
            let mut table = EmbeddingTable::zeros(spec.num_items, DIM).unwrap();
            for r in 0..spec.num_items {
                let v = ((r * 7 + t * 3) % 13) as f32 - 6.0;
                table.as_mut_slice()[r * DIM..(r + 1) * DIM].fill(v);
            }
            table
        })
        .collect();
    let base = UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform).with_fixed_nc(8);
    let mut f32_engine = UpdlrmEngine::from_workload(base.clone(), &tables, &workload).unwrap();
    let mut i8_engine =
        UpdlrmEngine::from_workload(base.with_embed_dtype(EmbedDtype::Int8), &tables, &workload)
            .unwrap();
    let (f32_out, _) = f32_engine.run_batch(&workload.batches[0]).unwrap();
    let (i8_out, _) = i8_engine.run_batch(&workload.batches[0]).unwrap();
    for (t, (a, b)) in f32_out.iter().zip(i8_out.iter()).enumerate() {
        assert_eq!(a.as_slice(), b.as_slice(), "table {t}");
    }
}
