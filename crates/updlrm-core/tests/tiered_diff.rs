//! Tiered-vs-untiered differential suite (the tentpole proof): under
//! *any* valid placement plan, the pooled embeddings computed by the
//! multi-rank [`TieredEngine`] are bit-identical to the untiered
//! single-rank [`UpdlrmEngine`] on the same trace.
//!
//! Tables are integer-valued with small magnitude, so every partial sum
//! is exact in f32 and addition grouping cannot perturb bits — any
//! difference is a routing or placement bug, not float noise.

use std::sync::OnceLock;

use dlrm_model::{EmbeddingTable, Matrix};
use placement::{plan, Catalog, PlacementPlan, PlannerConfig};
use proptest::prelude::*;
use proptest::TestRunner;
use updlrm_core::{PartitionStrategy, TieredEngine, UpdlrmConfig, UpdlrmEngine};
use upmem_sim::RankTopology;
use workloads::{DatasetSpec, FreqProfile, TraceConfig, Workload};

const DIM: usize = 32;
const TABLES: usize = 2;

struct Fixture {
    spec: DatasetSpec,
    workload: Workload,
    tables: Vec<EmbeddingTable>,
    profiles: Vec<FreqProfile>,
    catalog: Catalog,
    /// Untiered reference pooled embeddings, one `Vec<Matrix>` per batch.
    reference: Vec<Vec<Matrix>>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let spec = DatasetSpec::goodreads().scaled_down(5000);
        let workload = Workload::generate(
            &spec,
            TraceConfig {
                num_tables: TABLES,
                num_batches: 3,
                ..TraceConfig::default()
            },
        );
        let tables: Vec<EmbeddingTable> = (0..TABLES)
            .map(|t| {
                EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap()
            })
            .collect();
        let profiles: Vec<FreqProfile> = (0..TABLES)
            .map(|t| FreqProfile::from_inputs(spec.num_items, workload.table_inputs(t)))
            .collect();
        let catalog = Catalog::homogeneous(TABLES, spec.num_items, DIM);

        let mut reference_engine = UpdlrmEngine::from_workload(
            UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform),
            &tables,
            &workload,
        )
        .unwrap();
        let reference = workload
            .batches
            .iter()
            .map(|b| reference_engine.run_batch(b).unwrap().0)
            .collect();
        Fixture {
            spec,
            workload,
            tables,
            profiles,
            catalog,
            reference,
        }
    })
}

fn assert_bit_identical(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.rows(), b.rows(), "{ctx}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{ctx}: col mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Plans the fixture catalog with the given knobs; `emt_rows` is the
/// per-partition EMT budget in rows.
fn plan_with(
    topology: RankTopology,
    emt_rows: usize,
    host_cache_bytes: usize,
    replicate_top: usize,
) -> PlacementPlan {
    let fix = fixture();
    let config = PlannerConfig {
        topology,
        emt_capacity_bytes: emt_rows * DIM * 4,
        host_cache_bytes,
        replicate_top,
        ..PlannerConfig::default()
    };
    plan(&fix.catalog, &fix.profiles, &config).unwrap()
}

/// Runs the tiered engine over the fixture trace batch by batch and
/// checks every pooled matrix against the untiered reference.
fn assert_plan_matches_reference(p: &PlacementPlan, ctx: &str) {
    let fix = fixture();
    let mut tiered = TieredEngine::new(
        UpdlrmConfig {
            telemetry: true,
            ..UpdlrmConfig::default()
        },
        p,
        &fix.tables,
    )
    .unwrap();
    for (bi, batch) in fix.workload.batches.iter().enumerate() {
        let (pooled, bd) = tiered.run_batch(batch).unwrap();
        assert!(bd.total_ns() > 0.0, "{ctx}: batch {bi} has no modeled time");
        assert_eq!(pooled.len(), TABLES);
        for (t, m) in pooled.iter().enumerate() {
            assert_bit_identical(
                m,
                &fix.reference[bi][t],
                &format!("{ctx} batch {bi} table {t}"),
            );
        }
    }
}

/// Hand-picked plans spanning the tier space: single rank, multi-rank,
/// no host tier, no replica tier, both off (pure cold MRAM), tiny
/// partitions forcing wide sharding.
#[test]
fn tiered_pooled_embeddings_match_untiered_reference() {
    let fix = fixture();
    let rows = fix.spec.num_items;
    for (name, topology, emt_rows, host_bytes, rep) in [
        (
            "single-rank single-part",
            RankTopology {
                nr_ranks: 1,
                dpus_per_rank: 4,
            },
            rows + 64,
            0,
            0,
        ),
        (
            "pure cold multi-rank",
            RankTopology {
                nr_ranks: 3,
                dpus_per_rank: 5,
            },
            rows / 4 + 64,
            0,
            0,
        ),
        (
            "replicated only",
            RankTopology {
                nr_ranks: 2,
                dpus_per_rank: 8,
            },
            rows / 3 + 64,
            0,
            48,
        ),
        (
            "host only",
            RankTopology {
                nr_ranks: 2,
                dpus_per_rank: 8,
            },
            rows / 3 + 64,
            TABLES * 96 * DIM * 4,
            0,
        ),
        (
            "all tiers, wide fleet",
            RankTopology {
                nr_ranks: 4,
                dpus_per_rank: 16,
            },
            rows / 8 + 64,
            TABLES * 64 * DIM * 4,
            32,
        ),
    ] {
        let p = plan_with(topology, emt_rows, host_bytes, rep);
        assert_plan_matches_reference(&p, name);
    }
}

/// `serve_stream` is the same numerics path as `run_batch`: pooled
/// outputs bit-match batch by batch, and the report covers the stream.
#[test]
fn tiered_serve_stream_matches_run_batch() {
    let fix = fixture();
    let p = plan_with(
        RankTopology {
            nr_ranks: 3,
            dpus_per_rank: 8,
        },
        fix.spec.num_items / 4 + 64,
        TABLES * 32 * DIM * 4,
        16,
    );
    let mut tiered = TieredEngine::new(UpdlrmConfig::default(), &p, &fix.tables).unwrap();
    let mut served: Vec<Vec<Matrix>> = Vec::new();
    let report = tiered
        .serve_stream(&fix.workload.batches, |i, pooled, bd| {
            assert_eq!(i, served.len(), "sink fires in order");
            assert!(bd.total_ns() > 0.0);
            served.push(pooled.to_vec());
        })
        .unwrap();
    assert_eq!(report.batches, fix.workload.batches.len());
    assert_eq!(report.samples, fix.workload.num_queries());
    assert!(report.wall_ns > 0.0);
    assert!(report.p99_latency_ns >= report.p50_latency_ns);
    assert_eq!(served.len(), fix.reference.len());
    for (bi, (a, b)) in served.iter().zip(&fix.reference).enumerate() {
        for (t, (ma, mb)) in a.iter().zip(b).enumerate() {
            assert_bit_identical(ma, mb, &format!("serve batch {bi} table {t}"));
        }
    }
}

/// Two engines built from the same plan produce bit-identical pooled
/// outputs *and* breakdowns — the tiered path is deterministic.
#[test]
fn tiered_runs_are_deterministic() {
    let fix = fixture();
    let p = plan_with(
        RankTopology {
            nr_ranks: 4,
            dpus_per_rank: 8,
        },
        fix.spec.num_items / 6 + 64,
        TABLES * 48 * DIM * 4,
        24,
    );
    let mut a = TieredEngine::new(UpdlrmConfig::default(), &p, &fix.tables).unwrap();
    let mut b = TieredEngine::new(UpdlrmConfig::default(), &p, &fix.tables).unwrap();
    for (bi, batch) in fix.workload.batches.iter().enumerate() {
        let (pa, bda) = a.run_batch(batch).unwrap();
        let (pb, bdb) = b.run_batch(batch).unwrap();
        assert_eq!(bda.total_ns().to_bits(), bdb.total_ns().to_bits());
        assert_eq!(bda.cache_hits, bdb.cache_hits);
        assert_eq!(bda.emt_lookups, bdb.emt_lookups);
        for (t, (ma, mb)) in pa.iter().zip(&pb).enumerate() {
            assert_bit_identical(ma, mb, &format!("determinism batch {bi} table {t}"));
        }
    }
}

/// Host-tier hits surface as `cache_hits` and PIM references as
/// `emt_lookups`; together they cover every lookup in the trace.
#[test]
fn tier_accounting_covers_every_lookup() {
    let fix = fixture();
    // Generous host tier so both counters are exercised.
    let p = plan_with(
        RankTopology {
            nr_ranks: 2,
            dpus_per_rank: 8,
        },
        fix.spec.num_items / 2 + 64,
        TABLES * 128 * DIM * 4,
        16,
    );
    let mut tiered = TieredEngine::new(UpdlrmConfig::default(), &p, &fix.tables).unwrap();
    let mut host = 0u64;
    let mut pim = 0u64;
    for batch in &fix.workload.batches {
        let (_, bd) = tiered.run_batch(batch).unwrap();
        host += bd.cache_hits;
        pim += bd.emt_lookups;
    }
    assert!(
        host > 0,
        "hot rows should be host hits under a generous cache"
    );
    assert!(pim > 0, "cold rows should still reach the fleet");
    assert_eq!(host + pim, fix.workload.total_lookups() as u64);
}

/// A plan whose shapes disagree with the engine's tables is rejected
/// up front, as is a plan for a different table count.
#[test]
fn mismatched_plan_is_rejected() {
    let fix = fixture();
    let topo = RankTopology {
        nr_ranks: 1,
        dpus_per_rank: 4,
    };
    let p = plan_with(topo, fix.spec.num_items + 64, 0, 0);
    let err = TieredEngine::new(UpdlrmConfig::default(), &p, &fix.tables[..1])
        .expect_err("table-count mismatch must fail");
    assert!(err.to_string().contains("tables"), "{err}");

    let other = Catalog::homogeneous(TABLES, fix.spec.num_items + 1, DIM);
    let profiles: Vec<FreqProfile> = (0..TABLES)
        .map(|t| FreqProfile::from_inputs(fix.spec.num_items + 1, fix.workload.table_inputs(t)))
        .collect();
    let config = PlannerConfig {
        topology: topo,
        emt_capacity_bytes: (fix.spec.num_items + 128) * DIM * 4,
        ..PlannerConfig::default()
    };
    let wrong_rows = plan(&other, &profiles, &config).unwrap();
    let err = TieredEngine::new(UpdlrmConfig::default(), &wrong_rows, &fix.tables)
        .expect_err("row-count mismatch must fail");
    assert!(err.to_string().contains("plan places"), "{err}");
}

/// Property: for *random* feasible planner knobs (topology, partition
/// budget, host cache, replica depth) the tiered engine bit-matches the
/// untiered reference on the whole trace. CI runs this at
/// `PROPTEST_CASES=1024`.
#[test]
fn prop_any_valid_plan_is_bit_identical() {
    let fix = fixture();
    let rows = fix.spec.num_items;
    let strategy = (
        // Topology: 1-4 ranks, 4-24 DPUs each.
        (1usize..=4, 4usize..=24),
        // Per-partition EMT budget in rows: from tiny (wide sharding)
        // to everything-in-one-partition.
        64usize..=rows + 64,
        // Host cache rows per table, 0 disables the tier.
        0usize..=256,
        // Replica block depth, 0 disables the tier.
        0usize..=64,
    );
    let mut runner = TestRunner::new(ProptestConfig::with_cases(24));
    runner.run(
        &strategy,
        |((nr_ranks, dpus_per_rank), emt_rows, host_rows, rep)| {
            let topology = RankTopology {
                nr_ranks,
                dpus_per_rank,
            };
            let config = PlannerConfig {
                topology,
                emt_capacity_bytes: emt_rows * DIM * 4,
                host_cache_bytes: TABLES * host_rows * DIM * 4,
                replicate_top: rep,
                ..PlannerConfig::default()
            };
            let Ok(p) = plan(&fix.catalog, &fix.profiles, &config) else {
                // Infeasible knobs (partition too small for the
                // replica block, fleet too small) are the planner's
                // problem, covered by placement's own proptests.
                return Ok(());
            };
            let mut tiered = TieredEngine::new(UpdlrmConfig::default(), &p, &fix.tables).unwrap();
            for (bi, batch) in fix.workload.batches.iter().enumerate() {
                let (pooled, _) = tiered.run_batch(batch).unwrap();
                for (t, m) in pooled.iter().enumerate() {
                    let r = &fix.reference[bi][t];
                    prop_assert_eq!(m.rows(), r.rows());
                    prop_assert_eq!(m.cols(), r.cols());
                    for (x, y) in m.as_slice().iter().zip(r.as_slice()) {
                        prop_assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "batch {} table {} under {:?}",
                            bi,
                            t,
                            &config
                        );
                    }
                }
            }
            Ok(())
        },
    );
}
