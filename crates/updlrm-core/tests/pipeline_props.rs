//! Property tests for the analytic pipeline model in `pipeline.rs`.
//!
//! The double-buffered schedule computed by `pipelined_wall_ns` is the
//! contract the executed serving path (`serve.rs`) is checked against,
//! so the model itself gets fuzzed here: for arbitrary non-negative
//! stage times it must never lose to the sequential schedule, never
//! beat the resource lower bounds (the DPU array must run every stage
//! 2; the bus must carry every stage 1 and 3), degenerate to the
//! sequential wall for a single batch, and respond monotonically to
//! longer stages.

use proptest::prelude::*;
use updlrm_core::{pipelined_wall_ns, sequential_wall_ns, EmbeddingBreakdown, PipelineReport};

/// Stage times in nanoseconds; generous enough to cover bus-bound,
/// lookup-bound, and zero-length batches.
const STAGE_NS: std::ops::Range<f64> = 0.0..5_000.0;

fn bd((s1, s2, s3): (f64, f64, f64)) -> EmbeddingBreakdown {
    EmbeddingBreakdown {
        stage1_ns: s1,
        stage2_ns: s2,
        stage3_ns: s3,
        ..Default::default()
    }
}

fn batches() -> impl Strategy<Value = Vec<EmbeddingBreakdown>> {
    prop::collection::vec((STAGE_NS, STAGE_NS, STAGE_NS).prop_map(bd), 0..24)
}

/// Absolute slack for f64 comparisons across differently-ordered sums.
const EPS: f64 = 1e-6;

proptest! {
    /// Overlap can only help: the pipelined schedule never loses to
    /// back-to-back execution.
    #[test]
    fn pipelined_never_exceeds_sequential(b in batches()) {
        prop_assert!(
            pipelined_wall_ns(&b) <= sequential_wall_ns(&b) + EPS,
            "pipelined {} > sequential {}",
            pipelined_wall_ns(&b),
            sequential_wall_ns(&b)
        );
    }

    /// Resource lower bounds: the DPU array must serially run every
    /// stage 2, and the bus must serially carry every stage 1 and 3 —
    /// whichever is larger bounds the schedule from below.
    #[test]
    fn pipelined_respects_resource_lower_bounds(b in batches()) {
        let wall = pipelined_wall_ns(&b);
        let dpu: f64 = b.iter().map(|x| x.stage2_ns).sum();
        let bus: f64 = b.iter().map(|x| x.stage1_ns + x.stage3_ns).sum();
        prop_assert!(wall >= dpu.max(bus) - EPS, "wall {} < max(dpu {}, bus {})", wall, dpu, bus);
    }

    /// The critical path of the first batch's lead-in and the last
    /// batch's drain cannot be pipelined away.
    #[test]
    fn pipelined_respects_leadin_and_drain(b in batches()) {
        if b.is_empty() {
            return Ok(());
        }
        let wall = pipelined_wall_ns(&b);
        let dpu: f64 = b.iter().map(|x| x.stage2_ns).sum();
        let bound = b[0].stage1_ns + dpu + b[b.len() - 1].stage3_ns;
        prop_assert!(wall >= bound - EPS, "wall {} < lead-in bound {}", wall, bound);
    }

    /// A single batch has nothing to overlap with: both schedules
    /// degenerate to stage1 + stage2 + stage3 exactly.
    #[test]
    fn single_batch_equals_sequential(t in (STAGE_NS, STAGE_NS, STAGE_NS)) {
        let b = [bd(t)];
        prop_assert_eq!(pipelined_wall_ns(&b), sequential_wall_ns(&b));
    }

    /// The sequential wall is a sum, hence permutation-invariant (up to
    /// f64 reassociation).
    #[test]
    fn sequential_is_permutation_invariant(b in batches(), rot in 0usize..24) {
        let mut rotated = b.clone();
        if !rotated.is_empty() {
            let mid = rot % rotated.len();
            rotated.rotate_left(mid);
        }
        let (a, c) = (sequential_wall_ns(&b), sequential_wall_ns(&rotated));
        prop_assert!((a - c).abs() <= EPS, "{} != {}", a, c);
    }

    /// Growing any single stage of any batch never shrinks either wall.
    #[test]
    fn walls_are_monotone_in_stage_times(
        b in batches(),
        pick in (0usize..24, 0usize..3, STAGE_NS),
    ) {
        if b.is_empty() {
            return Ok(());
        }
        let (i, stage, extra) = pick;
        let mut grown = b.clone();
        let slot = &mut grown[i % b.len()];
        match stage {
            0 => slot.stage1_ns += extra,
            1 => slot.stage2_ns += extra,
            _ => slot.stage3_ns += extra,
        }
        prop_assert!(pipelined_wall_ns(&grown) >= pipelined_wall_ns(&b) - EPS);
        prop_assert!(sequential_wall_ns(&grown) >= sequential_wall_ns(&b) - EPS);
    }

    /// The report wraps the same two numbers and never reports a
    /// speedup below 1 (up to rounding).
    #[test]
    fn report_is_consistent_with_walls(b in batches()) {
        let r = PipelineReport::from_batches(&b);
        prop_assert_eq!(r.sequential_ns, sequential_wall_ns(&b));
        prop_assert_eq!(r.pipelined_ns, pipelined_wall_ns(&b));
        prop_assert!(r.speedup() >= 1.0 - EPS, "speedup {}", r.speedup());
    }
}
