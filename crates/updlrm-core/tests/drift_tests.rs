//! Differential and determinism tests for online re-partitioning
//! (DESIGN.md §4.11).
//!
//! The contract under test: a serving engine whose replanner migrates
//! EMT shards between DPUs mid-stream must stay *functionally*
//! invisible — on integer-valued tables every pooled embedding is
//! bit-identical to a static engine's, before, during and after the
//! atomic flip — while the drift telemetry proves migrations really
//! happened (no vacuous pass) and the mid-migration snapshot is
//! byte-deterministic under a fixed seed.

use dlrm_model::EmbeddingTable;
use updlrm_core::{PartitionStrategy, ReplanPolicy, Snapshot, UpdlrmConfig, UpdlrmEngine};
use workloads::{
    ArrivalProcess, DatasetSpec, DriftSchedule, HotSetRotation, TraceConfig, Workload,
};

const DIM: usize = 32;
const NUM_TABLES: usize = 2;
const NUM_BATCHES: usize = 12;
/// Modeled gap between scheduler ticks in these tests: large enough
/// that a migration (≈0.2 ms for these table sizes) completes within a
/// few batches, small enough that serving happens mid-migration too.
const TICK_NS: u64 = 50_000;

/// A rotating-hot-set (UPWL v3) workload over integer-valued tables so
/// pooled sums are exact regardless of summation order.
fn drifting_setup() -> (Vec<EmbeddingTable>, Workload) {
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let drift = DriftSchedule {
        rotation: Some(HotSetRotation {
            num_sets: 4,
            set_size: 64,
            period_ns: 150_000,
            hot_fraction: 0.8,
        }),
        spikes: Vec::new(),
        diurnal: None,
    };
    let workload = Workload::generate_drifting(
        &spec,
        TraceConfig {
            num_tables: NUM_TABLES,
            num_batches: NUM_BATCHES,
            ..TraceConfig::default()
        },
        drift,
        ArrivalProcess::poisson(1_000_000.0, 7),
    );
    let tables = (0..NUM_TABLES)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

/// Serves the workload one batch at a time with a scheduler-style
/// `on_tick` before every launch (exactly the event-loop call site),
/// collecting every pooled value bitwise. Returns the flat bit stream
/// and the engine for post-hoc inspection.
fn serve_ticked(mut engine: UpdlrmEngine, workload: &Workload) -> (Vec<u32>, UpdlrmEngine) {
    let mut bits = Vec::new();
    let mut saw_in_flight = false;
    for (i, batch) in workload.batches.iter().enumerate() {
        engine.on_tick((i as u64 + 1) * TICK_NS).unwrap();
        saw_in_flight |= engine.migration_in_flight();
        engine
            .serve_stream(std::slice::from_ref(batch), |_, pooled, _| {
                for m in pooled {
                    bits.extend(m.as_slice().iter().map(|v| v.to_bits()));
                }
            })
            .unwrap();
    }
    if engine.config().replan.enabled() {
        assert!(
            saw_in_flight,
            "test must exercise serving while a migration is in flight"
        );
    }
    (bits, engine)
}

fn replan_config(strategy: PartitionStrategy) -> UpdlrmConfig {
    UpdlrmConfig::with_dpus(16, strategy)
        .with_replan(ReplanPolicy::Periodic { every_batches: 3 })
        .with_telemetry()
}

#[test]
fn serving_is_bit_identical_across_migration_boundaries() {
    let (tables, workload) = drifting_setup();
    for strategy in [
        PartitionStrategy::Uniform,
        PartitionStrategy::NonUniform,
        PartitionStrategy::Replicated,
        PartitionStrategy::CacheAware,
    ] {
        let static_engine = UpdlrmEngine::from_workload(
            UpdlrmConfig::with_dpus(16, strategy).with_telemetry(),
            &tables,
            &workload,
        )
        .unwrap();
        let replan_engine =
            UpdlrmEngine::from_workload(replan_config(strategy), &tables, &workload).unwrap();

        let (reference, _) = serve_ticked(static_engine, &workload);
        let (migrated, engine) = serve_ticked(replan_engine, &workload);

        assert_eq!(
            reference, migrated,
            "strategy {strategy}: pooled embeddings diverged across a migration"
        );

        // Anti-vacuous: the replanner must actually have replanned and
        // flipped at least once, or the equality above proves nothing.
        let drift = engine.metrics_snapshot().drift;
        assert!(
            drift.replans_triggered >= 1,
            "strategy {strategy}: no replan triggered ({drift:?})"
        );
        assert!(
            drift.migrations_completed >= 1,
            "strategy {strategy}: no migration flipped ({drift:?})"
        );
        assert!(drift.rows_moved > 0 && drift.migrated_bytes > 0);
        assert!(drift.migration_ns > 0.0);
        assert!(drift.last_flip_ns > 0);
    }
}

#[test]
fn uniform_replan_rebalances_toward_the_window() {
    // The planner deliberately upgrades Uniform to frequency-balanced
    // placement: after a migration the hot rows are spread out, which
    // shows up as replans that change the assignment (not skipped).
    let (tables, workload) = drifting_setup();
    let engine = UpdlrmEngine::from_workload(
        replan_config(PartitionStrategy::Uniform),
        &tables,
        &workload,
    )
    .unwrap();
    let (_, engine) = serve_ticked(engine, &workload);
    let drift = engine.metrics_snapshot().drift;
    assert!(drift.replans_triggered >= 1);
}

#[test]
fn mid_migration_snapshot_is_byte_deterministic() {
    // The fixed-seed mid-migration golden the CI byte-compares: two
    // identically seeded runs must produce byte-identical snapshot
    // JSON, and the snapshot must really be mid-migration (replan
    // charged, flip not yet recorded at capture time).
    let run = || {
        let (tables, workload) = drifting_setup();
        let engine = UpdlrmEngine::from_workload(
            replan_config(PartitionStrategy::NonUniform),
            &tables,
            &workload,
        )
        .unwrap();
        let (_, engine) = serve_ticked(engine, &workload);
        let snap: Snapshot = engine
            .drift_snapshot()
            .expect("first migration captured a snapshot")
            .clone();
        assert_eq!(snap.drift.replans_triggered, 1);
        assert_eq!(snap.drift.migrations_completed, 0, "snapshot is pre-flip");
        assert!(snap.drift.migration_ns > 0.0);
        serde::json::to_string_pretty(&snap)
    };
    assert_eq!(run(), run());
}

#[test]
fn imbalance_policy_triggers_only_past_threshold() {
    let (tables, workload) = drifting_setup();
    // An absurdly high threshold never fires; a low one does. Uniform
    // placement keeps the rotating hot set contiguous on a couple of
    // DPUs, so the window imbalance is large — the configuration the
    // policy exists to catch.
    for (threshold, expect_replans) in [(1e9, false), (1.05, true)] {
        let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform)
            .with_replan(ReplanPolicy::Imbalance {
                threshold,
                min_batches: 2,
            })
            .with_telemetry();
        let engine = UpdlrmEngine::from_workload(config, &tables, &workload).unwrap();
        let mut engine = engine;
        for (i, batch) in workload.batches.iter().enumerate() {
            engine.on_tick((i as u64 + 1) * TICK_NS).unwrap();
            engine
                .serve_stream(std::slice::from_ref(batch), |_, _, _| {})
                .unwrap();
        }
        let drift = engine.metrics_snapshot().drift;
        assert_eq!(
            drift.replans_triggered >= 1,
            expect_replans,
            "threshold {threshold}: {drift:?}"
        );
    }
}

#[test]
fn replan_off_allocates_no_drift_state() {
    let (tables, workload) = drifting_setup();
    let mut engine = UpdlrmEngine::from_workload(
        UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform).with_telemetry(),
        &tables,
        &workload,
    )
    .unwrap();
    engine.on_tick(u64::MAX).unwrap();
    assert!(!engine.migration_in_flight());
    assert!(engine.drift_snapshot().is_none());
    assert_eq!(engine.metrics_snapshot().drift, Default::default());
}
