//! Differential tests for the executed double-buffered serving path:
//! serving a stream of batches must be *functionally* indistinguishable
//! from back-to-back `run_batch` calls (bit-identical pooled
//! embeddings on integer tables, identical stage-2 kernel timing), and
//! its executed wall clock must equal the analytic schedule of
//! `pipeline.rs` exactly — not approximately.

use dlrm_model::EmbeddingTable;
use updlrm_core::{
    pipelined_wall_ns, sequential_wall_ns, PartitionStrategy, PipelineMode, UpdlrmConfig,
    UpdlrmEngine,
};
use workloads::{DatasetSpec, TraceConfig, Workload};

const DIM: usize = 32;

fn fig10_setup(num_tables: usize, batches: usize) -> (Vec<EmbeddingTable>, Workload) {
    // Fig. 10-style workload: the goodreads trace (scaled so tests stay
    // fast) over integer-valued tables, so pooled embeddings are exact.
    let spec = DatasetSpec::goodreads().scaled_down(5000);
    let workload = Workload::generate(
        &spec,
        TraceConfig {
            num_tables,
            num_batches: batches,
            ..TraceConfig::default()
        },
    );
    let tables = (0..num_tables)
        .map(|t| EmbeddingTable::random_integer_valued(spec.num_items, DIM, 3, t as u64).unwrap())
        .collect();
    (tables, workload)
}

fn engine(config: UpdlrmConfig, tables: &[EmbeddingTable], workload: &Workload) -> UpdlrmEngine {
    UpdlrmEngine::from_workload(config, tables, workload).unwrap()
}

#[test]
fn doublebuf_serve_matches_sequential_run_batch_bitwise() {
    let (tables, workload) = fig10_setup(2, 4);
    for strategy in [
        PartitionStrategy::Uniform,
        PartitionStrategy::NonUniform,
        PartitionStrategy::CacheAware,
    ] {
        let config = UpdlrmConfig::with_dpus(16, strategy);
        let mut seq = engine(config.clone(), &tables, &workload);
        let mut reference = Vec::new();
        for batch in &workload.batches {
            reference.push(seq.run_batch(batch).unwrap());
        }

        let mut piped = engine(
            config.with_pipeline_mode(PipelineMode::DoubleBuf),
            &tables,
            &workload,
        );
        let outcome = piped.serve(&workload.batches).unwrap();

        assert_eq!(outcome.pooled.len(), workload.batches.len());
        for (i, (ref_pooled, ref_bd)) in reference.iter().enumerate() {
            for (t, m) in outcome.pooled[i].iter().enumerate() {
                assert_eq!(
                    m.as_slice(),
                    ref_pooled[t].as_slice(),
                    "strategy {strategy}, batch {i}, table {t}"
                );
            }
            // Stage times are slot-independent: the same streams land at
            // a different (equally aligned) base, so every per-stage
            // number the breakdown carries is bit-equal to run_batch's.
            assert_eq!(
                &outcome.breakdowns[i], ref_bd,
                "strategy {strategy}, batch {i} breakdown"
            );
        }
    }
}

#[test]
fn doublebuf_wall_equals_analytic_schedule_exactly() {
    let (tables, workload) = fig10_setup(2, 6);
    let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware)
        .with_pipeline_mode(PipelineMode::DoubleBuf);
    let mut eng = engine(config, &tables, &workload);
    let outcome = eng.serve(&workload.batches).unwrap();

    let model = pipelined_wall_ns(&outcome.breakdowns);
    assert_eq!(
        outcome.report.wall_ns.to_bits(),
        model.to_bits(),
        "executed wall {} != analytic {}",
        outcome.report.wall_ns,
        model
    );
    // Pipelining must actually pay off relative to back-to-back.
    assert!(outcome.report.wall_ns <= sequential_wall_ns(&outcome.breakdowns));
    assert_eq!(outcome.report.mode, PipelineMode::DoubleBuf);
    assert_eq!(outcome.report.queue_depth, 2);
    assert_eq!(outcome.report.batches, workload.batches.len());
    assert!(outcome.report.throughput_qps > 0.0);
    assert!(outcome.report.p50_latency_ns > 0.0);
    assert!(outcome.report.p50_latency_ns <= outcome.report.p95_latency_ns);
    assert!(outcome.report.p95_latency_ns <= outcome.report.p99_latency_ns);
    assert!(outcome.report.p99_latency_ns <= outcome.report.wall_ns);
}

#[test]
fn sequential_serve_wall_equals_sequential_model_exactly() {
    let (tables, workload) = fig10_setup(2, 3);
    let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform);
    let mut eng = engine(config, &tables, &workload);
    let outcome = eng.serve(&workload.batches).unwrap();
    assert_eq!(outcome.report.mode, PipelineMode::Sequential);
    assert_eq!(outcome.report.queue_depth, 1);
    assert_eq!(
        outcome.report.wall_ns.to_bits(),
        sequential_wall_ns(&outcome.breakdowns).to_bits()
    );
}

#[test]
fn queue_depth_one_degenerates_to_sequential() {
    let (tables, workload) = fig10_setup(2, 3);
    let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform)
        .with_pipeline_mode(PipelineMode::DoubleBuf)
        .with_queue_depth(1);
    let mut eng = engine(config, &tables, &workload);
    let outcome = eng.serve(&workload.batches).unwrap();
    // Mode echoes the configuration, but the schedule is back-to-back.
    assert_eq!(outcome.report.mode, PipelineMode::DoubleBuf);
    assert_eq!(outcome.report.queue_depth, 1);
    assert_eq!(
        outcome.report.wall_ns.to_bits(),
        sequential_wall_ns(&outcome.breakdowns).to_bits()
    );
}

#[test]
fn queue_depth_zero_is_rejected() {
    let (tables, workload) = fig10_setup(2, 1);
    let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::Uniform).with_queue_depth(0);
    let mut eng = engine(config, &tables, &workload);
    let err = eng.serve(&workload.batches).unwrap_err();
    assert!(
        matches!(err, updlrm_core::CoreError::InvalidConfig(_)),
        "unexpected error: {err}"
    );
}

#[test]
fn serve_handles_empty_and_single_batch_streams() {
    let (tables, workload) = fig10_setup(2, 1);
    let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware)
        .with_pipeline_mode(PipelineMode::DoubleBuf);
    let mut eng = engine(config, &tables, &workload);

    let empty = eng.serve(&[]).unwrap();
    assert_eq!(empty.report.batches, 0);
    assert_eq!(empty.report.wall_ns, 0.0);
    assert_eq!(empty.report.throughput_qps, 0.0);

    let one = eng.serve(&workload.batches[..1]).unwrap();
    // A single batch cannot overlap with anything: its pipelined wall
    // is its sequential wall, and the latency is the whole schedule.
    assert_eq!(
        one.report.wall_ns.to_bits(),
        sequential_wall_ns(&one.breakdowns).to_bits()
    );
    assert_eq!(
        one.report.p50_latency_ns.to_bits(),
        one.report.wall_ns.to_bits()
    );
}

#[test]
fn repeated_serves_are_deterministic() {
    // Slot state from a previous serve must not leak into the next one.
    let (tables, workload) = fig10_setup(2, 3);
    let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware)
        .with_pipeline_mode(PipelineMode::DoubleBuf);
    let mut eng = engine(config, &tables, &workload);
    let first = eng.serve(&workload.batches).unwrap();
    let second = eng.serve(&workload.batches).unwrap();
    assert_eq!(first.pooled, second.pooled);
    assert_eq!(first.breakdowns, second.breakdowns);
    assert_eq!(first.report, second.report);
}
