//! Property tests locking down the placement planner (the tentpole's
//! proof obligations): over random catalogs, traffic profiles, tier
//! budgets and fleet shapes,
//!
//! 1. **placement totality** — every row lands in exactly one tier
//!    with consistent tier/partition/slot encodings
//!    ([`PlacementPlan::check_invariants`] plus independent counts);
//! 2. **capacity** — per-partition EMT budgets (replica block + cold
//!    rows), the host byte budget, `replicate_top`, and per-rank DPU
//!    counts are all respected;
//! 3. **balance** — whenever rank DPU capacity never forced the packer
//!    off the least-loaded rank (`!rank_capacity_binding`), predicted
//!    per-rank access mass is balanced within the published LPT bound:
//!    `max(rank_load) - min(rank_load) <= balance_bound`;
//! 4. **determinism** — the same inputs produce a byte-identical
//!    serialized plan, and save → load → save is byte-exact.
//!
//! Infeasible random inputs (a row too big for MRAM, more partitions
//! than fleet DPUs) must fail with `CapacityExceeded`, never panic.

use placement::{plan, Catalog, PlacementPlan, PlanError, PlannerConfig, TableDesc};
use proptest::prelude::*;
use proptest::TestRunner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upmem_sim::RankTopology;
use workloads::FreqProfile;

/// A skewed random profile over `num_items` items (hot head + random
/// tail), deterministic in `seed`.
fn random_profile(num_items: usize, seed: u64) -> FreqProfile {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = FreqProfile::new(num_items);
    for i in 0..num_items as u64 {
        let hot = num_items as u64 / (i + 1); // ~zipf head
        let noise = rng.random_range(0..4u64);
        for _ in 0..hot + noise {
            p.record(i);
        }
    }
    p
}

fn random_catalog(tables: usize, base_rows: usize, dim: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
    Catalog {
        tables: (0..tables)
            .map(|_| TableDesc {
                rows: base_rows + rng.random_range(0..base_rows.max(2)),
                dim,
            })
            .collect(),
    }
}

#[test]
fn random_catalogs_yield_valid_balanced_deterministic_plans() {
    let strategy = (
        1usize..5,     // tables
        2usize..400,   // base rows per table
        0usize..3,     // dim selector
        4usize..200,   // EMT capacity, in rows
        0usize..6_000, // host cache budget, bytes
        0usize..40,    // replicate_top
        1usize..5,     // ranks
        0u64..1_000,   // profile/catalog seed
    );
    let mut valid = 0u32;
    let mut infeasible = 0u32;
    TestRunner::new(ProptestConfig::with_cases(64)).run(
        &strategy,
        |(tables, base_rows, dim_sel, emt_rows, host_bytes, rep_top, ranks, seed)| {
            let dim = [4usize, 8, 16][dim_sel];
            let catalog = random_catalog(tables, base_rows, dim, seed);
            let profiles: Vec<FreqProfile> = catalog
                .tables
                .iter()
                .enumerate()
                // Profiles legitimately cover more items than rows.
                .map(|(t, d)| random_profile(d.rows + (t % 3) * 7, seed.wrapping_add(t as u64)))
                .collect();
            let config = PlannerConfig {
                topology: RankTopology {
                    nr_ranks: ranks,
                    dpus_per_rank: 48,
                },
                emt_capacity_bytes: emt_rows * dim * 4,
                host_cache_bytes: host_bytes,
                replicate_top: rep_top,
                seed,
                ..PlannerConfig::default()
            };

            let p = match plan(&catalog, &profiles, &config) {
                Ok(p) => p,
                Err(PlanError::CapacityExceeded { .. }) => {
                    // Infeasible shapes must fail loudly, not panic.
                    infeasible += 1;
                    return Ok(());
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
            };
            valid += 1;

            // 1 + 2. Structural invariants (row-exactly-once, slot
            // encodings, EMT/host/replica/fleet capacities).
            p.check_invariants()
                .map_err(|e| TestCaseError::fail(e.to_string()))?;

            // Independent tier accounting: tiers partition the rows.
            for (t, tp) in p.tables.iter().enumerate() {
                let cold: u64 = tp.rows_per_part.iter().map(|&n| n as u64).sum();
                prop_assert_eq!(
                    tp.host_rows.len() as u64 + tp.replicated_rows.len() as u64 + cold,
                    tp.rows as u64,
                    "table {} tiers must partition its rows",
                    t
                );
                prop_assert!(tp.replicated_rows.len() <= rep_top);
            }
            // Independent per-rank DPU accounting.
            let mut per_rank = vec![0usize; ranks];
            for tp in &p.tables {
                for &dpu in &tp.dpus {
                    per_rank[dpu / 48] += 1;
                }
            }
            prop_assert!(per_rank.iter().all(|&n| n <= 48));
            prop_assert_eq!(per_rank.iter().sum::<usize>(), p.dpus_used);

            // 3. LPT balance bound when capacity never interfered.
            if !p.rank_capacity_binding {
                let max = p.rank_load.iter().copied().fold(f64::MIN, f64::max);
                let min = p.rank_load.iter().copied().fold(f64::MAX, f64::min);
                prop_assert!(
                    max - min <= p.balance_bound + 1e-9,
                    "rank spread {} exceeds bound {} ({:?})",
                    max - min,
                    p.balance_bound,
                    p.rank_load
                );
            }

            // 4. Fixed inputs => byte-identical plan, and a parse
            // round-trip is lossless.
            let again = plan(&catalog, &profiles, &config).expect("same inputs stay feasible");
            prop_assert_eq!(p.to_json(), again.to_json());
            let reloaded = PlacementPlan::from_json(&p.to_json())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&reloaded, &p);
            prop_assert_eq!(reloaded.to_json(), p.to_json());
            Ok(())
        },
    );
    assert!(
        valid > 20,
        "only {valid} valid cases ({infeasible} infeasible)"
    );
}

/// Satellite-1 regression: the planner consumes profiles through the
/// shared in-range guard, so a profile whose hottest items lie beyond
/// the table's rows must neither panic nor leak foreign rows into any
/// tier (this exact shape used to panic the partitioners' inline
/// copy of the skip).
#[test]
fn planner_ignores_out_of_range_profile_items() {
    let rows = 64;
    let mut profile = FreqProfile::new(rows + 32);
    // Items 64..96 are far hotter than anything in range.
    for i in rows as u64..(rows + 32) as u64 {
        for _ in 0..10_000 {
            profile.record(i);
        }
    }
    for i in 0..rows as u64 {
        for _ in 0..(rows as u64 - i) {
            profile.record(i);
        }
    }
    let catalog = Catalog::homogeneous(1, rows, 8);
    let config = PlannerConfig {
        emt_capacity_bytes: 16 * 8 * 4, // 16 rows per partition
        host_cache_bytes: 4 * 8 * 4,    // 4 host rows
        replicate_top: 8,
        ..PlannerConfig::default()
    };
    let p = plan(&catalog, &[profile], &config).expect("plan builds");
    p.check_invariants().expect("invariants hold");
    let tp = &p.tables[0];
    assert!(tp.host_rows.iter().all(|&r| (r as usize) < rows));
    assert!(tp.replicated_rows.iter().all(|&r| (r as usize) < rows));
    // The hottest *in-range* rows won the host tier despite the
    // foreign items dominating the raw frequency order.
    assert_eq!(tp.host_rows, vec![0, 1, 2, 3]);
    assert_eq!(tp.tier_of_row.len(), rows);
}

#[test]
fn infeasible_shapes_fail_with_capacity_errors() {
    // One row bigger than a whole partition's EMT budget.
    let catalog = Catalog::homogeneous(1, 8, 64);
    let profile = FreqProfile::new(8);
    let config = PlannerConfig {
        emt_capacity_bytes: 64, // a quarter of one 256 B row
        host_cache_bytes: 0,
        replicate_top: 0,
        ..PlannerConfig::default()
    };
    match plan(&catalog, std::slice::from_ref(&profile), &config) {
        Err(PlanError::CapacityExceeded { .. }) => {}
        other => panic!("expected CapacityExceeded, got {other:?}"),
    }

    // More partitions than the fleet has DPUs.
    let catalog = Catalog::homogeneous(4, 100, 8);
    let profiles = vec![FreqProfile::new(100); 4];
    let config = PlannerConfig {
        topology: RankTopology {
            nr_ranks: 2,
            dpus_per_rank: 3,
        },
        emt_capacity_bytes: 10 * 8 * 4, // 10 rows/part -> 10 parts/table
        host_cache_bytes: 0,
        replicate_top: 0,
        ..PlannerConfig::default()
    };
    match plan(&catalog, &profiles, &config) {
        Err(PlanError::CapacityExceeded {
            what,
            required,
            available,
        }) => {
            assert!(what.contains("DPU"), "{what}");
            assert_eq!((required, available), (40, 6));
        }
        other => panic!("expected fleet CapacityExceeded, got {other:?}"),
    }
}

#[test]
fn invalid_inputs_rejected() {
    let profile = FreqProfile::new(8);
    let cfg = PlannerConfig::default();
    assert!(matches!(
        plan(&Catalog { tables: vec![] }, &[], &cfg),
        Err(PlanError::InvalidConfig(_))
    ));
    // Profile smaller than the table.
    assert!(matches!(
        plan(
            &Catalog::homogeneous(1, 16, 4),
            std::slice::from_ref(&profile),
            &cfg
        ),
        Err(PlanError::InvalidConfig(_))
    ));
    // Profile count mismatch.
    assert!(matches!(
        plan(
            &Catalog::homogeneous(2, 8, 4),
            std::slice::from_ref(&profile),
            &cfg
        ),
        Err(PlanError::InvalidConfig(_))
    ));
    // Zero topology.
    let zero = PlannerConfig {
        topology: RankTopology {
            nr_ranks: 0,
            dpus_per_rank: 8,
        },
        ..PlannerConfig::default()
    };
    assert!(matches!(
        plan(&Catalog::homogeneous(1, 8, 4), &[profile], &zero),
        Err(PlanError::InvalidConfig(_))
    ));
}

/// The cost estimates must show the tiering knee: at small table sizes
/// the host probe overhead makes pure MRAM competitive, while at
/// 10-100x scale the pure-MRAM gather wall (every partition stages the
/// whole batch) grows linearly and tiering wins decisively.
#[test]
fn cost_estimate_crosses_over_at_scale() {
    let dim = 32;
    let mk = |rows: usize, seed: u64| {
        let catalog = Catalog::homogeneous(4, rows, dim);
        let profiles: Vec<FreqProfile> = (0..4).map(|t| random_profile(rows, seed + t)).collect();
        let config = PlannerConfig {
            topology: RankTopology {
                nr_ranks: 8,
                dpus_per_rank: 64,
            },
            emt_capacity_bytes: 2_000 * dim * 4,
            host_cache_bytes: 64 * 1024,
            ..PlannerConfig::default()
        };
        plan(&catalog, &profiles, &config).expect("feasible")
    };
    let small = mk(2_000, 1);
    let large = mk(200_000, 1); // 100x
    assert!(
        large.est.tiered_batch_ns < large.est.mram_batch_ns,
        "tiering must win at 100x scale: tiered {} vs mram {}",
        large.est.tiered_batch_ns,
        large.est.mram_batch_ns
    );
    // The tiered advantage must *grow* with scale (the knee exists).
    let small_ratio = small.est.mram_batch_ns / small.est.tiered_batch_ns;
    let large_ratio = large.est.mram_batch_ns / large.est.tiered_batch_ns;
    assert!(
        large_ratio > small_ratio,
        "advantage must grow with scale: {small_ratio} -> {large_ratio}"
    );
    // And the mechanism is partition-touch saturation: the tiered plan
    // has hundreds of partitions but a batch only ever touches a
    // bounded, rank-count-capped subset. (The tiered plan can hold
    // slightly *more* partitions than pure MRAM — every partition
    // donates EMT slots to the replica block — which makes the win
    // coming from touch saturation, not partition count.)
    assert!(large.est.parts_total > large.est.ranks_touched);
}
