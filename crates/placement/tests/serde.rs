//! Plan serialization contract (satellite 3, crate half): save → load
//! → save is byte-exact, and a plan written by a foreign schema
//! version is rejected with [`PlanError::SchemaVersion`] before any
//! field-level decoding — the CLI maps that error to exit 2.

use placement::{plan, Catalog, PlacementPlan, PlanError, PlannerConfig, PLAN_SCHEMA_VERSION};
use workloads::FreqProfile;

fn sample_plan() -> PlacementPlan {
    let catalog = Catalog::homogeneous(2, 300, 8);
    let profiles: Vec<FreqProfile> = (0..2)
        .map(|t| {
            let mut p = FreqProfile::new(310); // wider than the table
            for i in 0..310u64 {
                for _ in 0..(310 - i) / 3 {
                    p.record(i);
                }
            }
            for _ in 0..t {
                p.record(0);
            }
            p
        })
        .collect();
    let config = PlannerConfig {
        emt_capacity_bytes: 64 * 8 * 4,
        host_cache_bytes: 2 * 16 * 8 * 4,
        replicate_top: 16,
        ..PlannerConfig::default()
    };
    plan(&catalog, &profiles, &config).expect("sample plan builds")
}

#[test]
fn save_load_save_is_byte_exact() {
    let p = sample_plan();
    let first = p.to_json();
    let loaded = PlacementPlan::from_json(&first).expect("own output parses");
    assert_eq!(loaded, p, "load must be lossless");
    let second = loaded.to_json();
    assert_eq!(first, second, "save -> load -> save must be byte-exact");
}

#[test]
fn foreign_schema_version_is_rejected_before_field_decoding() {
    let p = sample_plan();
    let good = p.to_json();
    let needle = format!("\"schema_version\": {PLAN_SCHEMA_VERSION}");
    assert!(good.contains(&needle), "fixture must carry the version");
    // Doctor only the version; every other field stays valid.
    let doctored = good.replace(&needle, "\"schema_version\": 99");
    match PlacementPlan::from_json(&doctored) {
        Err(PlanError::SchemaVersion { found, expected }) => {
            assert_eq!((found, expected), (99, PLAN_SCHEMA_VERSION));
        }
        other => panic!("expected SchemaVersion error, got {other:?}"),
    }
    // Doctor the version *and* break a field: the version check must
    // still win (it runs before the typed decode).
    let both = doctored.replace("\"rank_load\"", "\"rank_lead\"");
    assert!(matches!(
        PlacementPlan::from_json(&both),
        Err(PlanError::SchemaVersion { found: 99, .. })
    ));
    // Garbage and a missing version each fail as Parse, not a panic.
    assert!(matches!(
        PlacementPlan::from_json("{nope"),
        Err(PlanError::Parse(_))
    ));
    let missing = good.replace(&needle, "\"schema_version\": \"one\"");
    assert!(matches!(
        PlacementPlan::from_json(&missing),
        Err(PlanError::Parse(_))
    ));
}

#[test]
fn error_messages_name_the_versions() {
    let e = PlanError::SchemaVersion {
        found: 9,
        expected: PLAN_SCHEMA_VERSION,
    };
    let msg = e.to_string();
    assert!(msg.contains("schema v9"), "{msg}");
    assert!(
        msg.contains(&format!("reads v{PLAN_SCHEMA_VERSION}")),
        "{msg}"
    );
}
