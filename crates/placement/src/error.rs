//! Planner error type.

/// Errors produced by the placement planner and plan (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Inconsistent planner inputs (empty catalog, zero topology,
    /// profile/table mismatches, ...).
    InvalidConfig(String),
    /// A tier or rank budget cannot hold what the plan requires.
    CapacityExceeded {
        /// Which budget overflowed (e.g. "fleet DPUs", "cold EMT rows").
        what: String,
        /// Units required.
        required: usize,
        /// Units available.
        available: usize,
    },
    /// A serialized plan carries a schema version this build cannot
    /// read.
    SchemaVersion {
        /// Version found in the file.
        found: u64,
        /// Version this build reads.
        expected: u64,
    },
    /// A serialized plan failed to parse.
    Parse(String),
    /// A plan violates its own invariants (row placed twice, slot
    /// collision, capacity overflow, ...).
    Invariant(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidConfig(msg) => write!(f, "invalid planner configuration: {msg}"),
            PlanError::CapacityExceeded {
                what,
                required,
                available,
            } => write!(
                f,
                "capacity exceeded for {what}: requires {required}, only {available} available"
            ),
            PlanError::SchemaVersion { found, expected } => write!(
                f,
                "placement plan has schema v{found}, this build reads v{expected}"
            ),
            PlanError::Parse(msg) => write!(f, "malformed placement plan: {msg}"),
            PlanError::Invariant(msg) => write!(f, "placement plan invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PlanError>;
