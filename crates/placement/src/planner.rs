//! The tiering + rank-sharding algorithm behind [`plan`].
//!
//! Per table, rows are split by access frequency into three tiers:
//! the hottest rows go to a host-DRAM cache (per-table byte budget),
//! the next-hottest into a replica block copied to every cold
//! partition, and the remainder into cold MRAM partitions packed
//! greedily by predicted load. Partitions from all tables are then
//! sharded across the fleet's ranks with a longest-processing-time
//! greedy that keeps per-rank access mass balanced whenever rank DPU
//! capacity is not binding.

use std::cmp::Ordering;

use crate::error::{PlanError, Result};
use crate::plan::{
    Catalog, PlacementPlan, PlanCostEstimate, PlanProvenance, PlannerConfig, TablePlacement,
    HOST_ROW_PART, PLAN_SCHEMA_VERSION, REPLICATED_ROW_PART, TIER_COLD, TIER_HOST, TIER_REPLICATED,
};
use upmem_sim::arch::DMA_MAX_TRANSFER;
use upmem_sim::{CostModel, Cycles};
use workloads::FreqProfile;

/// Builds a deterministic tiered placement of `catalog` over
/// `config.topology`, driven by per-table traffic `profiles`.
///
/// The result embeds a default [`PlanProvenance`]; callers that know
/// how the workload was generated (the CLI) overwrite it before
/// serializing.
///
/// # Errors
///
/// [`PlanError::InvalidConfig`] for inconsistent inputs (empty catalog,
/// zero topology, profile/table mismatches, zero-sized tables),
/// [`PlanError::CapacityExceeded`] when a table's rows cannot fit one
/// EMT partition or the catalog needs more partitions than the fleet
/// has DPUs.
pub fn plan(
    catalog: &Catalog,
    profiles: &[FreqProfile],
    config: &PlannerConfig,
) -> Result<PlacementPlan> {
    validate(catalog, profiles, config)?;

    let num_tables = catalog.tables.len();
    let host_budget_per_table = config.host_cache_bytes / num_tables;
    let mut tables = Vec::with_capacity(num_tables);
    for (desc, profile) in catalog.tables.iter().zip(profiles) {
        tables.push(place_table(
            desc.rows,
            desc.dim,
            profile,
            host_budget_per_table,
            config,
        )?);
    }

    let packing = pack_ranks(&mut tables, config)?;
    let est = estimate(catalog, profiles, &tables, config);

    let plan = PlacementPlan {
        schema_version: PLAN_SCHEMA_VERSION,
        config: config.clone(),
        provenance: PlanProvenance::default(),
        tables,
        dpus_used: packing.dpus_used,
        rank_load: packing.rank_load,
        rank_rows: packing.rank_rows,
        balance_bound: packing.balance_bound,
        rank_capacity_binding: packing.rank_capacity_binding,
        est,
    };
    plan.check_invariants()?;
    Ok(plan)
}

fn validate(catalog: &Catalog, profiles: &[FreqProfile], config: &PlannerConfig) -> Result<()> {
    let bad = |msg: String| Err(PlanError::InvalidConfig(msg));
    if catalog.tables.is_empty() {
        return bad("catalog has no tables".into());
    }
    if profiles.len() != catalog.tables.len() {
        return bad(format!(
            "{} profiles for {} tables",
            profiles.len(),
            catalog.tables.len()
        ));
    }
    if config.topology.nr_ranks == 0 || config.topology.dpus_per_rank == 0 {
        return bad("fleet topology must have at least one rank and one DPU per rank".into());
    }
    // NaN must fail too, so compare through the negation.
    if config.batch_hint == 0
        || config.avg_reduction_hint.partial_cmp(&0.0) != Some(Ordering::Greater)
    {
        return bad("batch_hint and avg_reduction_hint must be positive".into());
    }
    for (t, (desc, profile)) in catalog.tables.iter().zip(profiles).enumerate() {
        if desc.rows == 0 || desc.dim == 0 {
            return bad(format!("table {t} has zero rows or dim"));
        }
        if profile.num_items() < desc.rows {
            return bad(format!(
                "table {t}: profile covers {} items, table has {} rows",
                profile.num_items(),
                desc.rows
            ));
        }
    }
    Ok(())
}

/// Per-row access mass, uniform when the in-range trace is empty so the
/// greedy packer still spreads rows.
fn row_mass(profile: &FreqProfile, rows: usize) -> Vec<f64> {
    let in_range: u64 = profile.counts()[..rows.min(profile.num_items())]
        .iter()
        .sum();
    if in_range == 0 {
        return vec![1.0 / rows as f64; rows];
    }
    (0..rows as u64)
        .map(|r| profile.count(r) as f64 / in_range as f64)
        .collect()
}

fn place_table(
    rows: usize,
    dim: usize,
    profile: &FreqProfile,
    host_budget_bytes: usize,
    config: &PlannerConfig,
) -> Result<TablePlacement> {
    let row_bytes = dim * 4;
    let mass = row_mass(profile, rows);
    // The satellite-1 shared guard: hottest *in-range* items first.
    let by_freq = profile.items_by_frequency_in_range(rows);
    debug_assert_eq!(by_freq.len(), rows);

    let host_cap = (host_budget_bytes / row_bytes).min(rows);
    let host_rows: Vec<u64> = by_freq[..host_cap].to_vec();
    let replicas = config.replicate_top.min(rows - host_cap);
    let replicated_rows: Vec<u64> = by_freq[host_cap..host_cap + replicas].to_vec();
    let cold = &by_freq[host_cap + replicas..];

    let emt_rows_cap = config.emt_capacity_bytes / row_bytes;
    let local_cap = emt_rows_cap.saturating_sub(replicas);
    if local_cap == 0 && !cold.is_empty() {
        return Err(PlanError::CapacityExceeded {
            what: format!("cold EMT rows ({row_bytes} B rows, {replicas} replicas)"),
            required: replicas + 1,
            available: emt_rows_cap,
        });
    }
    let parts = if cold.is_empty() {
        1
    } else {
        cold.len().div_ceil(local_cap)
    };

    let mut tier_of_row = vec![0u8; rows];
    let mut part_of_row = vec![0u32; rows];
    let mut slot_of_row = vec![0u32; rows];
    let mut host_mass = 0.0;
    for (s, &r) in host_rows.iter().enumerate() {
        tier_of_row[r as usize] = TIER_HOST;
        part_of_row[r as usize] = HOST_ROW_PART;
        slot_of_row[r as usize] = s as u32;
        host_mass += mass[r as usize];
    }
    let mut replica_mass = 0.0;
    for (s, &r) in replicated_rows.iter().enumerate() {
        tier_of_row[r as usize] = TIER_REPLICATED;
        part_of_row[r as usize] = REPLICATED_ROW_PART;
        slot_of_row[r as usize] = s as u32;
        replica_mass += mass[r as usize];
    }

    // Greedy least-loaded cold packing, hottest rows first, ties toward
    // the lowest partition index for determinism.
    let mut rows_per_part = vec![0u32; parts];
    let mut part_load = vec![0.0f64; parts];
    for &r in cold {
        let mut best = usize::MAX;
        for p in 0..parts {
            if (rows_per_part[p] as usize) < local_cap
                && (best == usize::MAX || part_load[p] < part_load[best])
            {
                best = p;
            }
        }
        debug_assert!(best != usize::MAX, "parts sized to hold every cold row");
        tier_of_row[r as usize] = TIER_COLD;
        part_of_row[r as usize] = best as u32;
        slot_of_row[r as usize] = (replicas + rows_per_part[best] as usize) as u32;
        rows_per_part[best] += 1;
        part_load[best] += mass[r as usize];
    }
    // Replica refs route per sample (`sample % parts` in the tiered
    // engine), spreading the replicated mass evenly in expectation.
    if replica_mass > 0.0 {
        let share = replica_mass / parts as f64;
        for l in &mut part_load {
            *l += share;
        }
    }

    Ok(TablePlacement {
        rows,
        dim,
        parts,
        dpus: Vec::new(), // filled by pack_ranks
        tier_of_row,
        part_of_row,
        slot_of_row,
        host_rows,
        replicated_rows,
        rows_per_part,
        part_load,
        host_mass,
        replica_mass,
    })
}

struct RankPacking {
    dpus_used: usize,
    rank_load: Vec<f64>,
    rank_rows: Vec<u64>,
    balance_bound: f64,
    rank_capacity_binding: bool,
}

/// Longest-processing-time greedy over all tables' partitions: heaviest
/// partition first, each to the least-loaded rank with a free DPU.
fn pack_ranks(tables: &mut [TablePlacement], config: &PlannerConfig) -> Result<RankPacking> {
    let topo = config.topology;
    let parts_total: usize = tables.iter().map(|t| t.parts).sum();
    if parts_total > topo.nr_dpus() {
        return Err(PlanError::CapacityExceeded {
            what: "fleet DPUs".into(),
            required: parts_total,
            available: topo.nr_dpus(),
        });
    }

    let mut items: Vec<(f64, usize, usize)> = Vec::with_capacity(parts_total);
    for (t, tp) in tables.iter_mut().enumerate() {
        tp.dpus = vec![usize::MAX; tp.parts];
        for p in 0..tp.parts {
            items.push((tp.part_load[p], t, p));
        }
    }
    // Descending load; ties by (table, part) so the order — and thus the
    // plan — is deterministic despite float loads.
    items.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("finite loads")
            .then((a.1, a.2).cmp(&(b.1, b.2)))
    });

    let mut rank_load = vec![0.0f64; topo.nr_ranks];
    let mut rank_rows = vec![0u64; topo.nr_ranks];
    let mut used = vec![0usize; topo.nr_ranks];
    let mut binding = false;
    let balance_bound = items.first().map(|i| i.0).unwrap_or(0.0);
    for &(load, t, p) in &items {
        let global_min = rank_load.iter().copied().fold(f64::INFINITY, f64::min);
        let mut best = usize::MAX;
        for r in 0..topo.nr_ranks {
            if used[r] < topo.dpus_per_rank
                && (best == usize::MAX || rank_load[r] < rank_load[best])
            {
                best = r;
            }
        }
        debug_assert!(best != usize::MAX, "parts_total <= nr_dpus");
        if rank_load[best] > global_min {
            // A strictly less-loaded rank existed but was out of DPUs:
            // the LPT balance bound no longer applies.
            binding = true;
        }
        tables[t].dpus[p] = best * topo.dpus_per_rank + used[best];
        used[best] += 1;
        rank_load[best] += load;
        rank_rows[best] +=
            tables[t].replicated_rows.len() as u64 + tables[t].rows_per_part[p] as u64;
    }

    Ok(RankPacking {
        dpus_used: parts_total,
        rank_load,
        rank_rows,
        balance_bound,
        rank_capacity_binding: binding,
    })
}

/// Deterministic per-tenant DPU rotations that interleave N tenants'
/// table partitions across one shared fleet of `fleet_dpus` DPUs:
/// tenant `i`'s partition `p` lands on physical DPU
/// `(p + offsets[i]) % fleet_dpus`.
///
/// Each tenant's partitioner numbers its partitions from DPU 0, so
/// with no rotation every tenant's partition 0 — usually the hottest,
/// since row 0 starts the Zipf head — stacks on the *same* physical
/// DPU and the tenants' load imbalances compound. Spreading the
/// origins evenly (`offsets[i] = i * fleet_dpus / n`) decorrelates
/// them: the hot partitions land `fleet_dpus / n` DPUs apart, so the
/// fleet-aggregate per-DPU load flattens without touching any
/// tenant-local placement (the rotation is pure relabeling, which is
/// also why it cannot change any tenant's modeled service time).
///
/// # Panics
///
/// Panics when `num_tenants` is 0 or `fleet_dpus` is 0.
pub fn interleaved_offsets(num_tenants: usize, fleet_dpus: usize) -> Vec<usize> {
    assert!(num_tenants > 0, "need at least one tenant");
    assert!(fleet_dpus > 0, "need at least one DPU");
    (0..num_tenants)
        .map(|i| i * fleet_dpus / num_tenants % fleet_dpus)
        .collect()
}

/// Nanoseconds to DMA one `row_bytes` row MRAM→WRAM, split into
/// 2048-byte engine transfers.
fn row_dma_ns(cost: &CostModel, row_bytes: usize) -> f64 {
    let full = row_bytes / DMA_MAX_TRANSFER;
    let rem = row_bytes % DMA_MAX_TRANSFER;
    let mut ns = full as f64 * cost.dma_nanos(DMA_MAX_TRANSFER);
    if rem > 0 {
        ns += cost.dma_nanos(rem);
    }
    ns
}

/// Analytic per-batch cost of the tiered plan vs an untiered pure-MRAM
/// sharding of the same catalog on the same fleet. DESIGN.md §4.9
/// documents the deliberate divergences from the simulated engine
/// (expected-partitions-touched vs the engine's all-partition gather,
/// no pipelining, no stream padding).
fn estimate(
    catalog: &Catalog,
    profiles: &[FreqProfile],
    tables: &[TablePlacement],
    config: &PlannerConfig,
) -> PlanCostEstimate {
    let cost = &config.cost;
    let topo = config.topology;
    let b = config.batch_hint as f64;
    let refs_per_table = b * config.avg_reduction_hint;
    let total_refs = refs_per_table * catalog.tables.len() as f64;

    // ---- tiered plan ----
    let mut host_mass = 0.0;
    let mut replica_mass = 0.0;
    let mut parts_touched_total = 0usize;
    let mut tiered_gather_bytes = 0.0;
    let mut tiered_scatter_bytes = 0.0;
    let mut tiered_launch_ns = 0.0f64;
    let mut host_combine_adds = 0.0;
    let mut parts_total = 0usize;
    for tp in tables {
        host_mass += tp.host_mass / tables.len() as f64;
        replica_mass += tp.replica_mass / tables.len() as f64;
        parts_total += tp.parts;
        let cold_mass = (1.0 - tp.host_mass - tp.replica_mass).max(0.0);
        let cold_refs = (refs_per_table * cold_mass).ceil() as usize;
        // Replica refs cluster per sample (one partition per sample),
        // cold refs can each touch a distinct partition; the host tier
        // absorbs the rest. This is where the tiered estimate
        // saturates while the pure-MRAM baseline keeps growing.
        let replica_parts = if tp.replica_mass > 0.0 {
            tp.parts.min(config.batch_hint)
        } else {
            0
        };
        let touched = tp.parts.min(replica_parts + cold_refs);
        parts_touched_total += touched;
        let row_bytes = (tp.dim * 4) as f64;
        tiered_gather_bytes += touched as f64 * b * row_bytes;
        let pim_refs = refs_per_table * (tp.replica_mass + cold_mass);
        tiered_scatter_bytes += pim_refs * 4.0;
        // Kernel wall: the hottest partition's expected refs.
        let max_load = tp.part_load.iter().copied().fold(0.0, f64::max);
        let per_ref = row_dma_ns(cost, tp.dim * 4)
            + cost.cycles_to_ns(Cycles(tp.dim as u64 * cost.fp32_add_cycles));
        tiered_launch_ns = tiered_launch_ns.max(refs_per_table * max_load * per_ref);
        host_combine_adds += refs_per_table * tp.host_mass * tp.dim as f64;
    }
    let ranks_touched = parts_touched_total.min(topo.nr_ranks).max(1);
    let rank_ns = |ranks: usize| config.rank_cost.rank_base_ns * ranks as f64;
    let tiered_batch_ns = config.host_probe_ns * total_refs
        + host_combine_adds * config.host_combine_ns_per_add
        + cost.host_transfer_base_ns
        + cost.host_to_mram_ns(tiered_scatter_bytes as usize)
        + rank_ns(ranks_touched)
        + tiered_launch_ns
        + config.rank_cost.rank_launch_ns * ranks_touched as f64
        + cost.host_transfer_base_ns
        + cost.mram_to_host_ns(tiered_gather_bytes as usize)
        + rank_ns(ranks_touched);

    // ---- pure-MRAM baseline: contiguous untiered sharding ----
    let mut mram_parts_total = 0usize;
    let mut mram_gather_bytes = 0.0;
    let mut mram_launch_ns = 0.0f64;
    for (desc, profile) in catalog.tables.iter().zip(profiles) {
        let row_bytes = desc.dim * 4;
        let cap = (config.emt_capacity_bytes / row_bytes).max(1);
        let parts = desc.rows.div_ceil(cap);
        mram_parts_total += parts;
        // Every partition stages output for the whole batch, and the
        // untiered engine gathers them all.
        mram_gather_bytes += parts as f64 * b * row_bytes as f64;
        // Contiguous uniform sharding concentrates hot rows: the wall
        // is the hottest chunk's mass.
        let mass = row_mass(profile, desc.rows);
        let max_chunk: f64 = mass
            .chunks(cap)
            .map(|c| c.iter().sum::<f64>())
            .fold(0.0, f64::max);
        let per_ref = row_dma_ns(cost, row_bytes)
            + cost.cycles_to_ns(Cycles(desc.dim as u64 * cost.fp32_add_cycles));
        mram_launch_ns = mram_launch_ns.max(refs_per_table * max_chunk * per_ref);
    }
    let mram_ranks_touched = mram_parts_total.min(topo.nr_ranks).max(1);
    let mram_batch_ns = cost.host_transfer_base_ns
        + cost.host_to_mram_ns((total_refs * 4.0) as usize)
        + rank_ns(mram_ranks_touched)
        + mram_launch_ns
        + config.rank_cost.rank_launch_ns * mram_ranks_touched as f64
        + cost.host_transfer_base_ns
        + cost.mram_to_host_ns(mram_gather_bytes as usize)
        + rank_ns(mram_ranks_touched);

    let lookups = total_refs.max(1.0);
    PlanCostEstimate {
        tiered_batch_ns,
        mram_batch_ns,
        tiered_ns_per_lookup: tiered_batch_ns / lookups,
        mram_ns_per_lookup: mram_batch_ns / lookups,
        host_mass,
        replica_mass,
        parts_total,
        mram_parts_total,
        ranks_touched,
        mram_ranks_touched,
    }
}

#[cfg(test)]
mod tests {
    use super::interleaved_offsets;

    #[test]
    fn interleaved_offsets_spread_origins_and_decorrelate_hot_load() {
        assert_eq!(interleaved_offsets(1, 64), vec![0]);
        assert_eq!(interleaved_offsets(4, 64), vec![0, 16, 32, 48]);
        assert_eq!(interleaved_offsets(3, 8), vec![0, 2, 5]);
        // More tenants than DPUs still yields valid in-range offsets.
        let off = interleaved_offsets(10, 4);
        assert!(off.iter().all(|&o| o < 4));

        // Decorrelation: three tenants with identical skewed per-DPU
        // loads (hot partition 0). Stacked at offset 0 the hot loads
        // compound; rotated, the fleet aggregate flattens.
        let fleet = 12usize;
        let tenant_load: Vec<u64> = (0..fleet).map(|d| if d == 0 { 90 } else { 10 }).collect();
        let aggregate = |offsets: &[usize]| -> Vec<u64> {
            let mut agg = vec![0u64; fleet];
            for &o in offsets {
                for (d, &l) in tenant_load.iter().enumerate() {
                    agg[(d + o) % fleet] += l;
                }
            }
            agg
        };
        let imbalance = |agg: &[u64]| -> f64 {
            let max = *agg.iter().max().unwrap() as f64;
            let mean = agg.iter().sum::<u64>() as f64 / agg.len() as f64;
            max / mean
        };
        let stacked = imbalance(&aggregate(&[0; 3]));
        let interleaved = imbalance(&aggregate(&interleaved_offsets(3, fleet)));
        assert!(
            interleaved < stacked,
            "interleaving must flatten the aggregate: {interleaved} vs {stacked}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn interleaved_offsets_reject_zero_tenants() {
        interleaved_offsets(0, 8);
    }
}
