//! # placement — tiered multi-rank placement planning for UpDLRM
//!
//! UpDLRM's partitioners (Algorithm 1) decide how one table's rows
//! spread over the DPUs of a single rank. This crate plans one level
//! up: given a Table-1-style [`Catalog`] and per-table traffic
//! profiles, it emits a deterministic, serializable [`PlacementPlan`]
//! that
//!
//! 1. **tiers** rows by access frequency — a host-DRAM hot cache, a
//!    replicated hot shard copied into every partition, and cold MRAM
//!    partitions — and
//! 2. **shards** the resulting partitions across a multi-rank
//!    [`upmem_sim::Fleet`], balancing predicted access mass per rank
//!    under per-rank DPU capacity.
//!
//! The plan carries analytic tiered-vs-pure-MRAM cost estimates (the
//! tiering knee of `BENCH_placement.json`) and is consumed by
//! `updlrm_core::TieredEngine`, which must produce bit-identical
//! pooled embeddings to the untiered single-rank engine under *any*
//! valid plan — the differential suite in `updlrm-core` enforces that.
//!
//! ## Example
//!
//! ```rust
//! use placement::{plan, Catalog, PlannerConfig};
//! use workloads::FreqProfile;
//!
//! let catalog = Catalog::homogeneous(2, 500, 8);
//! let mut profiles = vec![FreqProfile::new(500); 2];
//! for p in &mut profiles {
//!     for i in 0..500u64 {
//!         for _ in 0..(500 - i) / 50 {
//!             p.record(i);
//!         }
//!     }
//! }
//! let cfg = PlannerConfig {
//!     emt_capacity_bytes: 100 * 8 * 4, // 100 rows per partition
//!     ..PlannerConfig::default()
//! };
//! let plan = plan(&catalog, &profiles, &cfg).unwrap();
//! plan.check_invariants().unwrap();
//! let reloaded = placement::PlacementPlan::from_json(&plan.to_json()).unwrap();
//! assert_eq!(reloaded, plan);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod plan;
pub mod planner;

pub use error::{PlanError, Result};
pub use plan::{
    Catalog, PlacementPlan, PlanCostEstimate, PlanProvenance, PlannerConfig, TableDesc,
    TablePlacement, HOST_ROW_PART, PLAN_SCHEMA_VERSION, REPLICATED_ROW_PART, TIER_COLD, TIER_HOST,
    TIER_REPLICATED,
};
pub use planner::{interleaved_offsets, plan};
