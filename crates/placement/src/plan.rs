//! The serializable [`PlacementPlan`] and its invariant checker.

use crate::error::{PlanError, Result};
use upmem_sim::{CostModel, RankCostModel, RankTopology};

/// Schema version written into every serialized plan. Bump on any
/// incompatible change; loaders reject foreign versions (exit 2 at the
/// CLI, mirroring the telemetry snapshot contract).
pub const PLAN_SCHEMA_VERSION: u64 = 1;

/// Host-cache tier tag in [`TablePlacement::tier_of_row`].
pub const TIER_HOST: u8 = 0;
/// Replicated-hot-shard tier tag.
pub const TIER_REPLICATED: u8 = 1;
/// Cold MRAM tier tag.
pub const TIER_COLD: u8 = 2;

/// Sentinel partition for rows replicated into every partition of a
/// table (same value as `updlrm_core::partition::REPLICATED_ROW_PART`).
pub const REPLICATED_ROW_PART: u32 = u32::MAX;
/// Sentinel partition for rows resident in the host-DRAM cache tier.
pub const HOST_ROW_PART: u32 = u32::MAX - 1;

/// One embedding table's shape in the catalog (Table 1 style).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TableDesc {
    /// Rows (items) in the table.
    pub rows: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl TableDesc {
    /// Bytes of one f32 row.
    pub fn row_bytes(&self) -> usize {
        self.dim * 4
    }
}

/// A Table-1-style catalog: the tables the planner must place.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Catalog {
    /// Table shapes, in engine table order.
    pub tables: Vec<TableDesc>,
}

impl Catalog {
    /// A catalog of `tables` tables of identical `rows x dim` shape.
    pub fn homogeneous(tables: usize, rows: usize, dim: usize) -> Catalog {
        Catalog {
            tables: vec![TableDesc { rows, dim }; tables],
        }
    }

    /// Total f32 storage across all tables.
    pub fn total_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.rows * t.row_bytes()).sum()
    }
}

/// Planner inputs beyond the catalog and traffic profiles.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlannerConfig {
    /// Fleet shape to shard across.
    pub topology: RankTopology,
    /// Per-DPU MRAM bytes available for the EMT region (replica block +
    /// cold rows).
    pub emt_capacity_bytes: usize,
    /// Total host-DRAM bytes for the hot-cache tier, split evenly
    /// across tables.
    pub host_cache_bytes: usize,
    /// Hottest non-host rows replicated into every partition, per table.
    pub replicate_top: usize,
    /// Rank-level transfer/launch cost extension.
    pub rank_cost: RankCostModel,
    /// Per-rank PIM cost model (used by the plan's cost estimates).
    pub cost: CostModel,
    /// Batch size assumed by the cost estimates.
    pub batch_hint: usize,
    /// Average multi-hot reduction assumed by the cost estimates.
    pub avg_reduction_hint: f64,
    /// Host nanoseconds to probe the hot-cache index per reference.
    pub host_probe_ns: f64,
    /// Host nanoseconds per scalar add when combining host-tier rows.
    pub host_combine_ns_per_add: f64,
    /// Echoed into the plan; the planner is deterministic in all of its
    /// inputs, so equal seeds (and inputs) imply byte-identical plans.
    pub seed: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            topology: RankTopology {
                nr_ranks: 4,
                dpus_per_rank: 64,
            },
            emt_capacity_bytes: 48 << 20,
            host_cache_bytes: 1 << 20,
            replicate_top: 64,
            rank_cost: RankCostModel::default(),
            cost: CostModel::default(),
            batch_hint: 64,
            avg_reduction_hint: 100.0,
            host_probe_ns: 2.0,
            host_combine_ns_per_add: 0.1,
            seed: 7,
        }
    }
}

/// How the workload behind a plan was generated — enough for the CLI's
/// `run --plan FILE` to rebuild the identical workload and tables. The
/// planner itself never reads these fields.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlanProvenance {
    /// Dataset scale-down factor (CLI `--scale`).
    pub scale: u64,
    /// Number of tables (CLI `--tables`).
    pub tables: usize,
    /// Trace batches (CLI `--batches`).
    pub batches: usize,
    /// Trace seed (CLI `--seed`).
    pub seed: u64,
    /// Embedding dimension.
    pub dim: usize,
}

impl Default for PlanProvenance {
    fn default() -> Self {
        PlanProvenance {
            scale: 200,
            tables: 8,
            batches: 10,
            seed: 7,
            dim: 32,
        }
    }
}

/// One table's tiered, sharded placement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TablePlacement {
    /// Rows in the table (lengths of the per-row vectors).
    pub rows: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Cold MRAM partitions (one fleet DPU each).
    pub parts: usize,
    /// Global fleet DPU index of each partition
    /// (`rank = dpu / dpus_per_rank`).
    pub dpus: Vec<usize>,
    /// Tier of each row: [`TIER_HOST`], [`TIER_REPLICATED`] or
    /// [`TIER_COLD`].
    pub tier_of_row: Vec<u8>,
    /// Partition of each cold row; [`HOST_ROW_PART`] /
    /// [`REPLICATED_ROW_PART`] sentinels for the other tiers.
    pub part_of_row: Vec<u32>,
    /// Slot of each row: host-store index (host tier), replica-block
    /// slot shared by all partitions (replicated tier), or absolute EMT
    /// slot past the replica block (cold tier).
    pub slot_of_row: Vec<u32>,
    /// Host-tier rows in host-slot order.
    pub host_rows: Vec<u64>,
    /// Replicated rows in replica-block slot order.
    pub replicated_rows: Vec<u64>,
    /// Cold rows stored per partition.
    pub rows_per_part: Vec<u32>,
    /// Predicted accesses per partition (replicated mass spread evenly,
    /// matching the engine's routing).
    pub part_load: Vec<f64>,
    /// Fraction of this table's accesses absorbed by the host tier.
    pub host_mass: f64,
    /// Fraction of this table's accesses hitting the replicated tier.
    pub replica_mass: f64,
}

/// Analytic cost estimates the planner attaches to a plan. These model
/// per-batch phase walls under the rank cost extension; DESIGN.md §4.9
/// documents where they intentionally diverge from the simulated
/// engine's executed schedule.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanCostEstimate {
    /// Modeled ns for one batch under this tiered plan.
    pub tiered_batch_ns: f64,
    /// Modeled ns for one batch with every row in cold MRAM (no host
    /// tier, no replication) on the same fleet.
    pub mram_batch_ns: f64,
    /// `tiered_batch_ns` per embedding lookup.
    pub tiered_ns_per_lookup: f64,
    /// `mram_batch_ns` per embedding lookup.
    pub mram_ns_per_lookup: f64,
    /// Access-weighted host-tier hit fraction across tables.
    pub host_mass: f64,
    /// Access-weighted replicated-tier fraction across tables.
    pub replica_mass: f64,
    /// Cold partitions across all tables under the tiered plan.
    pub parts_total: usize,
    /// Partitions the pure-MRAM baseline needs for the same catalog.
    pub mram_parts_total: usize,
    /// Expected ranks a batch touches under the tiered plan.
    pub ranks_touched: usize,
    /// Ranks a batch touches under the pure-MRAM baseline.
    pub mram_ranks_touched: usize,
}

/// A deterministic, serializable placement of every catalog row across
/// the host cache, replicated hot shards and cold MRAM partitions of a
/// multi-rank fleet.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlacementPlan {
    /// Always [`PLAN_SCHEMA_VERSION`] when produced by this build.
    pub schema_version: u64,
    /// The planner inputs that produced this plan.
    pub config: PlannerConfig,
    /// Workload generation parameters (CLI provenance).
    pub provenance: PlanProvenance,
    /// Per-table placements, in catalog order.
    pub tables: Vec<TablePlacement>,
    /// Fleet DPUs actually assigned.
    pub dpus_used: usize,
    /// Predicted access mass per rank (the balance invariant's subject).
    pub rank_load: Vec<f64>,
    /// EMT rows stored per rank.
    pub rank_rows: Vec<u64>,
    /// Largest single partition load handed to the rank packer — the
    /// greedy balance bound: `max(rank_load) - min(rank_load) <=
    /// balance_bound` whenever `rank_capacity_binding` is false.
    pub balance_bound: f64,
    /// True when the rank packer ever had to skip the least-loaded rank
    /// because its DPUs were full (the balance bound may not hold).
    pub rank_capacity_binding: bool,
    /// Analytic tiered-vs-pure-MRAM cost estimates.
    pub est: PlanCostEstimate,
}

impl PlacementPlan {
    /// Serializes the plan as pretty JSON. Field order is declaration
    /// order and every collection is a `Vec`, so equal plans produce
    /// byte-identical text.
    pub fn to_json(&self) -> String {
        let mut s = serde::json::to_string_pretty(self);
        s.push('\n');
        s
    }

    /// Parses a plan, rejecting foreign schema versions before the
    /// typed decode (so a version bump fails with the version message,
    /// not a field error).
    ///
    /// # Errors
    ///
    /// [`PlanError::Parse`] for malformed JSON,
    /// [`PlanError::SchemaVersion`] for a readable file written by a
    /// different schema.
    pub fn from_json(text: &str) -> Result<PlacementPlan> {
        let doc = serde::json::parse(text).map_err(|e| PlanError::Parse(e.to_string()))?;
        let found = match doc.get("schema_version") {
            Some(serde::Value::UInt(v)) => *v,
            Some(serde::Value::Int(v)) => *v as u64,
            _ => {
                return Err(PlanError::Parse(
                    "missing or non-integer schema_version".into(),
                ))
            }
        };
        if found != PLAN_SCHEMA_VERSION {
            return Err(PlanError::SchemaVersion {
                found,
                expected: PLAN_SCHEMA_VERSION,
            });
        }
        serde::json::from_str(text).map_err(|e| PlanError::Parse(e.to_string()))
    }

    /// Total embedding rows across the plan's tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }

    /// Checks every structural invariant the proptests assert:
    ///
    /// 1. every row is placed exactly once, in exactly one tier, with
    ///    consistent tier/partition/slot encodings;
    /// 2. per-partition EMT capacity (replica block + cold rows) and the
    ///    host byte budget are respected, and each table replicates at
    ///    most `replicate_top` rows;
    /// 3. partition → DPU assignments are globally disjoint and within
    ///    the fleet;
    /// 4. cold slots are dense per partition and offset past the
    ///    replica block.
    ///
    /// # Errors
    ///
    /// [`PlanError::Invariant`] naming the first violated invariant.
    pub fn check_invariants(&self) -> Result<()> {
        let err = |msg: String| Err(PlanError::Invariant(msg));
        let topo = self.config.topology;
        let mut seen_dpus = std::collections::HashSet::new();
        let mut host_bytes_total = 0usize;
        for (t, tp) in self.tables.iter().enumerate() {
            let rows = tp.rows;
            if tp.tier_of_row.len() != rows
                || tp.part_of_row.len() != rows
                || tp.slot_of_row.len() != rows
            {
                return err(format!("table {t}: per-row vector lengths != {rows}"));
            }
            if tp.dpus.len() != tp.parts
                || tp.rows_per_part.len() != tp.parts
                || tp.part_load.len() != tp.parts
            {
                return err(format!("table {t}: per-partition vector lengths != parts"));
            }
            let emt_rows_cap = self.config.emt_capacity_bytes / (tp.dim * 4);
            let replicas = tp.replicated_rows.len();
            if replicas > self.config.replicate_top {
                return err(format!(
                    "table {t}: {replicas} replicated rows exceed replicate_top {}",
                    self.config.replicate_top
                ));
            }
            for (p, &n) in tp.rows_per_part.iter().enumerate() {
                if replicas + n as usize > emt_rows_cap {
                    return err(format!(
                        "table {t} partition {p}: {replicas} replicas + {n} cold rows \
                         exceed the {emt_rows_cap}-row EMT capacity"
                    ));
                }
            }
            for &dpu in &tp.dpus {
                if dpu >= topo.nr_dpus() {
                    return err(format!("table {t}: DPU {dpu} outside the fleet"));
                }
                if !seen_dpus.insert(dpu) {
                    return err(format!("table {t}: DPU {dpu} assigned twice"));
                }
            }
            host_bytes_total += tp.host_rows.len() * tp.dim * 4;

            // Row-exactly-once with consistent encodings.
            let mut host_seen = vec![false; tp.host_rows.len()];
            let mut replica_seen = vec![false; replicas];
            let mut cold_slots: Vec<Vec<u32>> = vec![Vec::new(); tp.parts];
            for r in 0..rows {
                let (tier, part, slot) = (tp.tier_of_row[r], tp.part_of_row[r], tp.slot_of_row[r]);
                match tier {
                    TIER_HOST => {
                        if part != HOST_ROW_PART {
                            return err(format!("table {t} row {r}: host tier, part {part}"));
                        }
                        let s = slot as usize;
                        if s >= tp.host_rows.len() || tp.host_rows[s] != r as u64 {
                            return err(format!("table {t} row {r}: bad host slot {slot}"));
                        }
                        if std::mem::replace(&mut host_seen[s], true) {
                            return err(format!("table {t}: host slot {slot} used twice"));
                        }
                    }
                    TIER_REPLICATED => {
                        if part != REPLICATED_ROW_PART {
                            return err(format!("table {t} row {r}: replica tier, part {part}"));
                        }
                        let s = slot as usize;
                        if s >= replicas || tp.replicated_rows[s] != r as u64 {
                            return err(format!("table {t} row {r}: bad replica slot {slot}"));
                        }
                        if std::mem::replace(&mut replica_seen[s], true) {
                            return err(format!("table {t}: replica slot {slot} used twice"));
                        }
                    }
                    TIER_COLD => {
                        let p = part as usize;
                        if p >= tp.parts {
                            return err(format!("table {t} row {r}: cold partition {p} oob"));
                        }
                        if (slot as usize) < replicas {
                            return err(format!(
                                "table {t} row {r}: cold slot {slot} inside the replica block"
                            ));
                        }
                        cold_slots[p].push(slot);
                    }
                    other => return err(format!("table {t} row {r}: unknown tier {other}")),
                }
            }
            if !host_seen.iter().all(|&s| s) || !replica_seen.iter().all(|&s| s) {
                return err(format!("table {t}: unreferenced host/replica slot"));
            }
            for (p, slots) in cold_slots.iter_mut().enumerate() {
                if slots.len() != tp.rows_per_part[p] as usize {
                    return err(format!(
                        "table {t} partition {p}: rows_per_part {} but {} cold rows",
                        tp.rows_per_part[p],
                        slots.len()
                    ));
                }
                slots.sort_unstable();
                for (i, &s) in slots.iter().enumerate() {
                    if s as usize != replicas + i {
                        return err(format!(
                            "table {t} partition {p}: cold slots not dense past the replica block"
                        ));
                    }
                }
            }
        }
        if host_bytes_total > self.config.host_cache_bytes {
            return err(format!(
                "host tier stores {host_bytes_total} B, budget {} B",
                self.config.host_cache_bytes
            ));
        }
        if self.dpus_used != seen_dpus.len() || self.dpus_used > topo.nr_dpus() {
            return err(format!(
                "dpus_used {} vs {} assigned of {} fleet DPUs",
                self.dpus_used,
                seen_dpus.len(),
                topo.nr_dpus()
            ));
        }
        if self.rank_load.len() != topo.nr_ranks || self.rank_rows.len() != topo.nr_ranks {
            return err("per-rank vectors must cover every rank".into());
        }
        Ok(())
    }
}
