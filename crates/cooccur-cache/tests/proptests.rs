//! Property tests for the partial-sum cache: the cache must never change
//! the result of a reduction, only the number of memory accesses.

use cooccur_cache::{CacheList, CacheListSet, PartialSumCache};
use dlrm_model::EmbeddingTable;
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a set of disjoint cache lists over items `0..n`.
fn disjoint_lists(n: u64) -> impl Strategy<Value = CacheListSet> {
    prop::collection::vec(1usize..5, 0..4).prop_map(move |sizes| {
        let mut next = 0u64;
        let mut lists = Vec::new();
        for s in sizes {
            let items: Vec<u64> = (next..next + s as u64 + 1).take_while(|&i| i < n).collect();
            next += s as u64 + 1;
            if items.len() >= 2 {
                lists.push(CacheList {
                    items,
                    benefit: 1.0,
                });
            }
        }
        CacheListSet { lists }
    })
}

proptest! {
    /// Cached reduction == direct reduction, for any sample.
    #[test]
    fn cache_never_changes_results(
        lists in disjoint_lists(64),
        sample in prop::collection::hash_set(0u64..64, 0..24),
        seed in any::<u64>(),
    ) {
        let table = EmbeddingTable::random_integer_valued(64, 8, 4, seed).unwrap();
        let cache = PartialSumCache::materialize(&lists, &table).unwrap();
        let sample: Vec<u64> = sample.into_iter().collect();
        let hit = cache.lookup(&sample);
        let via_cache = cache.reduce_with_table(&hit, &table).unwrap();
        let direct = table.partial_sum(&sample).unwrap();
        prop_assert_eq!(via_cache, direct);
    }

    /// A lookup never *increases* memory accesses, and covered+residual
    /// partitions the sample.
    #[test]
    fn lookup_partitions_sample(
        lists in disjoint_lists(64),
        sample in prop::collection::hash_set(0u64..64, 0..24),
    ) {
        let table = EmbeddingTable::random_integer_valued(64, 4, 2, 1).unwrap();
        let cache = PartialSumCache::materialize(&lists, &table).unwrap();
        let sample: Vec<u64> = sample.into_iter().collect();
        let hit = cache.lookup(&sample);
        prop_assert!(hit.entries.len() + hit.residual.len() <= sample.len().max(hit.residual.len()));
        // Every covered item + every residual item = the sample, exactly once.
        let mut covered: Vec<u64> = hit.residual.clone();
        for &e in &hit.entries {
            covered.extend(cache.entries()[e].items.iter().copied());
        }
        let covered_set: HashSet<u64> = covered.iter().copied().collect();
        let sample_set: HashSet<u64> = sample.iter().copied().collect();
        prop_assert_eq!(covered.len(), covered_set.len(), "double coverage");
        prop_assert_eq!(covered_set, sample_set);
    }

    /// Truncation keeps a prefix and never exceeds the budget.
    #[test]
    fn truncate_respects_budget(lists in disjoint_lists(64), budget in 0usize..4096) {
        let mut set = lists;
        let dim = 8;
        set.truncate_to_bytes(budget, dim);
        prop_assert!(set.total_storage_bytes(dim) <= budget);
    }
}
