//! Item co-occurrence graph.
//!
//! GRACE (Ye et al., ASPLOS'23) identifies frequently co-accessed item
//! combinations from a graph whose nodes are items and whose edge
//! weights count how often two items appear in the same sample. Like
//! GRACE, we restrict the graph to the hottest items — cold items cannot
//! amortize cached partial sums — which bounds the memory of the
//! otherwise quadratic pair counting.

use dlrm_model::FxHashMap;
use workloads::FreqProfile;

/// Co-occurrence graph over the `hot_set_size` most frequent items.
#[derive(Debug, Clone)]
pub struct CooccurGraph {
    /// Hot item id -> dense hot rank (0 = hottest).
    hot_rank: FxHashMap<u64, u32>,
    /// Hot items in rank order.
    hot_items: Vec<u64>,
    /// Edge weights keyed by (min_rank, max_rank).
    edges: FxHashMap<(u32, u32), u64>,
    /// Per-hot-item total accesses (copied from the profile).
    freq: Vec<u64>,
}

impl CooccurGraph {
    /// Creates a graph tracking the `hot_set_size` most frequent items
    /// of `profile`.
    pub fn new(profile: &FreqProfile, hot_set_size: usize) -> Self {
        let hot_items: Vec<u64> = profile
            .items_by_frequency()
            .into_iter()
            .take(hot_set_size)
            .collect();
        let hot_rank = hot_items
            .iter()
            .enumerate()
            .map(|(r, &i)| (i, r as u32))
            .collect();
        let freq = hot_items.iter().map(|&i| profile.count(i)).collect();
        CooccurGraph {
            hot_rank,
            hot_items,
            edges: FxHashMap::default(),
            freq,
        }
    }

    /// Number of hot items tracked.
    pub fn hot_set_size(&self) -> usize {
        self.hot_items.len()
    }

    /// The hot items, hottest first.
    pub fn hot_items(&self) -> &[u64] {
        &self.hot_items
    }

    /// Access frequency of a hot item by rank.
    pub fn rank_freq(&self, rank: u32) -> u64 {
        self.freq[rank as usize]
    }

    /// Item id of a hot rank.
    pub fn rank_item(&self, rank: u32) -> u64 {
        self.hot_items[rank as usize]
    }

    /// Cap on hot items per sample considered for pair counting: keeps
    /// the per-sample cost bounded on reduction-heavy traces (GRACE
    /// similarly samples its graph construction).
    pub const MAX_PAIR_SPAN: usize = 64;

    /// Records one sample's index list: every pair of hot items in the
    /// sample gains one unit of edge weight. At most
    /// [`CooccurGraph::MAX_PAIR_SPAN`] of the sample's hot items take
    /// part (pair counting is quadratic); when a sample exceeds that,
    /// an evenly-strided subset is used so that mid-popularity pairs
    /// are not systematically dropped.
    pub fn record_sample(&mut self, sample: &[u64]) {
        let mut hot: Vec<u32> = sample
            .iter()
            .filter_map(|i| self.hot_rank.get(i).copied())
            .collect();
        hot.sort_unstable();
        if hot.len() > Self::MAX_PAIR_SPAN {
            let stride = hot.len().div_ceil(Self::MAX_PAIR_SPAN);
            hot = hot.into_iter().step_by(stride).collect();
        }
        for (k, &a) in hot.iter().enumerate() {
            for &b in &hot[k + 1..] {
                *self.edges.entry((a, b)).or_insert(0) += 1;
            }
        }
    }

    /// Records every sample of an iterator of CSR inputs.
    pub fn record_inputs<'a>(
        &mut self,
        inputs: impl IntoIterator<Item = &'a dlrm_model::SparseInput>,
    ) {
        for input in inputs {
            for s in input.iter() {
                self.record_sample(s);
            }
        }
    }

    /// Co-occurrence count of two hot ranks.
    pub fn edge(&self, a: u32, b: u32) -> u64 {
        let key = (a.min(b), a.max(b));
        self.edges.get(&key).copied().unwrap_or(0)
    }

    /// Number of nonzero edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The neighbors of `rank` sorted by descending edge weight, with
    /// their weights.
    ///
    /// For a single query this scans all edges; bulk consumers (the
    /// miner) should use [`CooccurGraph::adjacency`] instead.
    pub fn neighbors_by_weight(&self, rank: u32) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self
            .edges
            .iter()
            .filter_map(|(&(a, b), &w)| {
                if a == rank {
                    Some((b, w))
                } else if b == rank {
                    Some((a, w))
                } else {
                    None
                }
            })
            .collect();
        out.sort_by_key(|&(n, w)| (std::cmp::Reverse(w), n));
        out
    }

    /// Builds the full adjacency structure in one O(E) pass: entry
    /// `rank` holds that rank's neighbors sorted by descending weight.
    pub fn adjacency(&self) -> Vec<Vec<(u32, u64)>> {
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); self.hot_items.len()];
        for (&(a, b), &w) in &self.edges {
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        for n in &mut adj {
            n.sort_by_key(|&(r, w)| (std::cmp::Reverse(w), r));
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_model::SparseInput;

    fn profile_with_counts(counts: &[u64]) -> FreqProfile {
        let mut p = FreqProfile::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                p.record(i as u64);
            }
        }
        p
    }

    #[test]
    fn hot_set_selects_most_frequent() {
        let p = profile_with_counts(&[5, 1, 9, 3]);
        let g = CooccurGraph::new(&p, 2);
        assert_eq!(g.hot_items(), &[2, 0]);
        assert_eq!(g.rank_freq(0), 9);
    }

    #[test]
    fn pairs_are_counted_symmetrically() {
        let p = profile_with_counts(&[3, 3, 3]);
        let mut g = CooccurGraph::new(&p, 3);
        g.record_sample(&[0, 1]);
        g.record_sample(&[1, 0]);
        assert_eq!(g.edge(0, 1), 2);
        assert_eq!(g.edge(1, 0), 2);
        assert_eq!(g.edge(0, 2), 0);
    }

    #[test]
    fn cold_items_are_ignored() {
        let p = profile_with_counts(&[9, 8, 1, 1]);
        let mut g = CooccurGraph::new(&p, 2);
        g.record_sample(&[0, 1, 2, 3]);
        assert_eq!(g.edge(0, 1), 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn triple_sample_counts_all_pairs() {
        let p = profile_with_counts(&[2, 2, 2]);
        let mut g = CooccurGraph::new(&p, 3);
        g.record_sample(&[0, 1, 2]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn neighbors_sorted_by_weight() {
        let p = profile_with_counts(&[4, 4, 4, 4]);
        let mut g = CooccurGraph::new(&p, 4);
        g.record_sample(&[0, 1]);
        g.record_sample(&[0, 1]);
        g.record_sample(&[0, 2]);
        let n = g.neighbors_by_weight(0);
        assert_eq!(n, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn record_inputs_walks_every_sample() {
        let p = profile_with_counts(&[2, 2, 2]);
        let mut g = CooccurGraph::new(&p, 3);
        let input = SparseInput::from_samples([vec![0u64, 1], vec![1, 2]]);
        g.record_inputs([&input]);
        assert_eq!(g.edge(0, 1), 1);
        assert_eq!(g.edge(1, 2), 1);
    }
}
