//! Functional partial-sum cache storage and lookup.
//!
//! Materializes every combination row of a [`CacheListSet`] from an
//! embedding table and answers, for a sample's index list, which cached
//! partial sums can serve it and which indices remain for regular EMT
//! lookups. The fundamental correctness invariant — cache rows plus
//! residual rows reconstruct the exact full reduction — is what the
//! property tests of this crate pin down.

use crate::mine::CacheListSet;
use dlrm_model::{simd, EmbeddingTable, FxHashMap, ModelError, Result};

/// One cached combination: a subset of a cache list and its partial sum.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Owning list index in the originating [`CacheListSet`].
    pub list: usize,
    /// Bitmask over the list's items selecting this combination.
    pub mask: u32,
    /// The combination's items (ascending by position in the list).
    pub items: Vec<u64>,
    /// The cached partial-sum vector (length = embedding dim).
    pub vector: Vec<f32>,
}

/// Result of a cache lookup for one sample.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheHit {
    /// Indices of matched [`CacheEntry`]s in [`PartialSumCache::entries`].
    pub entries: Vec<usize>,
    /// Sample indices not covered by any cached combination.
    pub residual: Vec<u64>,
}

impl CacheHit {
    /// Memory accesses saved versus looking up every index (one cache
    /// read replaces `k` row reads).
    pub fn accesses_saved(&self, sample_len: usize) -> usize {
        sample_len - (self.entries.len() + self.residual.len())
    }
}

/// Running hit/miss and traffic counters for partial-sum cache lookups
/// — a fixed-size `Copy` cell a serving loop folds every sample's
/// [`CacheHit`] into, so cache telemetry needs no heap allocation.
///
/// The counters speak in *row fetches*: one matched cache entry is one
/// cached-combination row read, one residual index is one EMT row read.
/// Multiplying by the row size gives the two traffic streams the
/// cache-aware partitioner balances (UpDLRM Algorithm 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTraffic {
    /// Samples probed against the cache.
    pub lookups: u64,
    /// Raw embedding-row references across those samples.
    pub refs: u64,
    /// Cached combination rows fetched (partial-sum traffic).
    pub hit_entries: u64,
    /// References covered by those cached combinations.
    pub covered_refs: u64,
    /// References falling through to EMT row fetches.
    pub residual_refs: u64,
}

impl CacheTraffic {
    /// Folds one sample's lookup result into the running counters.
    pub fn record(&mut self, sample_len: usize, hit: &CacheHit) {
        self.lookups += 1;
        self.refs += sample_len as u64;
        self.hit_entries += hit.entries.len() as u64;
        self.residual_refs += hit.residual.len() as u64;
        self.covered_refs += (sample_len - hit.residual.len()) as u64;
    }

    /// Fraction of references served from cached combinations
    /// (`0.0` before the first reference).
    pub fn hit_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.covered_refs as f64 / self.refs as f64
        }
    }

    /// Row fetches avoided versus looking up every reference: covered
    /// references minus the cache rows read in their place.
    pub fn fetches_saved(&self) -> u64 {
        self.covered_refs - self.hit_entries
    }
}

/// Reusable working state for [`PartialSumCache::lookup_into`].
#[derive(Debug, Default)]
pub struct LookupScratch {
    /// Mask accumulated per cache list for the current sample,
    /// direct-mapped by list index (grow-only; entries for lists not in
    /// `touched` are zero).
    mask_of_list: Vec<u32>,
    /// Cache lists touched by the current sample, in first-touch order.
    touched: Vec<u32>,
}

/// Materialized partial-sum cache for one embedding table.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialSumCache {
    entries: Vec<CacheEntry>,
    /// item -> packed `(list << 5 | bit) + 1` (0 = not cached),
    /// direct-mapped over the table's rows. Read once per sample index
    /// on the serving path, so this trades one word per table row
    /// (under 1% of the row data itself) for a branch-free probe.
    item_pos: Vec<u32>,
    /// (list, mask) -> entry index
    combo_index: FxHashMap<(usize, u32), usize>,
    dim: usize,
}

/// A cache list holds at most 20 items, so the bit position fits in the
/// low 5 bits of the packed `item_pos` word.
const POS_BIT_WIDTH: u32 = 5;

impl PartialSumCache {
    /// Computes all `2^k - 1` combination rows for every list.
    ///
    /// # Errors
    ///
    /// Fails if any listed item is out of range for `table`.
    pub fn materialize(lists: &CacheListSet, table: &EmbeddingTable) -> Result<Self> {
        let mut entries = Vec::new();
        let mut item_pos = vec![0u32; table.rows()];
        let mut combo_index = FxHashMap::default();
        for (l, list) in lists.lists.iter().enumerate() {
            if list.items.len() > 20 {
                return Err(ModelError::InvalidConfig(format!(
                    "cache list of {} items would need 2^{} combination rows",
                    list.items.len(),
                    list.items.len()
                )));
            }
            for (bit, &item) in list.items.iter().enumerate() {
                let slot = item_pos.get_mut(item as usize).ok_or_else(|| {
                    ModelError::InvalidConfig(format!(
                        "cache list item {item} out of range for {} table rows",
                        table.rows()
                    ))
                })?;
                *slot = ((l as u32) << POS_BIT_WIDTH | bit as u32) + 1;
            }
            let k = list.items.len() as u32;
            for mask in 1u32..(1 << k) {
                let items: Vec<u64> = (0..k)
                    .filter(|b| mask & (1 << b) != 0)
                    .map(|b| list.items[b as usize])
                    .collect();
                let vector = table.partial_sum(&items)?;
                combo_index.insert((l, mask), entries.len());
                entries.push(CacheEntry {
                    list: l,
                    mask,
                    items,
                    vector,
                });
            }
        }
        Ok(PartialSumCache {
            entries,
            item_pos,
            combo_index,
            dim: table.dim(),
        })
    }

    /// The cached entries (stable order: list-major, mask-minor).
    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// Embedding dimension of the cached rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total storage bytes of the cached rows.
    pub fn storage_bytes(&self) -> usize {
        self.entries.len() * self.dim * 4
    }

    /// Splits a sample's index list into cached combinations and
    /// residual indices.
    ///
    /// For each cache list, the intersection with the sample maps to
    /// exactly one combination row (its bitmask); intersections of size
    /// one are served from the cache too (the single-item combination is
    /// cached), everything else becomes residual EMT lookups.
    pub fn lookup(&self, sample: &[u64]) -> CacheHit {
        let mut out = CacheHit::default();
        self.lookup_into(sample, &mut LookupScratch::default(), &mut out);
        out
    }

    /// [`PartialSumCache::lookup`] writing into a caller-owned
    /// [`CacheHit`] (cleared first, capacity reused) via reusable
    /// working state — the zero-allocation form used by the serving
    /// path. Results are identical to [`PartialSumCache::lookup`]:
    /// entries sorted by (list, mask), residuals in sample order.
    pub fn lookup_into(&self, sample: &[u64], scratch: &mut LookupScratch, out: &mut CacheHit) {
        out.entries.clear();
        out.residual.clear();
        for &i in sample {
            // One array read per index; uncached items (and indices past
            // the direct map, which only happens for corrupt samples the
            // downstream lookup rejects anyway) go to the residual list.
            match self.item_pos.get(i as usize).copied().unwrap_or(0) {
                0 => out.residual.push(i),
                packed => {
                    let l = (packed - 1) >> POS_BIT_WIDTH;
                    let bit = (packed - 1) & ((1 << POS_BIT_WIDTH) - 1);
                    if scratch.mask_of_list.len() <= l as usize {
                        scratch.mask_of_list.resize(l as usize + 1, 0);
                    }
                    let m = &mut scratch.mask_of_list[l as usize];
                    if *m == 0 {
                        scratch.touched.push(l);
                    }
                    *m |= 1 << bit;
                }
            }
        }
        // Each touched list maps to exactly one combination row, so
        // sorting the list ids alone reproduces the (list, mask) order.
        scratch.touched.sort_unstable();
        out.entries.extend(scratch.touched.iter().map(|&l| {
            let mask = std::mem::take(&mut scratch.mask_of_list[l as usize]);
            self.combo_index[&(l as usize, mask)]
        }));
        scratch.touched.clear();
    }

    /// Reconstructs a sample's full reduction from a lookup — reference
    /// combining logic used by tests and the CPU-side aggregator.
    pub fn reduce_with_table(&self, hit: &CacheHit, table: &EmbeddingTable) -> Result<Vec<f32>> {
        let mut acc = vec![0.0f32; self.dim];
        for &e in &hit.entries {
            simd::add_assign(&mut acc, &self.entries[e].vector);
        }
        let residual_sum = table.partial_sum(&hit.residual)?;
        simd::add_assign(&mut acc, &residual_sum);
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::CacheList;

    fn table() -> EmbeddingTable {
        EmbeddingTable::random_integer_valued(32, 4, 3, 99).unwrap()
    }

    fn lists() -> CacheListSet {
        CacheListSet {
            lists: vec![
                CacheList {
                    items: vec![1, 2, 3],
                    benefit: 10.0,
                },
                CacheList {
                    items: vec![7, 8],
                    benefit: 5.0,
                },
            ],
        }
    }

    #[test]
    fn materializes_all_combinations() {
        let c = PartialSumCache::materialize(&lists(), &table()).unwrap();
        assert_eq!(c.entries().len(), 7 + 3);
        assert_eq!(c.storage_bytes(), 10 * 4 * 4);
    }

    #[test]
    fn combination_vectors_are_sums() {
        let t = table();
        let c = PartialSumCache::materialize(&lists(), &t).unwrap();
        for e in c.entries() {
            let expect = t.partial_sum(&e.items).unwrap();
            assert_eq!(e.vector, expect);
        }
    }

    #[test]
    fn lookup_splits_cached_and_residual() {
        let c = PartialSumCache::materialize(&lists(), &table()).unwrap();
        // Paper's Fig. 7 example shape: 4 and 5 cached together, 1 not.
        let hit = c.lookup(&[1, 2, 20]);
        assert_eq!(hit.entries.len(), 1);
        assert_eq!(hit.residual, vec![20]);
        assert_eq!(hit.accesses_saved(3), 1);
        let e = &c.entries()[hit.entries[0]];
        assert_eq!(e.items, vec![1, 2]);
    }

    #[test]
    fn lookup_spanning_two_lists() {
        let c = PartialSumCache::materialize(&lists(), &table()).unwrap();
        let hit = c.lookup(&[1, 3, 7, 8, 30]);
        assert_eq!(hit.entries.len(), 2);
        assert_eq!(hit.residual, vec![30]);
        assert_eq!(hit.accesses_saved(5), 2);
    }

    #[test]
    fn reduce_reconstructs_full_sum() {
        let t = table();
        let c = PartialSumCache::materialize(&lists(), &t).unwrap();
        let sample = [1u64, 2, 3, 7, 20, 25];
        let hit = c.lookup(&sample);
        let via_cache = c.reduce_with_table(&hit, &t).unwrap();
        let direct = t.partial_sum(&sample).unwrap();
        assert_eq!(via_cache, direct);
    }

    #[test]
    fn empty_sample_is_all_residual() {
        let c = PartialSumCache::materialize(&lists(), &table()).unwrap();
        let hit = c.lookup(&[]);
        assert!(hit.entries.is_empty());
        assert!(hit.residual.is_empty());
        assert_eq!(hit.accesses_saved(0), 0);
    }

    #[test]
    fn cache_traffic_counts_rows_and_rates() {
        let c = PartialSumCache::materialize(&lists(), &table()).unwrap();
        let mut traffic = CacheTraffic::default();
        assert_eq!(traffic.hit_rate(), 0.0);

        // [1, 2, 20]: one cached combination covering 2 refs, 1 residual.
        let hit = c.lookup(&[1, 2, 20]);
        traffic.record(3, &hit);
        // [1, 3, 7, 8, 30]: two combinations covering 4 refs, 1 residual.
        let hit = c.lookup(&[1, 3, 7, 8, 30]);
        traffic.record(5, &hit);

        assert_eq!(traffic.lookups, 2);
        assert_eq!(traffic.refs, 8);
        assert_eq!(traffic.hit_entries, 3);
        assert_eq!(traffic.covered_refs, 6);
        assert_eq!(traffic.residual_refs, 2);
        assert_eq!(traffic.fetches_saved(), 3);
        assert!((traffic.hit_rate() - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_list_is_rejected() {
        let big = CacheListSet {
            lists: vec![CacheList {
                items: (0..21).collect(),
                benefit: 0.0,
            }],
        };
        assert!(PartialSumCache::materialize(&big, &table()).is_err());
    }

    #[test]
    fn out_of_range_item_is_rejected() {
        let bad = CacheListSet {
            lists: vec![CacheList {
                items: vec![1000, 1001],
                benefit: 0.0,
            }],
        };
        assert!(PartialSumCache::materialize(&bad, &table()).is_err());
    }
}
