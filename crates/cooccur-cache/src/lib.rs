//! # cooccur-cache — GRACE-style partial-sum caching
//!
//! The UpDLRM paper adopts GRACE (Ye et al., ASPLOS'23) to generate
//! *cache lists*: sets of items that frequently co-occur in the same
//! sample, whose partial sums are cached to cut embedding memory
//! traffic. GRACE itself is not redistributable, so this crate
//! implements the same role from scratch:
//!
//! 1. [`CooccurGraph`] counts pairwise co-occurrence among hot items;
//! 2. [`CacheListSet::mine`] greedily clusters the graph into disjoint
//!    cache lists with per-list benefit estimates (the `cache_res`
//!    input of the paper's Algorithm 1);
//! 3. [`PartialSumCache`] materializes all `2^k - 1` combination rows
//!    and answers lookups, preserving the exact-reconstruction
//!    invariant (cached sums + residual rows = full reduction).
//!
//! The paper notes UpDLRM "does not rely on GRACE and can work with any
//! other caching technique" — mirroring that, `updlrm-core` consumes
//! only the [`CacheListSet`] interface.
//!
//! ## Example
//!
//! ```rust
//! use cooccur_cache::{CacheListSet, CooccurGraph, MinerConfig, PartialSumCache};
//! use dlrm_model::EmbeddingTable;
//! use workloads::{DatasetSpec, FreqProfile, TraceConfig, Workload};
//!
//! # fn main() -> Result<(), dlrm_model::ModelError> {
//! let spec = DatasetSpec::movie().scaled_down(2000);
//! let trace = Workload::generate(&spec, TraceConfig { num_batches: 2, ..Default::default() });
//! let profile = FreqProfile::from_inputs(spec.num_items, trace.table_inputs(0));
//!
//! let mut graph = CooccurGraph::new(&profile, 256);
//! graph.record_inputs(trace.table_inputs(0));
//! let lists = CacheListSet::mine(&graph, &MinerConfig::default());
//!
//! let table = EmbeddingTable::random(spec.num_items, 8, 0.1, 7)?;
//! let cache = PartialSumCache::materialize(&lists, &table)?;
//! let hit = cache.lookup(&[0, 1, 2, 3]);
//! assert_eq!(hit.entries.len() + hit.residual.len(), 4 - hit.accesses_saved(4));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graph;
pub mod mine;
pub mod store;

pub use graph::CooccurGraph;
pub use mine::{CacheList, CacheListSet, MinerConfig};
pub use store::{CacheEntry, CacheHit, CacheTraffic, LookupScratch, PartialSumCache};
