//! Greedy cache-list mining (the GRACE role).
//!
//! Extracts small sets of items that frequently co-occur; each set
//! becomes a *cache list* whose `2^k - 1` partial-sum combinations are
//! cached (paper §3.3: "a cache list of {a, b, c} means partial sums
//! a, b, c, a+b, a+c, b+c and a+b+c are cached"). Each list carries a
//! `benefit` — the estimated reduction in memory accesses — which is the
//! `list[-1]` input consumed by Algorithm 1.

use crate::graph::CooccurGraph;
use dlrm_model::SparseInput;
use dlrm_model::{FxHashMap, FxHashSet};

/// One mined cache list.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheList {
    /// The co-occurring items (2..=max_list_len of them, distinct).
    pub items: Vec<u64>,
    /// Estimated memory accesses saved per generated batch window —
    /// Algorithm 1 subtracts this from the owning partition's load.
    pub benefit: f64,
}

impl CacheList {
    /// Number of cached combination rows for this list (`2^k - 1`).
    pub fn num_combinations(&self) -> usize {
        (1usize << self.items.len()) - 1
    }

    /// Bytes of cache storage this list needs at embedding dimension
    /// `dim` (f32 rows, one per combination).
    pub fn storage_bytes(&self, dim: usize) -> usize {
        self.num_combinations() * dim * 4
    }
}

/// Parameters of the miner.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MinerConfig {
    /// Track co-occurrence among this many hottest items.
    pub hot_set_size: usize,
    /// Maximum items per cache list (storage is 2^k - 1 rows, so keep
    /// small; GRACE uses similarly small combinations).
    pub max_list_len: usize,
    /// Minimum co-occurrence weight for a neighbor to join a list, as a
    /// fraction of the seed item's own frequency.
    pub min_edge_fraction: f64,
    /// Maximum number of lists to emit.
    pub max_lists: usize,
    /// Maximum trace samples fed into graph construction (mining cost
    /// control; benefits are still measured on the full trace).
    pub max_samples: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            hot_set_size: 4096,
            max_list_len: 4,
            min_edge_fraction: 0.10,
            max_lists: 768,
            max_samples: 4096,
        }
    }
}

/// The miner's output: disjoint cache lists, strongest first.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheListSet {
    /// Mined lists ordered by descending benefit.
    pub lists: Vec<CacheList>,
}

impl CacheListSet {
    /// Mines cache lists from a co-occurrence graph.
    ///
    /// Greedy clustering: seed with the hottest unassigned item, grow
    /// with its strongest unassigned neighbors whose edge weight clears
    /// `min_edge_fraction` of the seed frequency, emit if at least two
    /// items cluster.
    pub fn mine(graph: &CooccurGraph, config: &MinerConfig) -> CacheListSet {
        let adjacency = graph.adjacency();
        let mut assigned: FxHashSet<u32> = FxHashSet::default();
        let mut lists = Vec::new();
        for seed in 0..graph.hot_set_size() as u32 {
            if lists.len() >= config.max_lists {
                break;
            }
            if assigned.contains(&seed) {
                continue;
            }
            let seed_freq = graph.rank_freq(seed);
            if seed_freq == 0 {
                break;
            }
            let threshold = (seed_freq as f64 * config.min_edge_fraction).max(1.0);
            let mut members = vec![seed];
            let mut min_edge = u64::MAX;
            for &(n, w) in &adjacency[seed as usize] {
                if members.len() >= config.max_list_len {
                    break;
                }
                if assigned.contains(&n) || (w as f64) < threshold {
                    continue;
                }
                members.push(n);
                min_edge = min_edge.min(w);
            }
            if members.len() < 2 {
                continue;
            }
            assigned.extend(members.iter().copied());
            // Benefit: every time the whole group co-occurs, k reads
            // collapse into one — (k-1) saved per co-occurrence. The
            // weakest pairwise edge lower-bounds group co-occurrence.
            let benefit = min_edge as f64 * (members.len() as f64 - 1.0);
            lists.push(CacheList {
                items: members.iter().map(|&r| graph.rank_item(r)).collect(),
                benefit,
            });
        }
        lists.sort_by(|a, b| {
            b.benefit
                .partial_cmp(&a.benefit)
                .expect("benefits are finite")
        });
        CacheListSet { lists }
    }

    /// Replaces each list's estimated benefit with one *measured* on a
    /// trace: the number of memory accesses the cache would actually
    /// save (covered items minus one cache read, per sample).
    pub fn measure_benefit<'a>(&mut self, inputs: impl IntoIterator<Item = &'a SparseInput>) {
        let item_to_list = self.item_index();
        let mut saved = vec![0u64; self.lists.len()];
        for input in inputs {
            for sample in input.iter() {
                let mut matched: FxHashMap<usize, u64> = FxHashMap::default();
                for i in sample {
                    if let Some(&l) = item_to_list.get(i) {
                        *matched.entry(l).or_insert(0) += 1;
                    }
                }
                for (l, k) in matched {
                    if k >= 2 {
                        saved[l] += k - 1;
                    }
                }
            }
        }
        for (list, s) in self.lists.iter_mut().zip(saved) {
            list.benefit = s as f64;
        }
        self.lists.sort_by(|a, b| {
            b.benefit
                .partial_cmp(&a.benefit)
                .expect("benefits are finite")
        });
    }

    /// Item -> list index (lists are disjoint by construction).
    pub fn item_index(&self) -> FxHashMap<u64, usize> {
        let mut m = FxHashMap::default();
        for (l, list) in self.lists.iter().enumerate() {
            for &i in &list.items {
                m.insert(i, l);
            }
        }
        m
    }

    /// Total cache storage at dimension `dim` for every list.
    pub fn total_storage_bytes(&self, dim: usize) -> usize {
        self.lists.iter().map(|l| l.storage_bytes(dim)).sum()
    }

    /// Keeps only the highest-benefit prefix fitting in `budget_bytes`
    /// at dimension `dim` — the paper's 40%/70%/100% cache-capacity
    /// sensitivity knob.
    pub fn truncate_to_bytes(&mut self, budget_bytes: usize, dim: usize) {
        let mut used = 0usize;
        let mut keep = 0usize;
        for list in &self.lists {
            let sz = list.storage_bytes(dim);
            if used + sz > budget_bytes {
                break;
            }
            used += sz;
            keep += 1;
        }
        self.lists.truncate(keep);
    }

    /// Number of lists.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when no lists were mined.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use workloads::FreqProfile;

    /// Builds a graph where items {0,1,2} strongly co-occur and {3,4}
    /// weakly.
    fn clustered_graph() -> CooccurGraph {
        let mut p = FreqProfile::new(8);
        for i in 0..5u64 {
            for _ in 0..(100 - i * 10) {
                p.record(i);
            }
        }
        let mut g = CooccurGraph::new(&p, 8);
        for _ in 0..50 {
            g.record_sample(&[0, 1, 2]);
        }
        for _ in 0..5 {
            g.record_sample(&[3, 4]);
        }
        g
    }

    #[test]
    fn mines_the_planted_cluster() {
        let g = clustered_graph();
        let set = CacheListSet::mine(&g, &MinerConfig::default());
        assert!(!set.is_empty());
        let first: HashSet<u64> = set.lists[0].items.iter().copied().collect();
        assert_eq!(first, HashSet::from([0, 1, 2]));
    }

    #[test]
    fn lists_are_disjoint() {
        let g = clustered_graph();
        let set = CacheListSet::mine(&g, &MinerConfig::default());
        let mut seen = HashSet::new();
        for l in &set.lists {
            for &i in &l.items {
                assert!(seen.insert(i), "item {i} appears in two lists");
            }
        }
    }

    #[test]
    fn weak_edges_are_rejected() {
        let g = clustered_graph();
        // min_edge_fraction 0.9 means a neighbor must co-occur in 90% of
        // the seed's accesses — the 5/50 edges fail.
        let cfg = MinerConfig {
            min_edge_fraction: 0.9,
            ..MinerConfig::default()
        };
        let set = CacheListSet::mine(&g, &cfg);
        assert!(set.lists.iter().all(|l| {
            let s: HashSet<u64> = l.items.iter().copied().collect();
            !s.contains(&3) || !s.contains(&4)
        }));
    }

    #[test]
    fn max_list_len_is_respected() {
        let g = clustered_graph();
        let cfg = MinerConfig {
            max_list_len: 2,
            ..MinerConfig::default()
        };
        let set = CacheListSet::mine(&g, &cfg);
        assert!(set.lists.iter().all(|l| l.items.len() <= 2));
    }

    #[test]
    fn combination_count_is_exponential() {
        let l = CacheList {
            items: vec![1, 2, 3],
            benefit: 0.0,
        };
        assert_eq!(l.num_combinations(), 7);
        assert_eq!(l.storage_bytes(32), 7 * 32 * 4);
    }

    #[test]
    fn measured_benefit_counts_real_savings() {
        let g = clustered_graph();
        let mut set = CacheListSet::mine(&g, &MinerConfig::default());
        // A sample containing all of {0,1,2} saves 2 accesses; one with
        // {0,1} saves 1; disjoint samples save 0.
        let input = SparseInput::from_samples([vec![0u64, 1, 2], vec![0, 1], vec![5, 6]]);
        set.measure_benefit([&input]);
        let cluster = set
            .lists
            .iter()
            .find(|l| l.items.contains(&0))
            .expect("cluster list");
        assert_eq!(cluster.benefit, 3.0);
    }

    #[test]
    fn truncate_to_bytes_keeps_best_prefix() {
        let mut set = CacheListSet {
            lists: vec![
                CacheList {
                    items: vec![0, 1],
                    benefit: 10.0,
                }, // 3 rows
                CacheList {
                    items: vec![2, 3],
                    benefit: 5.0,
                }, // 3 rows
            ],
        };
        let dim = 4; // one row = 16 bytes, one list = 48 bytes
        set.truncate_to_bytes(50, dim);
        assert_eq!(set.len(), 1);
        assert_eq!(set.lists[0].items, vec![0, 1]);
        let mut empty = CacheListSet::default();
        empty.truncate_to_bytes(0, dim);
        assert!(empty.is_empty());
    }

    #[test]
    fn benefit_ordering_is_descending() {
        let g = clustered_graph();
        let set = CacheListSet::mine(
            &g,
            &MinerConfig {
                min_edge_fraction: 0.01,
                ..Default::default()
            },
        );
        for w in set.lists.windows(2) {
            assert!(w[0].benefit >= w[1].benefit);
        }
    }
}
