//! Property-based tests for DLRM building blocks.

use dlrm_model::{EmbeddingTable, Matrix, SparseInput};
use proptest::prelude::*;

/// Strategy: a small CSR sparse input over `rows` rows.
fn sparse_input(rows: u64, max_batch: usize, max_red: usize) -> impl Strategy<Value = SparseInput> {
    prop::collection::vec(prop::collection::vec(0..rows, 0..max_red), 1..max_batch)
        .prop_map(SparseInput::from_samples)
}

proptest! {
    /// bag_sum equals per-sample partial_sum for every sample.
    #[test]
    fn bag_sum_matches_partial_sums(input in sparse_input(64, 8, 10), seed in any::<u64>()) {
        let table = EmbeddingTable::random_integer_valued(64, 4, 3, seed).unwrap();
        let pooled = table.bag_sum(&input).unwrap();
        for s in 0..input.batch_size() {
            let expect = table.partial_sum(input.sample(s)).unwrap();
            prop_assert_eq!(pooled.row(s), expect.as_slice());
        }
    }

    /// Summation with integer-valued tables is order independent (exact).
    #[test]
    fn integer_sums_are_order_independent(mut idxs in prop::collection::vec(0u64..64, 1..32), seed in any::<u64>()) {
        let table = EmbeddingTable::random_integer_valued(64, 8, 4, seed).unwrap();
        let a = table.partial_sum(&idxs).unwrap();
        idxs.reverse();
        let b = table.partial_sum(&idxs).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Splitting a sample's indices into two partitions and summing the
    /// partial results reconstructs the full reduction — the invariant
    /// EMT partitioning relies on.
    #[test]
    fn partition_partial_sums_reconstruct(
        idxs in prop::collection::vec(0u64..64, 0..32),
        split_at in 0usize..32,
        seed in any::<u64>(),
    ) {
        let table = EmbeddingTable::random_integer_valued(64, 8, 4, seed).unwrap();
        let cut = split_at.min(idxs.len());
        let full = table.partial_sum(&idxs).unwrap();
        let left = table.partial_sum(&idxs[..cut]).unwrap();
        let right = table.partial_sum(&idxs[cut..]).unwrap();
        let combined: Vec<f32> = left.iter().zip(right.iter()).map(|(a, b)| a + b).collect();
        prop_assert_eq!(full, combined);
    }

    /// Matmul distributes over horizontal concatenation of the identity
    /// blocks — sanity for hconcat layout.
    #[test]
    fn hconcat_preserves_rows(r in 1usize..6, c1 in 1usize..5, c2 in 1usize..5) {
        let a = Matrix::zeros(r, c1);
        let b = Matrix::zeros(r, c2);
        let cat = Matrix::hconcat(&[&a, &b]).unwrap();
        prop_assert_eq!(cat.rows(), r);
        prop_assert_eq!(cat.cols(), c1 + c2);
    }

    /// CSR validation accepts everything from_samples builds.
    #[test]
    fn from_samples_always_valid(samples in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..8), 0..8)) {
        let s = SparseInput::from_samples(samples.clone());
        prop_assert!(s.validate().is_ok());
        prop_assert_eq!(s.batch_size(), samples.len());
    }
}
