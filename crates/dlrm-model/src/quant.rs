//! Per-row affine u8 quantization of embedding rows.
//!
//! Embedding bandwidth, not arithmetic, bounds PIM recommendation
//! serving, so shrinking the stored row is worth a bounded precision
//! loss. Each stored row (or row *slice* — the engine quantizes each
//! DPU's `N_c`-column tile slice independently) is encoded as
//!
//! ```text
//! [scale: f32 le][min: f32 le][q[0..n]: u8 each][zero pad to 8 B]
//! ```
//!
//! with `q = round((v - min) / scale)` clamped to `0..=255`,
//! `scale = (max - min) / 255`, and dequantization
//! `v' = min + scale * q` (the op order every backend, scalar or SIMD,
//! reproduces exactly — see [`crate::simd::add_assign_dequant_u8`]).
//!
//! **Error model.** With exact arithmetic the reconstruction error is
//! at most `scale / 2` per element (the value is rounded to the nearest
//! of 256 evenly spaced levels). The f32 round-off of the encode and
//! decode expressions adds a few ulps of the row's magnitude on top;
//! [`max_abs_error_bound`] folds both into one checkable bound, which
//! the proptest suite enforces at 1024 cases. A constant row has
//! `scale == 0` and reconstructs exactly (`v' = min`).

use crate::embedding::EmbeddingTable;
use crate::error::{ModelError, Result};

/// Bytes of per-row header: `scale` then `min`, both little-endian f32.
pub const QROW_HEADER_BYTES: usize = 8;

/// Stored bytes of one quantized row of `n` values: header plus one
/// byte per value, zero-padded to the 8-byte MRAM DMA granule.
pub const fn quantized_row_bytes(n: usize) -> usize {
    (QROW_HEADER_BYTES + n + 7) & !7
}

/// Upper bound on `|v - dequant(quant(v))|` for any element of a row
/// quantized with `scale` over values of magnitude at most `max_abs`:
/// the half-step quantization error plus f32 round-off slack.
pub fn max_abs_error_bound(scale: f32, max_abs: f32) -> f32 {
    0.5 * scale + 8.0 * f32::EPSILON * (max_abs + scale) + f32::MIN_POSITIVE
}

/// Quantizes `src` into `dst`, which must be exactly
/// [`quantized_row_bytes`]`(src.len())` long.
///
/// # Errors
///
/// Fails if `dst` has the wrong length or `src` contains a non-finite
/// value (quantization needs a finite min/max).
pub fn quantize_row_into(src: &[f32], dst: &mut [u8]) -> Result<()> {
    if dst.len() != quantized_row_bytes(src.len()) {
        return Err(ModelError::InvalidConfig(format!(
            "quantized row of {} values needs {} bytes, got {}",
            src.len(),
            quantized_row_bytes(src.len()),
            dst.len()
        )));
    }
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in src {
        if !v.is_finite() {
            return Err(ModelError::InvalidConfig(format!(
                "cannot quantize non-finite value {v}"
            )));
        }
        min = min.min(v);
        max = max.max(v);
    }
    if src.is_empty() {
        min = 0.0;
        max = 0.0;
    }
    let scale = (max - min) / 255.0;
    dst[0..4].copy_from_slice(&scale.to_le_bytes());
    dst[4..8].copy_from_slice(&min.to_le_bytes());
    for (d, &v) in dst[QROW_HEADER_BYTES..].iter_mut().zip(src.iter()) {
        *d = if scale == 0.0 {
            0
        } else {
            ((v - min) / scale).round().clamp(0.0, 255.0) as u8
        };
    }
    for d in dst[QROW_HEADER_BYTES + src.len()..].iter_mut() {
        *d = 0;
    }
    Ok(())
}

/// The `(scale, min)` header of a quantized row.
///
/// # Errors
///
/// Fails if `bytes` is shorter than the header.
pub fn row_params(bytes: &[u8]) -> Result<(f32, f32)> {
    if bytes.len() < QROW_HEADER_BYTES {
        return Err(ModelError::InvalidConfig(format!(
            "quantized row header needs {QROW_HEADER_BYTES} bytes, got {}",
            bytes.len()
        )));
    }
    let scale = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let min = f32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    Ok((scale, min))
}

/// Dequantizes a row of `n` values from its stored bytes, overwriting
/// `out[..n]`.
///
/// # Errors
///
/// Fails if `bytes` is shorter than [`quantized_row_bytes`]`(n)` or
/// `out` shorter than `n`.
pub fn dequantize_row_into(bytes: &[u8], n: usize, out: &mut [f32]) -> Result<()> {
    if bytes.len() < quantized_row_bytes(n) || out.len() < n {
        return Err(ModelError::InvalidConfig(format!(
            "dequantize of {n} values: got {} bytes and {} output slots",
            bytes.len(),
            out.len()
        )));
    }
    let (scale, min) = row_params(bytes)?;
    for (o, &q) in out[..n]
        .iter_mut()
        .zip(bytes[QROW_HEADER_BYTES..QROW_HEADER_BYTES + n].iter())
    {
        *o = min + scale * q as f32;
    }
    Ok(())
}

/// Storage dtype of the embedding rows a PIM engine scatters into MRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum EmbedDtype {
    /// Full-precision rows, 4 bytes per element (the default).
    #[default]
    F32,
    /// Per-row affine u8 rows (this module's format): a 4x element
    /// shrink, bounded by the quantization error model above.
    Int8,
}

impl EmbedDtype {
    /// Stored MRAM bytes of one row (or row slice) of `n` elements.
    pub fn stored_row_bytes(self, n: usize) -> usize {
        match self {
            EmbedDtype::F32 => n * 4,
            EmbedDtype::Int8 => quantized_row_bytes(n),
        }
    }

    /// Stable lower-case name (`"f32" | "int8"`), used by the CLI flag
    /// and bench rows.
    pub fn as_str(self) -> &'static str {
        match self {
            EmbedDtype::F32 => "f32",
            EmbedDtype::Int8 => "int8",
        }
    }

    /// Parses [`EmbedDtype::as_str`] names.
    ///
    /// # Errors
    ///
    /// Fails on anything other than `"f32"` or `"int8"`.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "f32" => Ok(EmbedDtype::F32),
            "int8" => Ok(EmbedDtype::Int8),
            other => Err(ModelError::InvalidConfig(format!(
                "unknown embed dtype {other:?} (expected \"f32\" or \"int8\")"
            ))),
        }
    }
}

impl std::fmt::Display for EmbedDtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A whole embedding table quantized row-by-row — the model-level
/// mirror of what the engine stores per DPU tile, used by the error
/// proptests and the int8 end-to-end reference.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTable {
    rows: usize,
    dim: usize,
    data: Vec<u8>,
}

impl QuantTable {
    /// Quantizes every row of `table` independently.
    ///
    /// # Errors
    ///
    /// Fails if any value is non-finite.
    pub fn from_table(table: &EmbeddingTable) -> Result<Self> {
        let rows = table.rows();
        let dim = table.dim();
        let rb = quantized_row_bytes(dim);
        let mut data = vec![0u8; rows * rb];
        for r in 0..rows {
            quantize_row_into(table.row(r as u64)?, &mut data[r * rb..(r + 1) * rb])?;
        }
        Ok(QuantTable { rows, dim, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Stored bytes per row.
    pub fn row_bytes(&self) -> usize {
        quantized_row_bytes(self.dim)
    }

    /// Total stored bytes (the number an f32 table shrinks to).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// The stored bytes of row `i`.
    ///
    /// # Errors
    ///
    /// Fails if `i` is out of range.
    pub fn row_bytes_of(&self, i: u64) -> Result<&[u8]> {
        let idx = usize::try_from(i).ok().filter(|&v| v < self.rows).ok_or(
            ModelError::IndexOutOfRange {
                index: i,
                rows: self.rows,
            },
        )?;
        let rb = self.row_bytes();
        Ok(&self.data[idx * rb..(idx + 1) * rb])
    }

    /// Reconstructs the full table with every row dequantized — the
    /// reference an int8 engine's output is compared against.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot happen for a well-formed
    /// `QuantTable`).
    pub fn dequantize(&self) -> Result<EmbeddingTable> {
        let mut t = EmbeddingTable::zeros(self.rows, self.dim)?;
        let rb = self.row_bytes();
        for r in 0..self.rows {
            let dst = &mut t.as_mut_slice()[r * self.dim..(r + 1) * self.dim];
            dequantize_row_into(&self.data[r * rb..(r + 1) * rb], self.dim, dst)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(src: &[f32]) -> Vec<f32> {
        let mut bytes = vec![0u8; quantized_row_bytes(src.len())];
        quantize_row_into(src, &mut bytes).unwrap();
        let mut out = vec![0.0f32; src.len()];
        dequantize_row_into(&bytes, src.len(), &mut out).unwrap();
        out
    }

    #[test]
    fn row_bytes_are_padded_to_dma_granule() {
        assert_eq!(quantized_row_bytes(0), 8);
        assert_eq!(quantized_row_bytes(2), 16);
        assert_eq!(quantized_row_bytes(6), 16);
        assert_eq!(quantized_row_bytes(8), 16);
        assert_eq!(quantized_row_bytes(9), 24);
        assert_eq!(quantized_row_bytes(32), 40);
        for n in 0..70 {
            assert_eq!(quantized_row_bytes(n) % 8, 0);
            assert!(quantized_row_bytes(n) >= QROW_HEADER_BYTES + n);
        }
    }

    #[test]
    fn constant_row_reconstructs_exactly() {
        for v in [0.0f32, -3.25, 1e-20, 7e12] {
            let src = vec![v; 8];
            assert_eq!(round_trip(&src), src);
        }
    }

    #[test]
    fn endpoints_reconstruct_near_exactly() {
        let src = [-1.0f32, 1.0, 0.0, 0.5];
        let got = round_trip(&src);
        let scale = 2.0 / 255.0;
        let bound = max_abs_error_bound(scale, 1.0);
        for (g, s) in got.iter().zip(src.iter()) {
            assert!((g - s).abs() <= bound, "{g} vs {s} (bound {bound})");
        }
        // The endpoints hit exact levels: q=0 gives min exactly.
        assert_eq!(got[0], -1.0);
    }

    #[test]
    fn non_finite_rows_are_rejected() {
        let mut dst = vec![0u8; quantized_row_bytes(2)];
        assert!(quantize_row_into(&[1.0, f32::NAN], &mut dst).is_err());
        assert!(quantize_row_into(&[f32::INFINITY, 0.0], &mut dst).is_err());
    }

    #[test]
    fn wrong_buffer_sizes_are_rejected() {
        let mut small = vec![0u8; 8];
        assert!(quantize_row_into(&[1.0; 8], &mut small).is_err());
        let bytes = vec![0u8; quantized_row_bytes(8)];
        let mut out = vec![0.0f32; 4];
        assert!(dequantize_row_into(&bytes, 8, &mut out).is_err());
        assert!(row_params(&bytes[..4]).is_err());
    }

    #[test]
    fn quant_table_round_trip_is_bounded() {
        let t = EmbeddingTable::random(64, 16, 2.0, 9).unwrap();
        let q = QuantTable::from_table(&t).unwrap();
        assert_eq!(q.rows(), 64);
        assert_eq!(q.dim(), 16);
        assert_eq!(q.size_bytes(), 64 * quantized_row_bytes(16));
        assert!(q.size_bytes() < t.size_bytes());
        let back = q.dequantize().unwrap();
        for r in 0..64 {
            let (scale, _) = row_params(q.row_bytes_of(r as u64).unwrap()).unwrap();
            let bound = max_abs_error_bound(scale, 2.0);
            for (a, b) in t
                .row(r as u64)
                .unwrap()
                .iter()
                .zip(back.row(r as u64).unwrap())
            {
                assert!(
                    (a - b).abs() <= bound,
                    "row {r}: {a} vs {b} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn dtype_row_bytes_and_names() {
        assert_eq!(EmbedDtype::F32.stored_row_bytes(8), 32);
        assert_eq!(EmbedDtype::Int8.stored_row_bytes(8), 16);
        assert_eq!(EmbedDtype::parse("f32").unwrap(), EmbedDtype::F32);
        assert_eq!(EmbedDtype::parse("int8").unwrap(), EmbedDtype::Int8);
        assert!(EmbedDtype::parse("fp16").is_err());
        assert_eq!(EmbedDtype::Int8.to_string(), "int8");
    }

    #[test]
    fn simd_dequant_accumulate_matches_dequantize() {
        // The engine's fused dequant-accumulate and this module's
        // dequantize_row_into must agree bit-for-bit: same op order.
        let src = [-1.5f32, 0.0, 0.25, 2.75, -0.125, 1.0, 0.5, -2.0];
        let mut bytes = vec![0u8; quantized_row_bytes(src.len())];
        quantize_row_into(&src, &mut bytes).unwrap();
        let (scale, min) = row_params(&bytes).unwrap();
        let mut direct = vec![0.0f32; src.len()];
        dequantize_row_into(&bytes, src.len(), &mut direct).unwrap();
        let mut fused = vec![0.0f32; src.len()];
        crate::simd::add_assign_dequant_u8(
            &mut fused,
            &bytes[QROW_HEADER_BYTES..QROW_HEADER_BYTES + src.len()],
            scale,
            min,
        );
        for (a, b) in fused.iter().zip(direct.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    proptest! {
        /// Round-trip error of every element is bounded by the per-row
        /// scale (plus f32 round-off slack) for arbitrary finite rows.
        #[test]
        fn round_trip_error_bounded_by_scale(
            row in proptest::collection::vec(-1e6f32..1e6, 1..64),
        ) {
            let got = round_trip(&row);
            let mut bytes = vec![0u8; quantized_row_bytes(row.len())];
            quantize_row_into(&row, &mut bytes).unwrap();
            let (scale, _) = row_params(&bytes).unwrap();
            let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let bound = max_abs_error_bound(scale, max_abs);
            for (g, s) in got.iter().zip(row.iter()) {
                prop_assert!(
                    (g - s).abs() <= bound,
                    "{} vs {} exceeds bound {}", g, s, bound
                );
            }
        }

        /// Quantized values always decode within the row's [min, max]
        /// envelope (plus round-off), regardless of input.
        #[test]
        fn dequantized_values_stay_in_envelope(
            row in proptest::collection::vec(-1e4f32..1e4, 1..32),
        ) {
            let got = round_trip(&row);
            let min = row.iter().copied().fold(f32::INFINITY, f32::min);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let slack = max_abs_error_bound(0.0, max.abs().max(min.abs()));
            for g in &got {
                prop_assert!(*g >= min - slack && *g <= max + slack);
            }
        }
    }
}
