//! DLRM training: SGD with binary cross-entropy on click labels.
//!
//! The UpDLRM paper targets *inference*, but its baselines (notably
//! FAE) come from the training world, and a usable DLRM library needs a
//! way to obtain non-random weights. This module implements full
//! backpropagation — top MLP, feature interaction split, bottom MLP and
//! *sparse* embedding-table updates (only rows a batch touches move) —
//! with a numerically stable BCE+sigmoid path.

use crate::error::{ModelError, Result};
use crate::model::Dlrm;
use crate::query::QueryBatch;
use crate::tensor::Matrix;

/// Plain SGD training configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SgdConfig {
    /// Learning rate for the dense layers.
    pub lr_dense: f32,
    /// Learning rate for embedding rows (DLRM practice: sparse
    /// parameters often use a larger rate).
    pub lr_embedding: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr_dense: 0.05,
            lr_embedding: 0.05,
        }
    }
}

/// Outcome of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean binary cross-entropy over the batch before the update.
    pub loss: f32,
    /// Fraction of predictions on the correct side of 0.5.
    pub accuracy: f32,
}

/// Mean binary cross-entropy of predictions `p` against labels `y`.
///
/// # Errors
///
/// Fails if the lengths differ or a label is outside `[0, 1]`.
pub fn bce_loss(p: &[f32], y: &[f32]) -> Result<f32> {
    if p.len() != y.len() {
        return Err(ModelError::InvalidConfig(format!(
            "{} predictions for {} labels",
            p.len(),
            y.len()
        )));
    }
    let mut total = 0.0f64;
    for (&pi, &yi) in p.iter().zip(y.iter()) {
        if !(0.0..=1.0).contains(&yi) {
            return Err(ModelError::InvalidConfig(format!(
                "label {yi} outside [0, 1]"
            )));
        }
        let pi = pi.clamp(1e-7, 1.0 - 1e-7) as f64;
        total -= yi as f64 * pi.ln() + (1.0 - yi as f64) * (1.0 - pi).ln();
    }
    Ok((total / p.len().max(1) as f64) as f32)
}

impl Dlrm {
    /// Runs one SGD step on `batch` with click labels `labels`
    /// (`0.0`/`1.0`, one per sample) and returns the pre-update loss.
    ///
    /// # Errors
    ///
    /// Malformed batches, label count mismatches, out-of-range indices.
    pub fn train_batch(
        &mut self,
        batch: &QueryBatch,
        labels: &[f32],
        sgd: &SgdConfig,
    ) -> Result<TrainStats> {
        batch.validate()?;
        let b = batch.batch_size();
        if labels.len() != b {
            return Err(ModelError::InvalidConfig(format!(
                "{} labels for a batch of {b}",
                labels.len()
            )));
        }

        // ---- forward (cached) ----
        let pooled = self.pool_embeddings(batch)?;
        let dense = Matrix::from_vec(b, self.config().num_dense, batch.dense.clone())?;
        let (dense_feat, bottom_cache) = self.bottom_mlp().forward_cached(&dense)?;
        let mut parts: Vec<&Matrix> = Vec::with_capacity(1 + pooled.len());
        parts.push(&dense_feat);
        parts.extend(pooled.iter());
        let interaction = Matrix::hconcat(&parts)?;
        let (out, top_cache) = self.top_mlp().forward_cached(&interaction)?;
        let p = out.as_slice();

        let loss = bce_loss(p, labels)?;
        let accuracy = p
            .iter()
            .zip(labels.iter())
            .filter(|(&pi, &yi)| (pi >= 0.5) == (yi >= 0.5))
            .count() as f32
            / b.max(1) as f32;

        // ---- backward ----
        // BCE + sigmoid shortcut: dL/d(pre-sigmoid) = (p - y) / B.
        let delta: Vec<f32> = p
            .iter()
            .zip(labels.iter())
            .map(|(&pi, &yi)| (pi - yi) / b as f32)
            .collect();
        let d_logits = Matrix::from_vec(b, 1, delta)?;
        let (d_interaction, top_grads) = self.top_mlp().backward(&top_cache, &d_logits, true)?;

        // Split the interaction gradient: dense feature block first,
        // then one block per table.
        let dim = self.config().embedding_dim;
        let (d_dense_feat, mut d_rest) = d_interaction.hsplit(dim)?;
        let (_, bottom_grads) = self
            .bottom_mlp()
            .backward(&bottom_cache, &d_dense_feat, false)?;

        // ---- apply dense updates ----
        self.top_mlp_mut().apply_grads(&top_grads, sgd.lr_dense);
        self.bottom_mlp_mut()
            .apply_grads(&bottom_grads, sgd.lr_dense);

        // ---- sparse embedding updates ----
        // The pooled embedding is a plain sum, so every contributing row
        // receives the sample's pooled gradient unchanged.
        let num_tables = self.tables().len();
        for t in 0..num_tables {
            let (d_table, rest) = d_rest.hsplit(dim)?;
            d_rest = rest;
            let sparse = &batch.sparse[t];
            let table = &mut self.tables_mut()[t];
            for s in 0..b {
                let g = d_table.row(s);
                for &idx in sparse.sample(s) {
                    let row_start = idx as usize * dim;
                    let data = table.as_mut_slice();
                    for (j, &gj) in g.iter().enumerate() {
                        data[row_start + j] -= sgd.lr_embedding * gj;
                    }
                }
            }
        }
        Ok(TrainStats { loss, accuracy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DlrmConfig;
    use crate::query::SparseInput;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny() -> Dlrm {
        Dlrm::new(DlrmConfig {
            num_dense: 3,
            embedding_dim: 4,
            table_rows: vec![20, 20],
            bottom_hidden: vec![8],
            top_hidden: vec![8],
            seed: 13,
        })
        .unwrap()
    }

    /// A learnable toy task: the label depends on whether the sample
    /// uses "positive" items (< 10) or "negative" items (>= 10).
    fn task_batch(b: usize, seed: u64) -> (QueryBatch, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels = Vec::with_capacity(b);
        let mut s0 = Vec::with_capacity(b);
        let mut s1 = Vec::with_capacity(b);
        let mut dense = Vec::with_capacity(b * 3);
        for _ in 0..b {
            let positive = rng.random_bool(0.5);
            labels.push(if positive { 1.0 } else { 0.0 });
            let base = if positive { 0u64 } else { 10 };
            s0.push(vec![
                base + rng.random_range(0..10),
                base + rng.random_range(0..10),
            ]);
            s1.push(vec![base + rng.random_range(0..10)]);
            for _ in 0..3 {
                dense.push(rng.random_range(-0.5..0.5));
            }
        }
        let batch = QueryBatch::new(
            dense,
            3,
            vec![SparseInput::from_samples(s0), SparseInput::from_samples(s1)],
        )
        .unwrap();
        (batch, labels)
    }

    #[test]
    fn bce_loss_basics() {
        assert!(bce_loss(&[0.9], &[1.0]).unwrap() < bce_loss(&[0.5], &[1.0]).unwrap());
        assert!(bce_loss(&[0.5], &[0.5]).is_ok());
        assert!(bce_loss(&[0.5], &[2.0]).is_err());
        assert!(bce_loss(&[0.5, 0.5], &[1.0]).is_err());
    }

    #[test]
    fn training_reduces_loss_and_learns_the_task() {
        let mut model = tiny();
        let sgd = SgdConfig {
            lr_dense: 0.1,
            lr_embedding: 0.5,
        };
        let (batch, labels) = task_batch(64, 1);
        let first = model.train_batch(&batch, &labels, &sgd).unwrap();
        let mut last = first;
        for step in 0..300 {
            let (b, y) = task_batch(64, 2 + step);
            last = model.train_batch(&b, &y, &sgd).unwrap();
        }
        assert!(
            last.loss < first.loss * 0.7,
            "loss should drop: {} -> {}",
            first.loss,
            last.loss
        );
        assert!(last.accuracy > 0.8, "accuracy {} too low", last.accuracy);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Numerical gradient check on a top-MLP weight and an embedding
        // entry: perturb, re-evaluate the loss, compare to the update
        // the trainer applied.
        let (batch, labels) = task_batch(8, 99);
        let eps = 1e-3f32;
        let sgd = SgdConfig {
            lr_dense: 1.0,
            lr_embedding: 1.0,
        };

        // Analytic gradient via the applied update (lr = 1 ⇒ delta = -grad).
        let base_model = tiny();
        let mut trained = base_model.clone();
        trained.train_batch(&batch, &labels, &sgd).unwrap();
        let w_before = base_model.top_mlp().layers()[0].weight().get(0, 0);
        let w_after = trained.top_mlp().layers()[0].weight().get(0, 0);
        let analytic = w_before - w_after; // == dL/dw

        // Numerical gradient by central difference.
        let loss_with = |delta: f32| {
            let mut m = base_model.clone();
            {
                let w = m.top_mlp_mut().layers_mut()[0].weight_mut();
                let v = w.get(0, 0);
                w.set(0, 0, v + delta);
            }
            bce_loss(&m.forward(&batch).unwrap(), &labels).unwrap()
        };
        let numeric = (loss_with(eps) - loss_with(-eps)) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 2e-3,
            "top-MLP weight gradient: analytic {analytic} vs numeric {numeric}"
        );

        // Embedding entry used by sample 0 of table 0.
        let idx = batch.sparse[0].sample(0)[0] as usize;
        let e_before = base_model.tables()[0].as_slice()[idx * 4];
        let e_after = trained.tables()[0].as_slice()[idx * 4];
        let analytic_e = e_before - e_after;
        let loss_with_e = |delta: f32| {
            let mut m = base_model.clone();
            m.tables_mut()[0].as_mut_slice()[idx * 4] += delta;
            bce_loss(&m.forward(&batch).unwrap(), &labels).unwrap()
        };
        let numeric_e = (loss_with_e(eps) - loss_with_e(-eps)) / (2.0 * eps);
        assert!(
            (analytic_e - numeric_e).abs() < 2e-3,
            "embedding gradient: analytic {analytic_e} vs numeric {numeric_e}"
        );
    }

    #[test]
    fn label_count_is_validated() {
        let mut model = tiny();
        let (batch, _) = task_batch(4, 0);
        assert!(model
            .train_batch(&batch, &[1.0; 3], &SgdConfig::default())
            .is_err());
    }

    #[test]
    fn untouched_rows_do_not_move() {
        let mut model = tiny();
        let before = model.tables()[0].as_slice().to_vec();
        let batch = QueryBatch::new(
            vec![0.0; 3],
            3,
            vec![
                SparseInput::from_samples([vec![0u64]]),
                SparseInput::from_samples([vec![1u64]]),
            ],
        )
        .unwrap();
        model
            .train_batch(&batch, &[1.0], &SgdConfig::default())
            .unwrap();
        let after = model.tables()[0].as_slice();
        // Row 0 moved, row 5 (untouched) did not.
        assert_ne!(&before[0..4], &after[0..4]);
        assert_eq!(&before[20..24], &after[20..24]);
    }
}
