//! # dlrm-model — the DLRM substrate
//!
//! A from-scratch implementation of Meta's Deep Learning Recommendation
//! Model (Naumov et al., 2019) as used by the UpDLRM paper: embedding
//! tables with multi-hot sum-reduction lookups, bottom/top MLPs, feature
//! interaction and a sigmoid CTR head.
//!
//! The [`Dlrm::forward`] path is the *reference implementation*: every
//! accelerated backend in this workspace (PIM, CPU, hybrid, FAE) must
//! produce embedding-layer outputs that agree with it.
//!
//! ## Example
//!
//! ```rust
//! use dlrm_model::{Dlrm, DlrmConfig, QueryBatch, SparseInput};
//!
//! # fn main() -> Result<(), dlrm_model::ModelError> {
//! let config = DlrmConfig {
//!     num_dense: 2,
//!     embedding_dim: 4,
//!     table_rows: vec![10, 10],
//!     bottom_hidden: vec![8],
//!     top_hidden: vec![8],
//!     seed: 1,
//! };
//! let model = Dlrm::new(config)?;
//! let batch = QueryBatch::new(
//!     vec![0.3, -0.1, 0.9, 0.2],
//!     2,
//!     vec![
//!         SparseInput::from_samples([vec![1u64, 3], vec![2]]),
//!         SparseInput::from_samples([vec![4u64], vec![5, 6]]),
//!     ],
//! )?;
//! let ctr = model.forward(&batch)?;
//! assert_eq!(ctr.len(), 2);
//! assert!(ctr.iter().all(|p| (0.0..=1.0).contains(p)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod embedding;
pub mod error;
pub mod hash;
pub mod mlp;
pub mod model;
pub mod quant;
pub mod query;
pub mod simd;
pub mod tensor;
pub mod train;

pub use embedding::{EmbeddingTable, TableView};
pub use error::{ModelError, Result};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use mlp::{Activation, Linear, LinearGrads, Mlp};
pub use model::{Dlrm, DlrmConfig};
pub use quant::{EmbedDtype, QuantTable};
pub use query::{QueryBatch, SparseInput};
pub use simd::SimdTier;
pub use tensor::Matrix;
pub use train::{bce_loss, SgdConfig, TrainStats};
