//! Fully-connected layers: the bottom and top MLPs of DLRM.

use crate::error::{ModelError, Result};
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Activation applied after a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid (used by the final CTR layer).
    Sigmoid,
    /// Identity.
    None,
}

/// One dense layer: `y = act(x W + b)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
    activation: Activation,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights, deterministic in
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Fails if either dimension is zero.
    pub fn xavier(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        seed: u64,
    ) -> Result<Self> {
        if in_dim == 0 || out_dim == 0 {
            return Err(ModelError::InvalidConfig(format!(
                "linear layer dims must be nonzero, got {in_dim}x{out_dim}"
            )));
        }
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..in_dim * out_dim)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Ok(Linear {
            weight: Matrix::from_vec(in_dim, out_dim, data)?,
            bias: vec![0.0; out_dim],
            activation,
        })
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Forward pass over a `batch x in_dim` matrix.
    ///
    /// # Errors
    ///
    /// Fails on a shape mismatch.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, &mut y)?;
        Ok(y)
    }

    /// [`Linear::forward`] writing into a caller-provided output matrix
    /// (reshaped in place, allocation reused) — bit-identical results;
    /// the row-slice [`Matrix::matmul_into`] does the heavy lifting.
    ///
    /// # Errors
    ///
    /// Fails on a shape mismatch.
    pub fn forward_into(&self, x: &Matrix, y: &mut Matrix) -> Result<()> {
        x.matmul_into(&self.weight, y)?;
        y.add_bias(&self.bias)?;
        match self.activation {
            Activation::Relu => y.relu_in_place(),
            Activation::Sigmoid => y.sigmoid_in_place(),
            Activation::None => {}
        }
        Ok(())
    }

    /// Multiply-accumulate count for one sample (used by hardware cost
    /// models).
    pub fn flops_per_sample(&self) -> u64 {
        2 * self.weight.rows() as u64 * self.weight.cols() as u64
    }

    /// Forward pass that also returns the cache needed for
    /// [`Linear::backward`].
    ///
    /// # Errors
    ///
    /// Fails on a shape mismatch.
    pub fn forward_cached(&self, x: &Matrix) -> Result<(Matrix, LinearCache)> {
        let mut pre = x.matmul(&self.weight)?;
        pre.add_bias(&self.bias)?;
        let mut out = pre.clone();
        match self.activation {
            Activation::Relu => out.relu_in_place(),
            Activation::Sigmoid => out.sigmoid_in_place(),
            Activation::None => {}
        }
        Ok((
            out.clone(),
            LinearCache {
                input: x.clone(),
                pre,
                out,
            },
        ))
    }

    /// Backward pass: given `d_out = dL/d(activation output)` (or, with
    /// `skip_activation`, `dL/d(pre-activation)` — the BCE+sigmoid
    /// shortcut), returns `dL/d(input)` and the parameter gradients.
    ///
    /// # Errors
    ///
    /// Fails on shape mismatches between cache and `d_out`.
    pub fn backward(
        &self,
        cache: &LinearCache,
        d_out: &Matrix,
        skip_activation: bool,
    ) -> Result<(Matrix, LinearGrads)> {
        // d_pre = d_out ∘ act'(pre)
        let mut d_pre = d_out.clone();
        if !skip_activation {
            match self.activation {
                Activation::Relu => {
                    for (g, &p) in d_pre.as_mut_slice().iter_mut().zip(cache.pre.as_slice()) {
                        if p <= 0.0 {
                            *g = 0.0;
                        }
                    }
                }
                Activation::Sigmoid => {
                    for (g, &s) in d_pre.as_mut_slice().iter_mut().zip(cache.out.as_slice()) {
                        *g *= s * (1.0 - s);
                    }
                }
                Activation::None => {}
            }
        }
        let d_weight = cache.input.transpose().matmul(&d_pre)?;
        let d_bias = d_pre.column_sums();
        let d_input = d_pre.matmul(&self.weight.transpose())?;
        Ok((
            d_input,
            LinearGrads {
                weight: d_weight,
                bias: d_bias,
            },
        ))
    }

    /// SGD update: `param -= lr * grad`.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shapes do not match this layer.
    pub fn apply_grads(&mut self, grads: &LinearGrads, lr: f32) {
        assert_eq!(grads.weight.rows(), self.weight.rows(), "weight grad shape");
        assert_eq!(grads.weight.cols(), self.weight.cols(), "weight grad shape");
        for (w, &g) in self
            .weight
            .as_mut_slice()
            .iter_mut()
            .zip(grads.weight.as_slice())
        {
            *w -= lr * g;
        }
        for (b, &g) in self.bias.iter_mut().zip(grads.bias.iter()) {
            *b -= lr * g;
        }
    }

    /// Borrow the weight matrix (tests and gradient checks).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutably borrow the weight matrix (gradient checks perturb it).
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }
}

/// Activation/input cache of one [`Linear`] forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearCache {
    input: Matrix,
    pre: Matrix,
    out: Matrix,
}

/// Parameter gradients of one [`Linear`] layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGrads {
    /// `dL/dW`, same shape as the weight matrix.
    pub weight: Matrix,
    /// `dL/db`, one value per output unit.
    pub bias: Vec<f32>,
}

/// A stack of [`Linear`] layers.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP from a list of layer sizes, e.g. `[13, 64, 32]`
    /// gives two layers (13→64, 64→32). Hidden layers use ReLU; the last
    /// layer uses `final_activation`. Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Fails if fewer than two sizes are supplied or any is zero.
    pub fn new(sizes: &[usize], final_activation: Activation, seed: u64) -> Result<Self> {
        if sizes.len() < 2 {
            return Err(ModelError::InvalidConfig(
                "mlp needs at least input and output sizes".into(),
            ));
        }
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for (i, w) in sizes.windows(2).enumerate() {
            let act = if i + 2 == sizes.len() {
                final_activation
            } else {
                Activation::Relu
            };
            layers.push(Linear::xavier(
                w[0],
                w[1],
                act,
                seed.wrapping_add(i as u64),
            )?);
        }
        Ok(Mlp { layers })
    }

    /// Input dimension of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension of the last layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("mlp has layers").out_dim()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Fails on a shape mismatch.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut cur = self.layers[0].forward(x)?;
        for layer in &self.layers[1..] {
            cur = layer.forward(&cur)?;
        }
        Ok(cur)
    }

    /// Total multiply-accumulate count for one sample.
    pub fn flops_per_sample(&self) -> u64 {
        self.layers.iter().map(Linear::flops_per_sample).sum()
    }

    /// Forward pass returning per-layer caches for [`Mlp::backward`].
    ///
    /// # Errors
    ///
    /// Fails on a shape mismatch.
    pub fn forward_cached(&self, x: &Matrix) -> Result<(Matrix, MlpCache)> {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward_cached(&cur)?;
            caches.push(cache);
            cur = out;
        }
        Ok((cur, MlpCache { layers: caches }))
    }

    /// Backward pass. `d_out` is `dL/d(output)`; with
    /// `last_is_pre_activation` it is interpreted as the *pre-activation*
    /// delta of the final layer (the numerically stable BCE+sigmoid
    /// path). Returns `dL/d(input)` and per-layer gradients in layer
    /// order.
    ///
    /// # Errors
    ///
    /// Fails on shape mismatches.
    pub fn backward(
        &self,
        cache: &MlpCache,
        d_out: &Matrix,
        last_is_pre_activation: bool,
    ) -> Result<(Matrix, Vec<LinearGrads>)> {
        let mut grads = vec![None; self.layers.len()];
        let mut d = d_out.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let skip = last_is_pre_activation && i + 1 == self.layers.len();
            let (d_in, g) = layer.backward(&cache.layers[i], &d, skip)?;
            grads[i] = Some(g);
            d = d_in;
        }
        Ok((
            d,
            grads
                .into_iter()
                .map(|g| g.expect("all layers visited"))
                .collect(),
        ))
    }

    /// Applies per-layer SGD updates.
    ///
    /// # Panics
    ///
    /// Panics if `grads` does not match the layer count/shapes.
    pub fn apply_grads(&mut self, grads: &[LinearGrads], lr: f32) {
        assert_eq!(grads.len(), self.layers.len(), "gradient count");
        for (layer, g) in self.layers.iter_mut().zip(grads.iter()) {
            layer.apply_grads(g, lr);
        }
    }

    /// Mutable access to the layers (gradient checks).
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }
}

/// Per-layer caches of one [`Mlp`] forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpCache {
    layers: Vec<LinearCache>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_shapes_flow_through() {
        let mlp = Mlp::new(&[13, 64, 32], Activation::Relu, 0).unwrap();
        assert_eq!(mlp.in_dim(), 13);
        assert_eq!(mlp.out_dim(), 32);
        let x = Matrix::zeros(4, 13);
        let y = mlp.forward(&x).unwrap();
        assert_eq!((y.rows(), y.cols()), (4, 32));
    }

    #[test]
    fn mlp_needs_two_sizes() {
        assert!(Mlp::new(&[8], Activation::None, 0).is_err());
        assert!(Mlp::new(&[], Activation::None, 0).is_err());
    }

    #[test]
    fn relu_output_is_nonnegative() {
        let mlp = Mlp::new(&[4, 8, 8], Activation::Relu, 3).unwrap();
        let x = Matrix::from_vec(2, 4, vec![-5.0, 3.0, -1.0, 0.5, 1.0, -2.0, 4.0, -0.1]).unwrap();
        let y = mlp.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn sigmoid_head_is_probability() {
        let mlp = Mlp::new(&[4, 1], Activation::Sigmoid, 9).unwrap();
        let x = Matrix::from_vec(3, 4, vec![10.0; 12]).unwrap();
        let y = mlp.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Mlp::new(&[4, 4], Activation::None, 11).unwrap();
        let b = Mlp::new(&[4, 4], Activation::None, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn flops_count_macs() {
        let mlp = Mlp::new(&[10, 20, 5], Activation::None, 0).unwrap();
        assert_eq!(mlp.flops_per_sample(), 2 * (10 * 20 + 20 * 5));
    }

    #[test]
    fn forward_shape_mismatch_is_error() {
        let mlp = Mlp::new(&[4, 4], Activation::None, 0).unwrap();
        let x = Matrix::zeros(2, 5);
        assert!(mlp.forward(&x).is_err());
    }

    #[test]
    fn forward_into_matches_forward_bit_for_bit() {
        let layer = Linear::xavier(6, 5, Activation::Relu, 21).unwrap();
        let x = Matrix::from_vec(
            3,
            6,
            (0..18).map(|i| (i as f32 - 9.0) / 3.0).collect::<Vec<_>>(),
        )
        .unwrap();
        let fresh = layer.forward(&x).unwrap();
        // A reused (previously differently-shaped) buffer must converge
        // to the same bits.
        let mut reused = Matrix::zeros(7, 2);
        layer.forward_into(&x, &mut reused).unwrap();
        assert_eq!(fresh, reused);
        for (a, b) in fresh.as_slice().iter().zip(reused.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
