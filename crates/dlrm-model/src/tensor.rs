//! Minimal row-major matrix type and the dense ops DLRM needs.
//!
//! The workspace implements its own linear algebra (no external crates):
//! DLRM's dense side only needs matmul, bias add, ReLU and sigmoid over
//! small matrices, so a simple cache-friendly row-major implementation
//! suffices.

use crate::error::{ModelError, Result};
use crate::simd;

/// A row-major `rows x cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Reshapes the matrix in place to `rows x cols` with every element
    /// zeroed, reusing the existing allocation. Capacity only grows, so
    /// once a matrix has seen its largest shape, later `reset_zeroed`
    /// calls are allocation-free — this is what lets pooled-output
    /// recycling survive varying batch sizes.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Fails if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(ModelError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self @ other` — matrix multiplication.
    ///
    /// # Errors
    ///
    /// Fails if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// `self @ other` written into the caller-provided `out`, which is
    /// reshaped and zeroed in place (its allocation is reused when the
    /// capacity suffices) — the allocation-free form of
    /// [`Matrix::matmul`], bit-identical to it.
    ///
    /// The i-k-j loop order streams whole rows of `other` against one
    /// output row slice (cache friendly, dispatched to the runtime
    /// SIMD axpy) and skips zero left-hand entries; each output element
    /// still accumulates its products in ascending-`k` order with a
    /// multiply-then-add per product (no FMA), so the result matches
    /// the naive i-j-k ordering bit for bit on every dispatch tier.
    ///
    /// # Errors
    ///
    /// Fails if `self.cols != other.rows`; `out` is untouched then.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(ModelError::ShapeMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        out.rows = self.rows;
        out.cols = other.cols;
        out.data.clear();
        out.data.resize(self.rows * other.cols, 0.0);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                simd::axpy(out_row, a, b_row);
            }
        }
        Ok(())
    }

    /// Adds a bias row vector to every row in place.
    ///
    /// # Errors
    ///
    /// Fails if `bias.len() != cols`.
    pub fn add_bias(&mut self, bias: &[f32]) -> Result<()> {
        if bias.len() != self.cols {
            return Err(ModelError::ShapeMismatch {
                op: "add_bias",
                lhs: (self.rows, self.cols),
                rhs: (1, bias.len()),
            });
        }
        for r in 0..self.rows {
            simd::add_assign(self.row_mut(r), bias);
        }
        Ok(())
    }

    /// Applies ReLU in place.
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Applies the logistic sigmoid in place.
    pub fn sigmoid_in_place(&mut self) {
        for v in &mut self.data {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
    }

    /// Horizontally concatenates matrices with equal row counts.
    ///
    /// # Errors
    ///
    /// Fails if row counts differ or `parts` is empty.
    pub fn hconcat(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts
            .first()
            .ok_or(ModelError::InvalidConfig("hconcat of zero matrices".into()))?;
        let rows = first.rows;
        let total_cols: usize = parts.iter().map(|m| m.cols).sum();
        for m in parts {
            if m.rows != rows {
                return Err(ModelError::ShapeMismatch {
                    op: "hconcat",
                    lhs: (rows, first.cols),
                    rhs: (m.rows, m.cols),
                });
            }
        }
        let mut out = Matrix::zeros(rows, total_cols);
        for r in 0..rows {
            let mut c0 = 0;
            for m in parts {
                out.data[r * total_cols + c0..r * total_cols + c0 + m.cols]
                    .copy_from_slice(m.row(r));
                c0 += m.cols;
            }
        }
        Ok(out)
    }

    /// Consumes the matrix and returns the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Sums each column into a length-`cols` vector (used for bias
    /// gradients).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            simd::add_assign(&mut out, self.row(r));
        }
        out
    }

    /// Splits the matrix horizontally at `col`, returning the left and
    /// right parts.
    ///
    /// # Errors
    ///
    /// Fails if `col > cols`.
    pub fn hsplit(&self, col: usize) -> Result<(Matrix, Matrix)> {
        if col > self.cols {
            return Err(ModelError::ShapeMismatch {
                op: "hsplit",
                lhs: (self.rows, self.cols),
                rhs: (0, col),
            });
        }
        let mut left = Matrix::zeros(self.rows, col);
        let mut right = Matrix::zeros(self.rows, self.cols - col);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..col]);
            right.row_mut(r).copy_from_slice(&self.row(r)[col..]);
        }
        Ok((left, right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(ModelError::ShapeMismatch { .. })
        ));
        let mut out = Matrix::from_vec(1, 1, vec![42.0]).unwrap();
        assert!(a.matmul_into(&b, &mut out).is_err());
        // `out` untouched on error.
        assert_eq!(out.as_slice(), &[42.0]);
    }

    /// Naive i-j-k matmul with the same zero-skip — the "old ordering"
    /// reference. Every output element accumulates its products in
    /// ascending-k order in both versions, so they must agree bit for
    /// bit, not just approximately.
    fn matmul_ijk(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut sum = 0.0f32;
                for k in 0..a.cols() {
                    let av = a.get(i, k);
                    if av == 0.0 {
                        continue;
                    }
                    sum += av * b.get(k, j);
                }
                out.set(i, j, sum);
            }
        }
        out
    }

    /// Deterministic ill-conditioned-ish fill with sprinkled zeros so
    /// the zero-skip path is exercised.
    fn fill(rows: usize, cols: usize, seed: u32) -> Matrix {
        let data = (0..rows * cols)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                if x.is_multiple_of(7) {
                    0.0
                } else {
                    (x % 1000) as f32 / 99.0 - 5.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn matmul_ikj_bit_identical_to_ijk_reference() {
        for (m, k, n, seed) in [(4, 7, 5, 1), (1, 16, 1, 2), (9, 3, 8, 3), (6, 6, 6, 4)] {
            let a = fill(m, k, seed);
            let b = fill(k, n, seed.wrapping_add(100));
            let fast = a.matmul(&b).unwrap();
            let reference = matmul_ijk(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "ikj diverged from ijk");
            }
        }
    }

    #[test]
    fn matmul_scalar_and_simd_are_bit_identical() {
        // The dispatched axpy must reproduce the scalar loop exactly
        // on whatever tier this machine detects.
        use crate::simd::{self, SimdTier};
        let _guard = simd::test_tier_lock();
        for (m, k, n, seed) in [(4, 7, 5, 11), (8, 32, 16, 12), (3, 5, 9, 13)] {
            let a = fill(m, k, seed);
            let b = fill(k, n, seed.wrapping_add(100));
            simd::force_tier(Some(SimdTier::Scalar));
            let scalar = a.matmul(&b).unwrap();
            let mut scalar_bias = scalar.clone();
            scalar_bias.add_bias(&vec![0.25; n]).unwrap();
            let scalar_sums = scalar.column_sums();
            simd::force_tier(None);
            let vector = a.matmul(&b).unwrap();
            let mut vector_bias = vector.clone();
            vector_bias.add_bias(&vec![0.25; n]).unwrap();
            let vector_sums = vector.column_sums();
            for (x, y) in scalar.as_slice().iter().zip(vector.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "matmul diverged across tiers");
            }
            for (x, y) in scalar_bias.as_slice().iter().zip(vector_bias.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "add_bias diverged across tiers");
            }
            for (x, y) in scalar_sums.iter().zip(vector_sums.iter()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "column_sums diverged across tiers"
                );
            }
        }
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_matmul() {
        let mut out = Matrix::zeros(0, 0);
        for seed in 0..4u32 {
            let a = fill(5, 6, seed);
            let b = fill(6, 4, seed + 50);
            a.matmul_into(&b, &mut out).unwrap();
            assert_eq!(out, a.matmul(&b).unwrap());
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn bias_and_relu() {
        let mut m = Matrix::from_vec(2, 2, vec![-1.0, 1.0, -3.0, 3.0]).unwrap();
        m.add_bias(&[0.5, -0.5]).unwrap();
        m.relu_in_place();
        assert_eq!(m.as_slice(), &[0.0, 0.5, 0.0, 2.5]);
    }

    #[test]
    fn bias_shape_checked() {
        let mut m = Matrix::zeros(1, 3);
        assert!(m.add_bias(&[0.0; 2]).is_err());
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        let mut m = Matrix::from_vec(1, 3, vec![-100.0, 0.0, 100.0]).unwrap();
        m.sigmoid_in_place();
        let s = m.as_slice();
        assert!(s[0] < 1e-6);
        assert!((s[1] - 0.5).abs() < 1e-6);
        assert!(s[2] > 1.0 - 1e-6);
    }

    #[test]
    fn hconcat_layout() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = Matrix::hconcat(&[&a, &b]).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.as_slice(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn hconcat_rejects_ragged_rows() {
        let a = Matrix::zeros(2, 1);
        let b = Matrix::zeros(3, 1);
        assert!(Matrix::hconcat(&[&a, &b]).is_err());
    }

    #[test]
    fn hconcat_rejects_empty() {
        assert!(Matrix::hconcat(&[]).is_err());
    }
}
