//! Embedding tables and the multi-hot lookup-and-reduce operation.
//!
//! An embedding table (EMT) maps categorical values to dense vectors: row
//! `i` is the embedding of category value `i`. DLRM pools a sample's
//! multi-hot lookups with a sum reduction ("embedding bag"). This module
//! is the *reference* implementation every accelerated backend is
//! validated against.

use crate::error::{ModelError, Result};
use crate::query::SparseInput;
use crate::simd;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An embedding table: `rows x dim` f32 vectors.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EmbeddingTable {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates a zeroed table.
    ///
    /// # Errors
    ///
    /// Fails if `rows` or `dim` is zero.
    pub fn zeros(rows: usize, dim: usize) -> Result<Self> {
        if rows == 0 || dim == 0 {
            return Err(ModelError::InvalidConfig(format!(
                "embedding table must be non-empty, got {rows}x{dim}"
            )));
        }
        Ok(EmbeddingTable {
            rows,
            dim,
            data: vec![0.0; rows * dim],
        })
    }

    /// Creates a table with uniform random values in `[-scale, scale)`,
    /// deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Fails if `rows` or `dim` is zero.
    pub fn random(rows: usize, dim: usize, scale: f32, seed: u64) -> Result<Self> {
        let mut t = Self::zeros(rows, dim)?;
        let mut rng = StdRng::seed_from_u64(seed);
        for v in &mut t.data {
            *v = rng.random_range(-scale..scale);
        }
        Ok(t)
    }

    /// Creates a table whose values are small *integers* stored as f32.
    ///
    /// Integer-valued embeddings make fp32 summation exact (up to 2^24),
    /// which lets tests assert bit-exact agreement between backends that
    /// reduce in different orders. Deterministic from `seed`.
    ///
    /// # Errors
    ///
    /// Fails if `rows` or `dim` is zero.
    pub fn random_integer_valued(rows: usize, dim: usize, max_abs: i32, seed: u64) -> Result<Self> {
        let mut t = Self::zeros(rows, dim)?;
        let mut rng = StdRng::seed_from_u64(seed);
        for v in &mut t.data {
            *v = rng.random_range(-max_abs..=max_abs) as f32;
        }
        Ok(t)
    }

    /// Number of rows (distinct categorical values).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Table size in bytes (f32 storage).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Borrow row `i`'s embedding vector.
    ///
    /// # Errors
    ///
    /// Fails if `i` is out of range.
    pub fn row(&self, i: u64) -> Result<&[f32]> {
        let idx = usize::try_from(i).ok().filter(|&v| v < self.rows).ok_or(
            ModelError::IndexOutOfRange {
                index: i,
                rows: self.rows,
            },
        )?;
        Ok(&self.data[idx * self.dim..(idx + 1) * self.dim])
    }

    /// Raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw storage (e.g. to plant specific vectors in tests).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Multi-hot lookup with sum reduction: returns a `batch x dim`
    /// matrix of pooled embeddings (the "embedding bag" op).
    ///
    /// # Errors
    ///
    /// Fails on malformed offsets or out-of-range indices.
    pub fn bag_sum(&self, input: &SparseInput) -> Result<Matrix> {
        input.validate()?;
        let batch = input.batch_size();
        let mut out = Matrix::zeros(batch, self.dim);
        for s in 0..batch {
            let acc = out.row_mut(s);
            for &idx in input.sample(s) {
                let row = self.row(idx)?;
                simd::add_assign(acc, row);
            }
        }
        Ok(out)
    }

    /// Sum of an arbitrary set of rows — the "partial sum" primitive the
    /// partial-sum caches store.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range indices.
    pub fn partial_sum(&self, indices: &[u64]) -> Result<Vec<f32>> {
        let mut acc = vec![0.0f32; self.dim];
        for &idx in indices {
            let row = self.row(idx)?;
            simd::add_assign(&mut acc, row);
        }
        Ok(acc)
    }

    /// Serializes the table rows into little-endian bytes, the layout
    /// the PIM backend loads into MRAM.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// A borrowed [`TableView`] over this table's storage.
    pub fn view(&self) -> TableView<'_> {
        TableView {
            rows: self.rows,
            dim: self.dim,
            data: &self.data,
        }
    }

    /// Copies a [`TableView`] (e.g. one borrowed from a memory-mapped
    /// packed file) into an owned table — one `memcpy`, no parsing.
    ///
    /// # Errors
    ///
    /// Fails if the view is empty.
    pub fn from_view(view: &TableView<'_>) -> Result<Self> {
        let mut t = Self::zeros(view.rows, view.dim)?;
        t.data.copy_from_slice(view.data);
        Ok(t)
    }
}

/// A borrowed, read-only embedding table: the zero-copy form handed
/// out by the packed on-disk format (`workloads::pack`), whose
/// memory-mapped f32 sections serve lookups without ever being copied
/// into the heap. Mirrors the read API of [`EmbeddingTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableView<'a> {
    rows: usize,
    dim: usize,
    data: &'a [f32],
}

impl<'a> TableView<'a> {
    /// Wraps `data` as a `rows x dim` table view.
    ///
    /// # Errors
    ///
    /// Fails if the dimensions are zero or do not match `data`'s length.
    pub fn new(rows: usize, dim: usize, data: &'a [f32]) -> Result<Self> {
        if rows == 0 || dim == 0 || data.len() != rows * dim {
            return Err(ModelError::InvalidConfig(format!(
                "table view must be non-empty and exactly rows*dim, got {rows}x{dim} over {}",
                data.len()
            )));
        }
        Ok(TableView { rows, dim, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }

    /// Borrow row `i`'s embedding vector.
    ///
    /// # Errors
    ///
    /// Fails if `i` is out of range.
    pub fn row(&self, i: u64) -> Result<&'a [f32]> {
        let idx = usize::try_from(i).ok().filter(|&v| v < self.rows).ok_or(
            ModelError::IndexOutOfRange {
                index: i,
                rows: self.rows,
            },
        )?;
        Ok(&self.data[idx * self.dim..(idx + 1) * self.dim])
    }

    /// Sum of an arbitrary set of rows — bit-identical to
    /// [`EmbeddingTable::partial_sum`] on the same data.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range indices.
    pub fn partial_sum(&self, indices: &[u64]) -> Result<Vec<f32>> {
        let mut acc = vec![0.0f32; self.dim];
        for &idx in indices {
            let row = self.row(idx)?;
            simd::add_assign(&mut acc, row);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_3x2() -> EmbeddingTable {
        let mut t = EmbeddingTable::zeros(3, 2).unwrap();
        t.as_mut_slice()
            .copy_from_slice(&[1.0, 2.0, 10.0, 20.0, 100.0, 200.0]);
        t
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(EmbeddingTable::zeros(0, 4).is_err());
        assert!(EmbeddingTable::zeros(4, 0).is_err());
    }

    #[test]
    fn row_access_and_bounds() {
        let t = table_3x2();
        assert_eq!(t.row(1).unwrap(), &[10.0, 20.0]);
        assert!(matches!(t.row(3), Err(ModelError::IndexOutOfRange { .. })));
    }

    #[test]
    fn bag_sum_pools_per_sample() {
        let t = table_3x2();
        let q = SparseInput::from_samples([vec![0u64, 2], vec![1]]);
        let out = t.bag_sum(&q).unwrap();
        assert_eq!(out.row(0), &[101.0, 202.0]);
        assert_eq!(out.row(1), &[10.0, 20.0]);
    }

    #[test]
    fn bag_sum_empty_sample_is_zero_vector() {
        let t = table_3x2();
        let q = SparseInput::from_samples([Vec::<u64>::new()]);
        let out = t.bag_sum(&q).unwrap();
        assert_eq!(out.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn bag_sum_checks_indices() {
        let t = table_3x2();
        let q = SparseInput::from_samples([vec![99u64]]);
        assert!(t.bag_sum(&q).is_err());
    }

    #[test]
    fn partial_sum_matches_manual() {
        let t = table_3x2();
        assert_eq!(t.partial_sum(&[0, 1, 2]).unwrap(), vec![111.0, 222.0]);
        assert_eq!(t.partial_sum(&[]).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = EmbeddingTable::random(16, 4, 0.5, 42).unwrap();
        let b = EmbeddingTable::random(16, 4, 0.5, 42).unwrap();
        let c = EmbeddingTable::random(16, 4, 0.5, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    fn integer_valued_tables_have_integer_entries() {
        let t = EmbeddingTable::random_integer_valued(32, 8, 3, 7).unwrap();
        assert!(t
            .as_slice()
            .iter()
            .all(|v| v.fract() == 0.0 && v.abs() <= 3.0));
    }

    #[test]
    fn le_bytes_round_trip() {
        let t = table_3x2();
        let bytes = t.to_le_bytes();
        assert_eq!(bytes.len(), t.size_bytes());
        let first = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        assert_eq!(first, 1.0);
    }
}
