//! Runtime-dispatched SIMD primitives for the embedding/MLP hot loops.
//!
//! Every serving-path inner loop — the matmul axpy, the kernel's
//! row accumulation, `gather_combine`'s little-endian partial-sum adds
//! and the dequant-on-gather fuse — funnels through the handful of
//! primitives in this module. Each primitive picks an implementation
//! once per process from the CPU's capabilities:
//!
//! * **x86_64** — AVX-512 when `is_x86_feature_detected!("avx512f")`
//!   says so, else AVX2 when `is_x86_feature_detected!("avx2")` says
//!   so, otherwise SSE2 (part of the x86_64 baseline, always
//!   available);
//! * **aarch64** — NEON (part of the aarch64 baseline);
//! * anything else, or `UPDLRM_FORCE_SCALAR=1` in the environment — the
//!   scalar reference loops.
//!
//! **Bit-exactness contract.** All primitives are elementwise: lane `i`
//! of the output depends only on lane `i` of the inputs, and every
//! implementation performs the *same* sequence of IEEE-754 single
//! operations per lane (multiply, then add — never a fused
//! multiply-add, which skips the intermediate rounding). Vectorizing
//! therefore changes nothing about the results: scalar and SIMD are
//! bit-identical on every input, which the differential tests in this
//! module and in every caller pin down. That is also why the dispatch
//! tier is *not* recorded in any modeled output — only wall-clock
//! speed changes with the tier.

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set tier a primitive dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// Scalar reference loops (fallback, or forced via
    /// `UPDLRM_FORCE_SCALAR=1`).
    Scalar,
    /// 128-bit SSE2 (x86_64 baseline).
    Sse2,
    /// 256-bit AVX2.
    Avx2,
    /// 512-bit AVX-512 (F subset only — no masked tails, the AVX2
    /// implementations handle remainders).
    Avx512,
    /// 128-bit NEON (aarch64 baseline).
    Neon,
}

impl SimdTier {
    /// Stable lower-case name, recorded in bench rows
    /// (`"avx512" | "avx2" | "sse2" | "neon" | "scalar"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
            SimdTier::Neon => "neon",
        }
    }
}

/// Cached tier: 0 = undetected, else `SimdTier as u8 + 1`.
static TIER: AtomicU8 = AtomicU8::new(0);

fn detect() -> SimdTier {
    if std::env::var_os("UPDLRM_FORCE_SCALAR").is_some_and(|v| v == "1") {
        return SimdTier::Scalar;
    }
    detect_capability()
}

fn decode(v: u8) -> SimdTier {
    match v {
        2 => SimdTier::Sse2,
        3 => SimdTier::Avx2,
        4 => SimdTier::Avx512,
        5 => SimdTier::Neon,
        _ => SimdTier::Scalar,
    }
}

/// The tier every primitive currently dispatches to (detected once,
/// then cached; honors `UPDLRM_FORCE_SCALAR=1` at first use).
#[inline]
pub fn tier() -> SimdTier {
    match TIER.load(Ordering::Relaxed) {
        0 => {
            let t = detect();
            TIER.store(t as u8 + 1, Ordering::Relaxed);
            t
        }
        v => decode(v - 1),
    }
}

/// Stable name of the active tier (see [`SimdTier::as_str`]).
pub fn tier_name() -> &'static str {
    tier().as_str()
}

/// Overrides the dispatch tier for differential testing and in-bench
/// scalar/SIMD identity checks. `Some(t)` forces `t` (requests above
/// the machine's capability fall back to scalar rather than faulting);
/// `None` re-runs detection. Not intended for production use — the
/// detected tier is always correct.
pub fn force_tier(t: Option<SimdTier>) {
    let t = match t {
        Some(want) => {
            let have = detect_capability();
            if tier_supported(want, have) {
                want
            } else {
                SimdTier::Scalar
            }
        }
        None => detect(),
    };
    TIER.store(t as u8 + 1, Ordering::Relaxed);
}

/// Detection ignoring the `UPDLRM_FORCE_SCALAR` override: what the CPU
/// can actually execute.
fn detect_capability() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        // The 512-bit tier tails into the AVX2 implementations, so it
        // needs both features (every real AVX-512F part has AVX2).
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            SimdTier::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2") {
            SimdTier::Avx2
        } else {
            SimdTier::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdTier::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdTier::Scalar
    }
}

fn tier_supported(want: SimdTier, have: SimdTier) -> bool {
    match want {
        SimdTier::Scalar => true,
        SimdTier::Sse2 => matches!(have, SimdTier::Sse2 | SimdTier::Avx2 | SimdTier::Avx512),
        SimdTier::Avx2 => matches!(have, SimdTier::Avx2 | SimdTier::Avx512),
        SimdTier::Avx512 => have == SimdTier::Avx512,
        SimdTier::Neon => have == SimdTier::Neon,
    }
}

/// The dispatch tier is process-global, so tests anywhere in this
/// crate that override it with [`force_tier`] serialize on this lock.
/// Continuing past a poisoned lock is fine: every user restores
/// detection before releasing.
#[cfg(test)]
pub(crate) fn test_tier_lock() -> std::sync::MutexGuard<'static, ()> {
    static TIER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Scalar reference implementations. These define the semantics; every
// SIMD variant must match them bit-for-bit.
// ---------------------------------------------------------------------------

mod scalar {
    #[inline]
    pub fn add_assign(out: &mut [f32], x: &[f32]) {
        for (o, &v) in out.iter_mut().zip(x.iter()) {
            *o += v;
        }
    }

    #[inline]
    pub fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
        for (o, &v) in out.iter_mut().zip(x.iter()) {
            *o += a * v;
        }
    }

    #[inline]
    pub fn add_assign_le(out: &mut [f32], bytes: &[u8]) {
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o += f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
    }

    #[inline]
    pub fn add_assign_into_le(dst: &mut [u8], add: &[f32]) {
        for (d, &v) in dst.chunks_exact_mut(4).zip(add.iter()) {
            let cur = f32::from_le_bytes([d[0], d[1], d[2], d[3]]);
            d.copy_from_slice(&(cur + v).to_le_bytes());
        }
    }

    #[inline]
    pub fn add_assign_dequant_u8(out: &mut [f32], q: &[u8], scale: f32, min: f32) {
        for (o, &b) in out.iter_mut().zip(q.iter()) {
            *o += min + scale * b as f32;
        }
    }
}

// ---------------------------------------------------------------------------
// x86_64: SSE2 (baseline, safe to call unconditionally) and AVX2
// (runtime-gated). Loads/stores are unaligned variants throughout; the
// byte-slice entry points reinterpret little-endian f32 bytes, which on
// this (little-endian) architecture is exactly `from_le_bytes`.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    #[inline]
    pub fn add_assign_sse2(out: &mut [f32], x: &[f32]) {
        let n = out.len().min(x.len());
        let mut i = 0;
        unsafe {
            while i + 4 <= n {
                let o = _mm_loadu_ps(out.as_ptr().add(i));
                let v = _mm_loadu_ps(x.as_ptr().add(i));
                _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_add_ps(o, v));
                i += 4;
            }
        }
        super::scalar::add_assign(&mut out[i..n], &x[i..n]);
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_avx2(out: &mut [f32], x: &[f32]) {
        let n = out.len().min(x.len());
        let mut i = 0;
        while i + 8 <= n {
            let o = _mm256_loadu_ps(out.as_ptr().add(i));
            let v = _mm256_loadu_ps(x.as_ptr().add(i));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(o, v));
            i += 8;
        }
        add_assign_sse2(&mut out[i..n], &x[i..n]);
    }

    #[inline]
    pub fn axpy_sse2(out: &mut [f32], a: f32, x: &[f32]) {
        let n = out.len().min(x.len());
        let mut i = 0;
        unsafe {
            let av = _mm_set1_ps(a);
            while i + 4 <= n {
                let o = _mm_loadu_ps(out.as_ptr().add(i));
                let v = _mm_loadu_ps(x.as_ptr().add(i));
                // Multiply then add — no FMA, so each lane rounds
                // exactly like the scalar `o + a * v`.
                let p = _mm_mul_ps(av, v);
                _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_add_ps(o, p));
                i += 4;
            }
        }
        super::scalar::axpy(&mut out[i..n], a, &x[i..n]);
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(out: &mut [f32], a: f32, x: &[f32]) {
        let n = out.len().min(x.len());
        let mut i = 0;
        let av = _mm256_set1_ps(a);
        while i + 8 <= n {
            let o = _mm256_loadu_ps(out.as_ptr().add(i));
            let v = _mm256_loadu_ps(x.as_ptr().add(i));
            let p = _mm256_mul_ps(av, v);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(o, p));
            i += 8;
        }
        axpy_sse2(&mut out[i..n], a, &x[i..n]);
    }

    #[inline]
    pub fn add_assign_le_sse2(out: &mut [f32], bytes: &[u8]) {
        let n = out.len().min(bytes.len() / 4);
        let mut i = 0;
        unsafe {
            while i + 4 <= n {
                let o = _mm_loadu_ps(out.as_ptr().add(i));
                let v = _mm_loadu_ps(bytes.as_ptr().add(i * 4).cast::<f32>());
                _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_add_ps(o, v));
                i += 4;
            }
        }
        super::scalar::add_assign_le(&mut out[i..n], &bytes[i * 4..n * 4]);
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_le_avx2(out: &mut [f32], bytes: &[u8]) {
        let n = out.len().min(bytes.len() / 4);
        let mut i = 0;
        while i + 8 <= n {
            let o = _mm256_loadu_ps(out.as_ptr().add(i));
            let v = _mm256_loadu_ps(bytes.as_ptr().add(i * 4).cast::<f32>());
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(o, v));
            i += 8;
        }
        add_assign_le_sse2(&mut out[i..n], &bytes[i * 4..n * 4]);
    }

    #[inline]
    pub fn add_assign_into_le_sse2(dst: &mut [u8], add: &[f32]) {
        let n = add.len().min(dst.len() / 4);
        let mut i = 0;
        unsafe {
            while i + 4 <= n {
                let cur = _mm_loadu_ps(dst.as_ptr().add(i * 4).cast::<f32>());
                let v = _mm_loadu_ps(add.as_ptr().add(i));
                _mm_storeu_ps(
                    dst.as_mut_ptr().add(i * 4).cast::<f32>(),
                    _mm_add_ps(cur, v),
                );
                i += 4;
            }
        }
        super::scalar::add_assign_into_le(&mut dst[i * 4..n * 4], &add[i..n]);
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_into_le_avx2(dst: &mut [u8], add: &[f32]) {
        let n = add.len().min(dst.len() / 4);
        let mut i = 0;
        while i + 8 <= n {
            let cur = _mm256_loadu_ps(dst.as_ptr().add(i * 4).cast::<f32>());
            let v = _mm256_loadu_ps(add.as_ptr().add(i));
            _mm256_storeu_ps(
                dst.as_mut_ptr().add(i * 4).cast::<f32>(),
                _mm256_add_ps(cur, v),
            );
            i += 8;
        }
        add_assign_into_le_sse2(&mut dst[i * 4..n * 4], &add[i..n]);
    }

    #[inline]
    pub fn add_assign_dequant_u8_sse2(out: &mut [f32], q: &[u8], scale: f32, min: f32) {
        let n = out.len().min(q.len());
        let mut i = 0;
        unsafe {
            let sv = _mm_set1_ps(scale);
            let mv = _mm_set1_ps(min);
            let zero = _mm_setzero_si128();
            while i + 4 <= n {
                // Widen 4 u8 lanes to i32 (SSE2: zero-extend in two
                // unpack steps), convert to f32, then min + scale * q
                // in the exact scalar op order.
                let raw =
                    _mm_cvtsi32_si128(i32::from_le_bytes([q[i], q[i + 1], q[i + 2], q[i + 3]]));
                let w16 = _mm_unpacklo_epi8(raw, zero);
                let w32 = _mm_unpacklo_epi16(w16, zero);
                let f = _mm_cvtepi32_ps(w32);
                let t = _mm_add_ps(mv, _mm_mul_ps(sv, f));
                let o = _mm_loadu_ps(out.as_ptr().add(i));
                _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_add_ps(o, t));
                i += 4;
            }
        }
        super::scalar::add_assign_dequant_u8(&mut out[i..n], &q[i..n], scale, min);
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_dequant_u8_avx2(out: &mut [f32], q: &[u8], scale: f32, min: f32) {
        let n = out.len().min(q.len());
        let mut i = 0;
        let sv = _mm256_set1_ps(scale);
        let mv = _mm256_set1_ps(min);
        while i + 8 <= n {
            let raw = _mm_loadl_epi64(q.as_ptr().add(i).cast::<__m128i>());
            let w32 = _mm256_cvtepu8_epi32(raw);
            let f = _mm256_cvtepi32_ps(w32);
            let t = _mm256_add_ps(mv, _mm256_mul_ps(sv, f));
            let o = _mm256_loadu_ps(out.as_ptr().add(i));
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(o, t));
            i += 8;
        }
        add_assign_dequant_u8_sse2(&mut out[i..n], &q[i..n], scale, min);
    }

    // 512-bit variants (AVX-512F). `vaddps`/`vmulps` on zmm registers
    // are the same per-lane IEEE single operations as their xmm/ymm
    // forms, so these remain bit-identical to the scalar reference.
    // Tails (< 16 lanes) fall through to the AVX2 implementations —
    // the functions enable both features so those calls are direct.

    /// # Safety
    /// Caller must have verified AVX-512F (and AVX2) support at runtime.
    #[target_feature(enable = "avx512f", enable = "avx2")]
    pub unsafe fn add_assign_avx512(out: &mut [f32], x: &[f32]) {
        let n = out.len().min(x.len());
        let mut i = 0;
        while i + 16 <= n {
            let o = _mm512_loadu_ps(out.as_ptr().add(i));
            let v = _mm512_loadu_ps(x.as_ptr().add(i));
            _mm512_storeu_ps(out.as_mut_ptr().add(i), _mm512_add_ps(o, v));
            i += 16;
        }
        add_assign_avx2(&mut out[i..n], &x[i..n]);
    }

    /// # Safety
    /// Caller must have verified AVX-512F (and AVX2) support at runtime.
    #[target_feature(enable = "avx512f", enable = "avx2")]
    pub unsafe fn axpy_avx512(out: &mut [f32], a: f32, x: &[f32]) {
        let n = out.len().min(x.len());
        let mut i = 0;
        let av = _mm512_set1_ps(a);
        while i + 16 <= n {
            let o = _mm512_loadu_ps(out.as_ptr().add(i));
            let v = _mm512_loadu_ps(x.as_ptr().add(i));
            // Multiply then add — no FMA, matching the scalar rounding.
            let p = _mm512_mul_ps(av, v);
            _mm512_storeu_ps(out.as_mut_ptr().add(i), _mm512_add_ps(o, p));
            i += 16;
        }
        axpy_avx2(&mut out[i..n], a, &x[i..n]);
    }

    /// # Safety
    /// Caller must have verified AVX-512F (and AVX2) support at runtime.
    #[target_feature(enable = "avx512f", enable = "avx2")]
    pub unsafe fn add_assign_le_avx512(out: &mut [f32], bytes: &[u8]) {
        let n = out.len().min(bytes.len() / 4);
        let mut i = 0;
        while i + 16 <= n {
            let o = _mm512_loadu_ps(out.as_ptr().add(i));
            let v = _mm512_loadu_ps(bytes.as_ptr().add(i * 4).cast::<f32>());
            _mm512_storeu_ps(out.as_mut_ptr().add(i), _mm512_add_ps(o, v));
            i += 16;
        }
        add_assign_le_avx2(&mut out[i..n], &bytes[i * 4..n * 4]);
    }

    /// # Safety
    /// Caller must have verified AVX-512F (and AVX2) support at runtime.
    #[target_feature(enable = "avx512f", enable = "avx2")]
    pub unsafe fn add_assign_into_le_avx512(dst: &mut [u8], add: &[f32]) {
        let n = add.len().min(dst.len() / 4);
        let mut i = 0;
        while i + 16 <= n {
            let cur = _mm512_loadu_ps(dst.as_ptr().add(i * 4).cast::<f32>());
            let v = _mm512_loadu_ps(add.as_ptr().add(i));
            _mm512_storeu_ps(
                dst.as_mut_ptr().add(i * 4).cast::<f32>(),
                _mm512_add_ps(cur, v),
            );
            i += 16;
        }
        add_assign_into_le_avx2(&mut dst[i * 4..n * 4], &add[i..n]);
    }

    /// # Safety
    /// Caller must have verified AVX-512F (and AVX2) support at runtime.
    #[target_feature(enable = "avx512f", enable = "avx2")]
    pub unsafe fn add_assign_dequant_u8_avx512(out: &mut [f32], q: &[u8], scale: f32, min: f32) {
        let n = out.len().min(q.len());
        let mut i = 0;
        let sv = _mm512_set1_ps(scale);
        let mv = _mm512_set1_ps(min);
        while i + 16 <= n {
            let raw = _mm_loadu_si128(q.as_ptr().add(i).cast::<__m128i>());
            let w32 = _mm512_cvtepu8_epi32(raw);
            let f = _mm512_cvtepi32_ps(w32);
            let t = _mm512_add_ps(mv, _mm512_mul_ps(sv, f));
            let o = _mm512_loadu_ps(out.as_ptr().add(i));
            _mm512_storeu_ps(out.as_mut_ptr().add(i), _mm512_add_ps(o, t));
            i += 16;
        }
        add_assign_dequant_u8_avx2(&mut out[i..n], &q[i..n], scale, min);
    }

    pub fn sum_rows_le_sse2(out: &mut [f32], data: &[u8], offs: &[usize]) {
        let n = out.len();
        let mut i = 0;
        while i + 16 <= n {
            unsafe {
                let mut a0 = _mm_loadu_ps(out.as_ptr().add(i));
                let mut a1 = _mm_loadu_ps(out.as_ptr().add(i + 4));
                let mut a2 = _mm_loadu_ps(out.as_ptr().add(i + 8));
                let mut a3 = _mm_loadu_ps(out.as_ptr().add(i + 12));
                for &o in offs {
                    let p = data[o + i * 4..o + i * 4 + 64].as_ptr().cast::<f32>();
                    a0 = _mm_add_ps(a0, _mm_loadu_ps(p));
                    a1 = _mm_add_ps(a1, _mm_loadu_ps(p.add(4)));
                    a2 = _mm_add_ps(a2, _mm_loadu_ps(p.add(8)));
                    a3 = _mm_add_ps(a3, _mm_loadu_ps(p.add(12)));
                }
                _mm_storeu_ps(out.as_mut_ptr().add(i), a0);
                _mm_storeu_ps(out.as_mut_ptr().add(i + 4), a1);
                _mm_storeu_ps(out.as_mut_ptr().add(i + 8), a2);
                _mm_storeu_ps(out.as_mut_ptr().add(i + 12), a3);
            }
            i += 16;
        }
        // Embedding tiles are narrow (the paper's Eq. 3 caps N_c at 8),
        // so the short blocks matter most: they keep the whole
        // accumulator in registers across the entire row list.
        if i + 8 <= n {
            unsafe {
                let mut a0 = _mm_loadu_ps(out.as_ptr().add(i));
                let mut a1 = _mm_loadu_ps(out.as_ptr().add(i + 4));
                for &o in offs {
                    let p = data[o + i * 4..o + i * 4 + 32].as_ptr().cast::<f32>();
                    a0 = _mm_add_ps(a0, _mm_loadu_ps(p));
                    a1 = _mm_add_ps(a1, _mm_loadu_ps(p.add(4)));
                }
                _mm_storeu_ps(out.as_mut_ptr().add(i), a0);
                _mm_storeu_ps(out.as_mut_ptr().add(i + 4), a1);
            }
            i += 8;
        }
        if i + 4 <= n {
            unsafe {
                let mut a0 = _mm_loadu_ps(out.as_ptr().add(i));
                for &o in offs {
                    let p = data[o + i * 4..o + i * 4 + 16].as_ptr().cast::<f32>();
                    a0 = _mm_add_ps(a0, _mm_loadu_ps(p));
                }
                _mm_storeu_ps(out.as_mut_ptr().add(i), a0);
            }
            i += 4;
        }
        if i < n {
            for &o in offs {
                add_assign_le_sse2(&mut out[i..], &data[o + i * 4..o + n * 4]);
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_rows_le_avx2(out: &mut [f32], data: &[u8], offs: &[usize]) {
        let n = out.len();
        let mut i = 0;
        while i + 16 <= n {
            let mut a0 = _mm256_loadu_ps(out.as_ptr().add(i));
            let mut a1 = _mm256_loadu_ps(out.as_ptr().add(i + 8));
            for &o in offs {
                let p = data[o + i * 4..o + i * 4 + 64].as_ptr().cast::<f32>();
                a0 = _mm256_add_ps(a0, _mm256_loadu_ps(p));
                a1 = _mm256_add_ps(a1, _mm256_loadu_ps(p.add(8)));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(i), a0);
            _mm256_storeu_ps(out.as_mut_ptr().add(i + 8), a1);
            i += 16;
        }
        if i < n {
            for &o in offs {
                add_assign_le_avx2(&mut out[i..], &data[o + i * 4..o + n * 4]);
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX-512F (and AVX2) support at runtime.
    #[target_feature(enable = "avx512f", enable = "avx2")]
    pub unsafe fn sum_rows_le_avx512(out: &mut [f32], data: &[u8], offs: &[usize]) {
        let n = out.len();
        let mut i = 0;
        while i + 32 <= n {
            let mut a0 = _mm512_loadu_ps(out.as_ptr().add(i));
            let mut a1 = _mm512_loadu_ps(out.as_ptr().add(i + 16));
            for &o in offs {
                let p = data[o + i * 4..o + i * 4 + 128].as_ptr().cast::<f32>();
                a0 = _mm512_add_ps(a0, _mm512_loadu_ps(p));
                a1 = _mm512_add_ps(a1, _mm512_loadu_ps(p.add(16)));
            }
            _mm512_storeu_ps(out.as_mut_ptr().add(i), a0);
            _mm512_storeu_ps(out.as_mut_ptr().add(i + 16), a1);
            i += 32;
        }
        while i + 16 <= n {
            let mut a0 = _mm512_loadu_ps(out.as_ptr().add(i));
            for &o in offs {
                let p = data[o + i * 4..o + i * 4 + 64].as_ptr().cast::<f32>();
                a0 = _mm512_add_ps(a0, _mm512_loadu_ps(p));
            }
            _mm512_storeu_ps(out.as_mut_ptr().add(i), a0);
            i += 16;
        }
        if i < n {
            for &o in offs {
                add_assign_le_avx2(&mut out[i..], &data[o + i * 4..o + n * 4]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// aarch64 NEON (baseline feature, safe to call unconditionally).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    #[inline]
    pub fn add_assign_neon(out: &mut [f32], x: &[f32]) {
        let n = out.len().min(x.len());
        let mut i = 0;
        unsafe {
            while i + 4 <= n {
                let o = vld1q_f32(out.as_ptr().add(i));
                let v = vld1q_f32(x.as_ptr().add(i));
                vst1q_f32(out.as_mut_ptr().add(i), vaddq_f32(o, v));
                i += 4;
            }
        }
        super::scalar::add_assign(&mut out[i..n], &x[i..n]);
    }

    #[inline]
    pub fn axpy_neon(out: &mut [f32], a: f32, x: &[f32]) {
        let n = out.len().min(x.len());
        let mut i = 0;
        unsafe {
            let av = vdupq_n_f32(a);
            while i + 4 <= n {
                let o = vld1q_f32(out.as_ptr().add(i));
                let v = vld1q_f32(x.as_ptr().add(i));
                // vmulq + vaddq, not vfmaq: keep the intermediate
                // rounding so lanes match the scalar loop bit-for-bit.
                let p = vmulq_f32(av, v);
                vst1q_f32(out.as_mut_ptr().add(i), vaddq_f32(o, p));
                i += 4;
            }
        }
        super::scalar::axpy(&mut out[i..n], a, &x[i..n]);
    }

    #[inline]
    pub fn add_assign_le_neon(out: &mut [f32], bytes: &[u8]) {
        let n = out.len().min(bytes.len() / 4);
        let mut i = 0;
        unsafe {
            while i + 4 <= n {
                let o = vld1q_f32(out.as_ptr().add(i));
                let v = vld1q_f32(bytes.as_ptr().add(i * 4).cast::<f32>());
                vst1q_f32(out.as_mut_ptr().add(i), vaddq_f32(o, v));
                i += 4;
            }
        }
        super::scalar::add_assign_le(&mut out[i..n], &bytes[i * 4..n * 4]);
    }

    #[inline]
    pub fn add_assign_into_le_neon(dst: &mut [u8], add: &[f32]) {
        let n = add.len().min(dst.len() / 4);
        let mut i = 0;
        unsafe {
            while i + 4 <= n {
                let cur = vld1q_f32(dst.as_ptr().add(i * 4).cast::<f32>());
                let v = vld1q_f32(add.as_ptr().add(i));
                vst1q_f32(dst.as_mut_ptr().add(i * 4).cast::<f32>(), vaddq_f32(cur, v));
                i += 4;
            }
        }
        super::scalar::add_assign_into_le(&mut dst[i * 4..n * 4], &add[i..n]);
    }

    #[inline]
    pub fn add_assign_dequant_u8_neon(out: &mut [f32], q: &[u8], scale: f32, min: f32) {
        let n = out.len().min(q.len());
        let mut i = 0;
        unsafe {
            let sv = vdupq_n_f32(scale);
            let mv = vdupq_n_f32(min);
            while i + 4 <= n {
                let w = [
                    q[i] as u32,
                    q[i + 1] as u32,
                    q[i + 2] as u32,
                    q[i + 3] as u32,
                ];
                let f = vcvtq_f32_u32(vld1q_u32(w.as_ptr()));
                let t = vaddq_f32(mv, vmulq_f32(sv, f));
                let o = vld1q_f32(out.as_ptr().add(i));
                vst1q_f32(out.as_mut_ptr().add(i), vaddq_f32(o, t));
                i += 4;
            }
        }
        super::scalar::add_assign_dequant_u8(&mut out[i..n], &q[i..n], scale, min);
    }

    pub fn sum_rows_le_neon(out: &mut [f32], data: &[u8], offs: &[usize]) {
        let n = out.len();
        let mut i = 0;
        while i + 16 <= n {
            unsafe {
                let mut a0 = vld1q_f32(out.as_ptr().add(i));
                let mut a1 = vld1q_f32(out.as_ptr().add(i + 4));
                let mut a2 = vld1q_f32(out.as_ptr().add(i + 8));
                let mut a3 = vld1q_f32(out.as_ptr().add(i + 12));
                for &o in offs {
                    let p = data[o + i * 4..o + i * 4 + 64].as_ptr().cast::<f32>();
                    a0 = vaddq_f32(a0, vld1q_f32(p));
                    a1 = vaddq_f32(a1, vld1q_f32(p.add(4)));
                    a2 = vaddq_f32(a2, vld1q_f32(p.add(8)));
                    a3 = vaddq_f32(a3, vld1q_f32(p.add(12)));
                }
                vst1q_f32(out.as_mut_ptr().add(i), a0);
                vst1q_f32(out.as_mut_ptr().add(i + 4), a1);
                vst1q_f32(out.as_mut_ptr().add(i + 8), a2);
                vst1q_f32(out.as_mut_ptr().add(i + 12), a3);
            }
            i += 16;
        }
        // Narrow-tile blocks (Eq. 3 caps N_c at 8): keep the whole
        // accumulator in registers across the entire row list.
        if i + 8 <= n {
            unsafe {
                let mut a0 = vld1q_f32(out.as_ptr().add(i));
                let mut a1 = vld1q_f32(out.as_ptr().add(i + 4));
                for &o in offs {
                    let p = data[o + i * 4..o + i * 4 + 32].as_ptr().cast::<f32>();
                    a0 = vaddq_f32(a0, vld1q_f32(p));
                    a1 = vaddq_f32(a1, vld1q_f32(p.add(4)));
                }
                vst1q_f32(out.as_mut_ptr().add(i), a0);
                vst1q_f32(out.as_mut_ptr().add(i + 4), a1);
            }
            i += 8;
        }
        if i + 4 <= n {
            unsafe {
                let mut a0 = vld1q_f32(out.as_ptr().add(i));
                for &o in offs {
                    let p = data[o + i * 4..o + i * 4 + 16].as_ptr().cast::<f32>();
                    a0 = vaddq_f32(a0, vld1q_f32(p));
                }
                vst1q_f32(out.as_mut_ptr().add(i), a0);
            }
            i += 4;
        }
        if i < n {
            for &o in offs {
                add_assign_le_neon(&mut out[i..], &data[o + i * 4..o + n * 4]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points.
// ---------------------------------------------------------------------------

/// Below this element count the AVX2 tier routes to the inline SSE2
/// implementation instead: a `#[target_feature]` function cannot be
/// inlined into a caller compiled without that feature, and for
/// embedding-sized vectors (`n_c ≤ 8`) the out-of-line call costs more
/// than the wider vectors save. SSE2 and AVX2 are elementwise
/// bit-identical (same per-lane op sequence), so the routing is
/// invisible in results — only wall-clock speed changes.
#[cfg(target_arch = "x86_64")]
const AVX2_MIN_ELEMS: usize = 16;

/// Same idea one tier up: below one full zmm vector the AVX-512 tier
/// routes to AVX2 (which itself may route to SSE2 below
/// [`AVX2_MIN_ELEMS`]). Embedding-row sweeps (32 lanes) measured zmm
/// and ymm within noise of each other with zmm marginally ahead, so
/// the cutover sits at the smallest width a zmm op can fill.
#[cfg(target_arch = "x86_64")]
const AVX512_MIN_ELEMS: usize = 16;

/// `out[i] += x[i]` over `min(out.len(), x.len())` elements.
#[inline]
pub fn add_assign(out: &mut [f32], x: &[f32]) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 if out.len() >= AVX512_MIN_ELEMS => unsafe {
            x86::add_assign_avx512(out, x)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 if out.len() >= AVX2_MIN_ELEMS => unsafe {
            x86::add_assign_avx2(out, x)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 | SimdTier::Sse2 => x86::add_assign_sse2(out, x),
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => neon::add_assign_neon(out, x),
        _ => scalar::add_assign(out, x),
    }
}

/// `out[i] += a * x[i]` (multiply then add, no FMA) over
/// `min(out.len(), x.len())` elements.
#[inline]
pub fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 if out.len() >= AVX512_MIN_ELEMS => unsafe { x86::axpy_avx512(out, a, x) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 if out.len() >= AVX2_MIN_ELEMS => unsafe {
            x86::axpy_avx2(out, a, x)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 | SimdTier::Sse2 => x86::axpy_sse2(out, a, x),
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => neon::axpy_neon(out, a, x),
        _ => scalar::axpy(out, a, x),
    }
}

/// `out[i] += f32::from_le_bytes(bytes[4i..4i+4])` over
/// `min(out.len(), bytes.len() / 4)` elements — the partial-sum decode
/// used by `gather_combine` and the kernel's row accumulation.
#[inline]
pub fn add_assign_le(out: &mut [f32], bytes: &[u8]) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 if out.len() >= AVX512_MIN_ELEMS => unsafe {
            x86::add_assign_le_avx512(out, bytes)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 if out.len() >= AVX2_MIN_ELEMS => unsafe {
            x86::add_assign_le_avx2(out, bytes)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 | SimdTier::Sse2 => x86::add_assign_le_sse2(out, bytes),
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => neon::add_assign_le_neon(out, bytes),
        _ => scalar::add_assign_le(out, bytes),
    }
}

/// Read-modify-write of little-endian f32 bytes:
/// `dst[4i..4i+4] = le(f32::from_le(dst[4i..4i+4]) + add[i])` over
/// `min(add.len(), dst.len() / 4)` elements — the dedup kernel's
/// shared-WRAM accumulator update.
#[inline]
pub fn add_assign_into_le(dst: &mut [u8], add: &[f32]) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 if add.len() >= AVX512_MIN_ELEMS => unsafe {
            x86::add_assign_into_le_avx512(dst, add)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 if add.len() >= AVX2_MIN_ELEMS => unsafe {
            x86::add_assign_into_le_avx2(dst, add)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 | SimdTier::Sse2 => {
            x86::add_assign_into_le_sse2(dst, add)
        }
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => neon::add_assign_into_le_neon(dst, add),
        _ => scalar::add_assign_into_le(dst, add),
    }
}

/// Fused dequantize-and-accumulate: `out[i] += min + scale * q[i]`
/// (per lane: convert, multiply, add min, accumulate — same op order in
/// every implementation) over `min(out.len(), q.len())` elements.
#[inline]
pub fn add_assign_dequant_u8(out: &mut [f32], q: &[u8], scale: f32, min: f32) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 if out.len() >= AVX512_MIN_ELEMS => unsafe {
            x86::add_assign_dequant_u8_avx512(out, q, scale, min)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 if out.len() >= AVX2_MIN_ELEMS => unsafe {
            x86::add_assign_dequant_u8_avx2(out, q, scale, min)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 | SimdTier::Sse2 => {
            x86::add_assign_dequant_u8_sse2(out, q, scale, min)
        }
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => neon::add_assign_dequant_u8_neon(out, q, scale, min),
        _ => scalar::add_assign_dequant_u8(out, q, scale, min),
    }
}

/// Fused multi-row gather-accumulate: for each `o` in `offs`, in order,
/// `out[i] += le_f32(data[o + 4i..])` over all `out.len()` elements —
/// equivalent to one [`add_assign_le`] call per row, but the
/// accumulator stays in vector registers across the whole row list
/// instead of round-tripping through memory per row. Every element's
/// additions run in `offs` order in every tier, so results are
/// bit-identical to the per-row calls.
///
/// Panics if any row `data[o..o + 4 * out.len()]` is out of bounds.
#[inline]
pub fn sum_rows_le(out: &mut [f32], data: &[u8], offs: &[usize]) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 if out.len() >= AVX512_MIN_ELEMS => unsafe {
            x86::sum_rows_le_avx512(out, data, offs)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 if out.len() >= AVX2_MIN_ELEMS => unsafe {
            x86::sum_rows_le_avx2(out, data, offs)
        },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx512 | SimdTier::Avx2 | SimdTier::Sse2 => {
            x86::sum_rows_le_sse2(out, data, offs)
        }
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => neon::sum_rows_le_neon(out, data, offs),
        _ => {
            for &o in offs {
                scalar::add_assign_le(out, &data[o..o + 4 * out.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic "awkward" f32s: mixes of magnitudes, signs, exact
    /// zeros and subnormal-adjacent values, at lengths that exercise
    /// every vector width and tail.
    fn gen(len: usize, seed: u32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..len)
            .map(|i| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                if i % 7 == 3 {
                    0.0
                } else {
                    let m = (s >> 8) as f32 / (1 << 24) as f32 - 0.5;
                    m * 10f32.powi((s % 13) as i32 - 6)
                }
            })
            .collect()
    }

    fn capability_tiers() -> Vec<SimdTier> {
        let mut tiers = vec![SimdTier::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            tiers.push(SimdTier::Sse2);
            if std::arch::is_x86_feature_detected!("avx2") {
                tiers.push(SimdTier::Avx2);
            }
            if detect_capability() == SimdTier::Avx512 {
                tiers.push(SimdTier::Avx512);
            }
        }
        #[cfg(target_arch = "aarch64")]
        tiers.push(SimdTier::Neon);
        tiers
    }

    /// Runs `f` under every supported tier and asserts the outputs are
    /// bit-identical to the scalar reference. Restores detection after.
    fn differential(mut f: impl FnMut() -> Vec<f32>) {
        let _guard = test_tier_lock();
        force_tier(Some(SimdTier::Scalar));
        let reference = f();
        for t in capability_tiers() {
            force_tier(Some(t));
            let got = f();
            assert_eq!(got.len(), reference.len());
            for (i, (g, r)) in got.iter().zip(reference.iter()).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    r.to_bits(),
                    "tier {} lane {i}: {g} != {r}",
                    t.as_str()
                );
            }
        }
        force_tier(None);
    }

    #[test]
    fn add_assign_matches_scalar_all_tiers() {
        for len in [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 32, 63, 100] {
            differential(|| {
                let mut out = gen(len, 1);
                add_assign(&mut out, &gen(len, 2));
                out
            });
        }
    }

    #[test]
    fn axpy_matches_scalar_all_tiers() {
        for len in [0, 1, 3, 4, 6, 8, 11, 16, 31, 64, 97] {
            for a in [0.0f32, 1.0, -2.5, 3.141592e-3, 1.7e5] {
                differential(|| {
                    let mut out = gen(len, 3);
                    axpy(&mut out, a, &gen(len, 4));
                    out
                });
            }
        }
    }

    #[test]
    fn add_assign_le_matches_scalar_all_tiers() {
        for len in [0, 1, 2, 4, 5, 8, 13, 16, 33, 80] {
            differential(|| {
                let mut out = gen(len, 5);
                let bytes: Vec<u8> = gen(len, 6).iter().flat_map(|v| v.to_le_bytes()).collect();
                add_assign_le(&mut out, &bytes);
                out
            });
        }
    }

    #[test]
    fn add_assign_into_le_matches_scalar_all_tiers() {
        for len in [0, 1, 2, 4, 6, 8, 12, 16, 29, 72] {
            differential(|| {
                let mut dst: Vec<u8> = gen(len, 7).iter().flat_map(|v| v.to_le_bytes()).collect();
                add_assign_into_le(&mut dst, &gen(len, 8));
                dst.chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect()
            });
        }
    }

    #[test]
    fn dequant_accumulate_matches_scalar_all_tiers() {
        for len in [0, 1, 3, 4, 7, 8, 9, 16, 21, 64] {
            for (scale, min) in [
                (0.0f32, 0.0f32),
                (0.013, -1.7),
                (2.0e-4, 0.55),
                (1.5, -200.0),
            ] {
                differential(|| {
                    let mut out = gen(len, 9);
                    let q: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
                    add_assign_dequant_u8(&mut out, &q, scale, min);
                    out
                });
            }
        }
    }

    #[test]
    fn sum_rows_le_matches_scalar_all_tiers() {
        for len in [0, 1, 2, 4, 5, 8, 13, 16, 17, 32, 33, 48, 80] {
            for n_rows in [0usize, 1, 2, 3, 7, 20] {
                differential(|| {
                    let mut out = gen(len, 10);
                    let data: Vec<u8> = gen(len * n_rows, 11)
                        .iter()
                        .flat_map(|v| v.to_le_bytes())
                        .collect();
                    // Rows visited back to front: offsets need not be
                    // sorted or disjoint from each other's order.
                    let offs: Vec<usize> = (0..n_rows).rev().map(|r| r * len * 4).collect();
                    sum_rows_le(&mut out, &data, &offs);
                    out
                });
            }
        }
    }

    #[test]
    fn sum_rows_le_matches_per_row_add_assign_le() {
        let _guard = test_tier_lock();
        force_tier(None);
        for len in [8usize, 16, 32, 48] {
            let n_rows = 9;
            let vals = gen(len * n_rows, 12);
            let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            let offs: Vec<usize> = (0..n_rows).map(|r| r * len * 4).collect();
            let mut fused = gen(len, 13);
            let mut per_row = fused.clone();
            sum_rows_le(&mut fused, &data, &offs);
            for &o in &offs {
                add_assign_le(&mut per_row, &data[o..o + 4 * len]);
            }
            for (i, (f, p)) in fused.iter().zip(per_row.iter()).enumerate() {
                assert_eq!(f.to_bits(), p.to_bits(), "len {len} lane {i}: {f} != {p}");
            }
        }
    }

    #[test]
    fn forcing_unsupported_tier_falls_back_to_scalar() {
        let _guard = test_tier_lock();
        #[cfg(target_arch = "x86_64")]
        {
            force_tier(Some(SimdTier::Neon));
            assert_eq!(tier(), SimdTier::Scalar);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            force_tier(Some(SimdTier::Avx2));
            assert_eq!(tier(), SimdTier::Scalar);
        }
        force_tier(None);
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(SimdTier::Scalar.as_str(), "scalar");
        assert_eq!(SimdTier::Sse2.as_str(), "sse2");
        assert_eq!(SimdTier::Avx2.as_str(), "avx2");
        assert_eq!(SimdTier::Avx512.as_str(), "avx512");
        assert_eq!(SimdTier::Neon.as_str(), "neon");
        assert!(!tier_name().is_empty());
    }
}
