//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is DoS-resistant but
//! costs tens of nanoseconds per small key — far too much for the
//! serving path, which performs one map lookup per embedding reference
//! (cache-list membership, stream deduplication). This module provides
//! a multiply-rotate hasher in the style of rustc's FxHash: a single
//! rotate-xor-multiply per 8-byte word. All uses key on small integers
//! derived from internal state (row slots, item ids), never on
//! attacker-controlled data, so losing DoS resistance is fine.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier with a good bit-dispersion profile (the 64-bit FxHash
/// constant: truncated golden-ratio expansion, odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; one multiply per written word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            // Zero-pad the tail; the top byte is always free (remainder
            // < 8 bytes) and carries the length so "" != "\0".
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            tail[7] = 0x80 | rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so maps stay `Clone` +
/// `Default` like their SipHash counterparts).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        m.insert(1 << 40, 2);
        assert_eq!(m.get(&7), Some(&1));
        assert_eq!(m.get(&(1 << 40)), Some(&2));
        let h = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_writes_match_padded_words() {
        // write() must consume trailing partial words (tuple keys hash
        // through it); just check it is deterministic and spreads bits.
        let h = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(h(b"abcdefghi"), h(b"abcdefghi"));
        assert_ne!(h(b"abcdefghi"), h(b"abcdefghj"));
        assert_ne!(h(b""), h(b"\0"));
    }

    #[test]
    fn small_integer_keys_disperse() {
        // Consecutive small keys must not collide in the low bits the
        // table index uses.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for k in 0u64..64 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            low_bits.insert(h.finish() >> 57);
        }
        assert!(low_bits.len() > 32, "only {} distinct", low_bits.len());
    }
}
