//! Error type for DLRM model construction and inference.

use std::fmt;

/// Errors produced while building or running a DLRM model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// Matrix dimensions incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left-hand shape (rows, cols).
        lhs: (usize, usize),
        /// Right-hand shape (rows, cols).
        rhs: (usize, usize),
    },
    /// An embedding index was outside the table.
    IndexOutOfRange {
        /// Offending index.
        index: u64,
        /// Number of rows in the table.
        rows: usize,
    },
    /// A query batch's offsets were not monotonically non-decreasing or
    /// exceeded the index buffer.
    MalformedOffsets(String),
    /// Invalid model configuration.
    InvalidConfig(String),
    /// The number of sparse feature groups in a batch did not match the
    /// model's embedding table count.
    TableCountMismatch {
        /// Tables in the model.
        model: usize,
        /// Sparse groups in the batch.
        batch: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: ({}x{}) vs ({}x{})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            ModelError::IndexOutOfRange { index, rows } => {
                write!(
                    f,
                    "embedding index {index} out of range for table with {rows} rows"
                )
            }
            ModelError::MalformedOffsets(msg) => write!(f, "malformed offsets: {msg}"),
            ModelError::InvalidConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            ModelError::TableCountMismatch { model, batch } => write!(
                f,
                "batch has {batch} sparse feature groups but model has {model} embedding tables"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias for model results.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = ModelError::IndexOutOfRange {
            index: 99,
            rows: 10,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<ModelError>();
    }
}
