//! Sparse query types shared by every backend.
//!
//! DLRM inference consumes, per embedding table, a *multi-hot* batch in
//! CSR form (FBGEMM layout): a flat `indices` buffer and `offsets` of
//! length `batch + 1` delimiting each sample's index list. The average
//! index-list length is the paper's "Avg.Reduction".

use crate::error::{ModelError, Result};

/// Multi-hot lookups for one embedding table over one batch (CSR form).
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct SparseInput {
    /// Flat row indices into the embedding table.
    pub indices: Vec<u64>,
    /// Sample boundaries: sample `s` uses `indices[offsets[s]..offsets[s+1]]`.
    pub offsets: Vec<usize>,
}

impl SparseInput {
    /// Builds and validates a CSR sparse input.
    ///
    /// # Errors
    ///
    /// Fails if offsets are empty, non-monotonic, don't start at 0 or
    /// don't end at `indices.len()`.
    pub fn new(indices: Vec<u64>, offsets: Vec<usize>) -> Result<Self> {
        let input = SparseInput { indices, offsets };
        input.validate()?;
        Ok(input)
    }

    /// Builds a CSR input from per-sample index lists.
    pub fn from_samples<I, S>(samples: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u64]>,
    {
        let mut indices = Vec::new();
        let mut offsets = vec![0usize];
        for s in samples {
            indices.extend_from_slice(s.as_ref());
            offsets.push(indices.len());
        }
        SparseInput { indices, offsets }
    }

    /// Checks the CSR invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedOffsets`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        if self.offsets.is_empty() {
            return Err(ModelError::MalformedOffsets(
                "offsets must have length >= 1".into(),
            ));
        }
        if self.offsets[0] != 0 {
            return Err(ModelError::MalformedOffsets(format!(
                "offsets must start at 0, got {}",
                self.offsets[0]
            )));
        }
        for w in self.offsets.windows(2) {
            if w[1] < w[0] {
                return Err(ModelError::MalformedOffsets(format!(
                    "offsets must be non-decreasing: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        let last = *self.offsets.last().expect("nonempty");
        if last != self.indices.len() {
            return Err(ModelError::MalformedOffsets(format!(
                "final offset {last} != indices length {}",
                self.indices.len()
            )));
        }
        Ok(())
    }

    /// Number of samples in the batch.
    #[inline]
    pub fn batch_size(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of lookups (sum of per-sample list lengths).
    #[inline]
    pub fn total_lookups(&self) -> usize {
        self.indices.len()
    }

    /// Average reduction (lookups per sample) — the paper's `Avg_Red`.
    pub fn avg_reduction(&self) -> f64 {
        if self.batch_size() == 0 {
            0.0
        } else {
            self.total_lookups() as f64 / self.batch_size() as f64
        }
    }

    /// The index list of sample `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= batch_size()`.
    #[inline]
    pub fn sample(&self, s: usize) -> &[u64] {
        &self.indices[self.offsets[s]..self.offsets[s + 1]]
    }

    /// Iterator over per-sample index lists.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.batch_size()).map(move |s| self.sample(s))
    }
}

/// One inference batch: dense features plus one [`SparseInput`] per
/// embedding table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryBatch {
    /// Dense features: `batch x num_dense` row-major values.
    pub dense: Vec<f32>,
    /// Number of dense features per sample.
    pub num_dense: usize,
    /// One sparse group per embedding table.
    pub sparse: Vec<SparseInput>,
}

impl QueryBatch {
    /// Builds and validates a batch.
    ///
    /// # Errors
    ///
    /// Fails if dense dimensions disagree with the sparse batch size or
    /// any sparse group is malformed / has inconsistent batch size.
    pub fn new(dense: Vec<f32>, num_dense: usize, sparse: Vec<SparseInput>) -> Result<Self> {
        let batch = QueryBatch {
            dense,
            num_dense,
            sparse,
        };
        batch.validate()?;
        Ok(batch)
    }

    /// Checks cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MalformedOffsets`] or
    /// [`ModelError::InvalidConfig`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        let b = self.batch_size();
        if self.num_dense == 0 {
            if !self.dense.is_empty() {
                return Err(ModelError::InvalidConfig(
                    "dense data present but num_dense is 0".into(),
                ));
            }
        } else if self.dense.len() != b * self.num_dense {
            return Err(ModelError::InvalidConfig(format!(
                "dense buffer has {} values, expected batch {} x num_dense {}",
                self.dense.len(),
                b,
                self.num_dense
            )));
        }
        for (i, s) in self.sparse.iter().enumerate() {
            s.validate()?;
            if s.batch_size() != b {
                return Err(ModelError::InvalidConfig(format!(
                    "sparse group {i} has batch size {} but group 0 has {b}",
                    s.batch_size()
                )));
            }
        }
        Ok(())
    }

    /// Batch size (number of samples). Zero for an empty batch.
    pub fn batch_size(&self) -> usize {
        self.sparse
            .first()
            .map(|s| s.batch_size())
            .unwrap_or_else(|| self.dense.len().checked_div(self.num_dense).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_samples_builds_valid_csr() {
        let s = SparseInput::from_samples([vec![1u64, 2, 3], vec![], vec![7]]);
        s.validate().unwrap();
        assert_eq!(s.batch_size(), 3);
        assert_eq!(s.total_lookups(), 4);
        assert_eq!(s.sample(0), &[1, 2, 3]);
        assert_eq!(s.sample(1), &[] as &[u64]);
        assert_eq!(s.sample(2), &[7]);
        assert!((s.avg_reduction() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_offsets() {
        assert!(SparseInput::new(vec![1], vec![]).is_err());
        assert!(SparseInput::new(vec![1], vec![1, 1]).is_err());
        assert!(SparseInput::new(vec![1, 2], vec![0, 2, 1]).is_err());
        assert!(SparseInput::new(vec![1, 2], vec![0, 1]).is_err());
    }

    #[test]
    fn iter_matches_samples() {
        let s = SparseInput::from_samples([vec![5u64], vec![6, 7]]);
        let collected: Vec<Vec<u64>> = s.iter().map(|x| x.to_vec()).collect();
        assert_eq!(collected, vec![vec![5], vec![6, 7]]);
    }

    #[test]
    fn batch_validates_dense_shape() {
        let sp = SparseInput::from_samples([vec![0u64], vec![1]]);
        assert!(QueryBatch::new(vec![0.0; 4], 2, vec![sp.clone()]).is_ok());
        assert!(QueryBatch::new(vec![0.0; 3], 2, vec![sp.clone()]).is_err());
        let ragged = SparseInput::from_samples([vec![0u64]]);
        assert!(QueryBatch::new(vec![0.0; 4], 2, vec![sp, ragged]).is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let b = QueryBatch::new(vec![], 0, vec![]).unwrap();
        assert_eq!(b.batch_size(), 0);
    }
}
