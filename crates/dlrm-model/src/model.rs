//! The full DLRM model (paper Fig. 1): bottom MLP over dense features,
//! embedding bags over sparse features, feature interaction, top MLP.

use crate::embedding::EmbeddingTable;
use crate::error::{ModelError, Result};
use crate::mlp::{Activation, Mlp};
use crate::query::QueryBatch;
use crate::tensor::Matrix;

/// Hyperparameters of a DLRM instance.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DlrmConfig {
    /// Number of dense (continuous) input features.
    pub num_dense: usize,
    /// Embedding dimension shared by all tables (paper: 32).
    pub embedding_dim: usize,
    /// Rows of each embedding table (paper: the dataset's #Items,
    /// duplicated into 8 tables).
    pub table_rows: Vec<usize>,
    /// Hidden sizes of the bottom MLP (input and output added
    /// automatically: `num_dense → ... → embedding_dim`).
    pub bottom_hidden: Vec<usize>,
    /// Hidden sizes of the top MLP (`interaction_dim → ... → 1`).
    pub top_hidden: Vec<usize>,
    /// RNG seed for weights and tables.
    pub seed: u64,
}

impl DlrmConfig {
    /// A small configuration mirroring the paper's setup shape: 13 dense
    /// features (Criteo-style), 32-dim embeddings, 8 tables of
    /// `rows_per_table` rows.
    pub fn paper_shape(rows_per_table: usize) -> Self {
        DlrmConfig {
            num_dense: 13,
            embedding_dim: 32,
            table_rows: vec![rows_per_table; 8],
            bottom_hidden: vec![64],
            top_hidden: vec![64, 16],
            seed: 0x5EED,
        }
    }

    /// Dimension of the concatenated interaction vector.
    pub fn interaction_dim(&self) -> usize {
        self.embedding_dim * (1 + self.table_rows.len())
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Fails when any dimension is zero or there are no tables.
    pub fn validate(&self) -> Result<()> {
        if self.num_dense == 0 {
            return Err(ModelError::InvalidConfig("num_dense must be > 0".into()));
        }
        if self.embedding_dim == 0 {
            return Err(ModelError::InvalidConfig(
                "embedding_dim must be > 0".into(),
            ));
        }
        if self.table_rows.is_empty() {
            return Err(ModelError::InvalidConfig(
                "at least one embedding table".into(),
            ));
        }
        if self.table_rows.contains(&0) {
            return Err(ModelError::InvalidConfig("table rows must be > 0".into()));
        }
        Ok(())
    }
}

/// A DLRM with materialized weights and embedding tables.
///
/// `Dlrm::forward` is the pure-CPU *reference* path. Accelerated
/// backends (PIM / hybrid / FAE) compute the embedding layer themselves
/// and reuse [`Dlrm::forward_with_pooled`] for the dense side, so every
/// backend's output can be compared against the reference.
#[derive(Debug, Clone, PartialEq)]
pub struct Dlrm {
    config: DlrmConfig,
    bottom: Mlp,
    top: Mlp,
    tables: Vec<EmbeddingTable>,
}

impl Dlrm {
    /// Builds a model with seeded random weights and tables.
    ///
    /// # Errors
    ///
    /// Fails on an invalid configuration.
    pub fn new(config: DlrmConfig) -> Result<Self> {
        Self::with_table_init(config, |rows, dim, seed| {
            EmbeddingTable::random(rows, dim, 0.1, seed)
        })
    }

    /// Builds a model whose embedding tables hold small integer values
    /// (exact fp32 summation — see
    /// [`EmbeddingTable::random_integer_valued`]), for bit-exact
    /// cross-backend tests.
    ///
    /// # Errors
    ///
    /// Fails on an invalid configuration.
    pub fn new_integer_tables(config: DlrmConfig) -> Result<Self> {
        Self::with_table_init(config, |rows, dim, seed| {
            EmbeddingTable::random_integer_valued(rows, dim, 4, seed)
        })
    }

    fn with_table_init(
        config: DlrmConfig,
        init: impl Fn(usize, usize, u64) -> Result<EmbeddingTable>,
    ) -> Result<Self> {
        config.validate()?;
        let mut bottom_sizes = vec![config.num_dense];
        bottom_sizes.extend_from_slice(&config.bottom_hidden);
        bottom_sizes.push(config.embedding_dim);
        let bottom = Mlp::new(&bottom_sizes, Activation::Relu, config.seed)?;

        let mut top_sizes = vec![config.interaction_dim()];
        top_sizes.extend_from_slice(&config.top_hidden);
        top_sizes.push(1);
        let top = Mlp::new(
            &top_sizes,
            Activation::Sigmoid,
            config.seed.wrapping_add(1000),
        )?;

        let tables = config
            .table_rows
            .iter()
            .enumerate()
            .map(|(i, &rows)| {
                init(
                    rows,
                    config.embedding_dim,
                    config.seed.wrapping_add(2000 + i as u64),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Dlrm {
            config,
            bottom,
            top,
            tables,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// The embedding tables, in order.
    pub fn tables(&self) -> &[EmbeddingTable] {
        &self.tables
    }

    /// The bottom MLP.
    pub fn bottom_mlp(&self) -> &Mlp {
        &self.bottom
    }

    /// The top MLP.
    pub fn top_mlp(&self) -> &Mlp {
        &self.top
    }

    /// Mutable bottom MLP (training).
    pub fn bottom_mlp_mut(&mut self) -> &mut Mlp {
        &mut self.bottom
    }

    /// Mutable top MLP (training).
    pub fn top_mlp_mut(&mut self) -> &mut Mlp {
        &mut self.top
    }

    /// Mutable embedding tables (training).
    pub fn tables_mut(&mut self) -> &mut [EmbeddingTable] {
        &mut self.tables
    }

    /// Total embedding storage in bytes.
    pub fn embedding_bytes(&self) -> usize {
        self.tables.iter().map(EmbeddingTable::size_bytes).sum()
    }

    /// Reference CPU forward pass: returns one CTR probability per
    /// sample.
    ///
    /// # Errors
    ///
    /// Fails on malformed batches or out-of-range indices.
    pub fn forward(&self, batch: &QueryBatch) -> Result<Vec<f32>> {
        let pooled = self.pool_embeddings(batch)?;
        self.forward_with_pooled(batch, &pooled)
    }

    /// Runs the embedding layer only (one pooled `batch x dim` matrix
    /// per table) — the piece accelerated backends replace.
    ///
    /// # Errors
    ///
    /// Fails on malformed batches or out-of-range indices.
    pub fn pool_embeddings(&self, batch: &QueryBatch) -> Result<Vec<Matrix>> {
        batch.validate()?;
        if batch.sparse.len() != self.tables.len() {
            return Err(ModelError::TableCountMismatch {
                model: self.tables.len(),
                batch: batch.sparse.len(),
            });
        }
        self.tables
            .iter()
            .zip(batch.sparse.iter())
            .map(|(t, s)| t.bag_sum(s))
            .collect()
    }

    /// Dense side of the forward pass, given pooled embeddings computed
    /// by any backend.
    ///
    /// # Errors
    ///
    /// Fails on shape mismatches between the batch, the pooled
    /// embeddings and the model.
    pub fn forward_with_pooled(&self, batch: &QueryBatch, pooled: &[Matrix]) -> Result<Vec<f32>> {
        if pooled.len() != self.tables.len() {
            return Err(ModelError::TableCountMismatch {
                model: self.tables.len(),
                batch: pooled.len(),
            });
        }
        let b = batch.batch_size();
        let dense = Matrix::from_vec(b, self.config.num_dense, batch.dense.clone())?;
        let dense_feat = self.bottom.forward(&dense)?;
        let mut parts: Vec<&Matrix> = Vec::with_capacity(1 + pooled.len());
        parts.push(&dense_feat);
        parts.extend(pooled.iter());
        let interaction = Matrix::hconcat(&parts)?;
        let out = self.top.forward(&interaction)?;
        Ok(out.into_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SparseInput;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_model() -> Dlrm {
        let config = DlrmConfig {
            num_dense: 4,
            embedding_dim: 8,
            table_rows: vec![100, 50],
            bottom_hidden: vec![16],
            top_hidden: vec![16],
            seed: 7,
        };
        Dlrm::new(config).unwrap()
    }

    fn tiny_batch(model: &Dlrm, batch: usize, seed: u64) -> QueryBatch {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = (0..batch * model.config().num_dense)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let sparse = model
            .config()
            .table_rows
            .iter()
            .map(|&rows| {
                SparseInput::from_samples(
                    (0..batch)
                        .map(|_| {
                            (0..rng.random_range(1..6))
                                .map(|_| rng.random_range(0..rows as u64))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        QueryBatch::new(dense, model.config().num_dense, sparse).unwrap()
    }

    #[test]
    fn forward_produces_probabilities() {
        let m = tiny_model();
        let b = tiny_batch(&m, 16, 3);
        let out = m.forward(&b).unwrap();
        assert_eq!(out.len(), 16);
        assert!(out.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn forward_is_deterministic() {
        let m = tiny_model();
        let b = tiny_batch(&m, 8, 5);
        assert_eq!(m.forward(&b).unwrap(), m.forward(&b).unwrap());
    }

    #[test]
    fn pooled_path_equals_monolithic_forward() {
        let m = tiny_model();
        let b = tiny_batch(&m, 8, 9);
        let pooled = m.pool_embeddings(&b).unwrap();
        let via_pooled = m.forward_with_pooled(&b, &pooled).unwrap();
        assert_eq!(via_pooled, m.forward(&b).unwrap());
    }

    #[test]
    fn table_count_mismatch_detected() {
        let m = tiny_model();
        let mut b = tiny_batch(&m, 4, 1);
        b.sparse.pop();
        assert!(matches!(
            m.forward(&b),
            Err(ModelError::TableCountMismatch { .. }) | Err(ModelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn interaction_dim_matches_layout() {
        let c = DlrmConfig::paper_shape(1000);
        assert_eq!(c.interaction_dim(), 32 * 9);
        c.validate().unwrap();
    }

    #[test]
    fn config_validation_rejects_zeros() {
        let mut c = DlrmConfig::paper_shape(10);
        c.embedding_dim = 0;
        assert!(Dlrm::new(c).is_err());
        let mut c = DlrmConfig::paper_shape(10);
        c.table_rows.clear();
        assert!(Dlrm::new(c).is_err());
    }

    #[test]
    fn embedding_bytes_counts_all_tables() {
        let m = tiny_model();
        assert_eq!(m.embedding_bytes(), (100 + 50) * 8 * 4);
    }

    #[test]
    fn different_inputs_give_different_outputs() {
        let m = tiny_model();
        let b1 = tiny_batch(&m, 4, 100);
        let b2 = tiny_batch(&m, 4, 200);
        assert_ne!(m.forward(&b1).unwrap(), m.forward(&b2).unwrap());
    }
}
