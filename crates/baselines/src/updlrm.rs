//! The UpDLRM backend: PIM embedding layer + CPU dense layers, behind
//! the common [`InferenceBackend`] interface.

use crate::backend::{InferenceBackend, LatencyReport};
use crate::memory::CpuMemoryModel;
use dlrm_model::{Dlrm, QueryBatch};
use std::sync::Arc;
use updlrm_core::{CoreError, UpdlrmConfig, UpdlrmEngine};
use workloads::Workload;

/// UpDLRM as an inference backend: embeddings on the (simulated) UPMEM
/// array, dense layers on the host CPU.
#[derive(Debug)]
pub struct UpdlrmBackend {
    model: Arc<Dlrm>,
    engine: UpdlrmEngine,
    mem: CpuMemoryModel,
}

impl UpdlrmBackend {
    /// Builds the backend: partitions the model's tables per `config`
    /// (profiling + cache mining from `workload`) and loads the PIM
    /// array.
    ///
    /// # Errors
    ///
    /// Propagates engine construction errors.
    pub fn from_workload(
        config: UpdlrmConfig,
        model: Arc<Dlrm>,
        workload: &Workload,
        mem: CpuMemoryModel,
    ) -> Result<Self, CoreError> {
        let engine = UpdlrmEngine::from_workload(config, model.tables(), workload)?;
        Ok(UpdlrmBackend { model, engine, mem })
    }

    /// The underlying engine (e.g. for table placement reports).
    pub fn engine(&self) -> &UpdlrmEngine {
        &self.engine
    }

    /// Mutable engine access, e.g. to drive the pipelined serving path
    /// ([`UpdlrmEngine::serve`]) directly.
    pub fn engine_mut(&mut self) -> &mut UpdlrmEngine {
        &mut self.engine
    }
}

impl InferenceBackend for UpdlrmBackend {
    fn name(&self) -> &'static str {
        "UpDLRM"
    }

    fn run_batch(&mut self, batch: &QueryBatch) -> Result<(Vec<f32>, LatencyReport), CoreError> {
        let (out, breakdown) = self.engine.run_inference(&self.model, batch)?;
        let flops = (self.model.bottom_mlp().flops_per_sample()
            + self.model.top_mlp().flops_per_sample())
            * batch.batch_size() as u64;
        let report = LatencyReport {
            embedding_ns: breakdown.total_with_host_ns(),
            dense_ns: self.mem.mlp_ns(flops),
            transfer_ns: 0.0,
            pim: Some(breakdown),
        };
        Ok((out, report))
    }

    fn metrics_snapshot(&self) -> Option<updlrm_core::Snapshot> {
        Some(self.engine.metrics_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_model::DlrmConfig;
    use updlrm_core::PartitionStrategy;
    use workloads::{DatasetSpec, TraceConfig};

    #[test]
    fn updlrm_backend_matches_reference_and_reports_pim_stages() {
        let spec = DatasetSpec::goodreads().scaled_down(10_000);
        let workload = workloads::Workload::generate(
            &spec,
            TraceConfig {
                num_tables: 2,
                num_batches: 1,
                ..TraceConfig::default()
            },
        );
        let model = Arc::new(
            Dlrm::new_integer_tables(DlrmConfig {
                num_dense: 13,
                embedding_dim: 32,
                table_rows: vec![spec.num_items; 2],
                bottom_hidden: vec![32],
                top_hidden: vec![32],
                seed: 3,
            })
            .unwrap(),
        );
        let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware);
        let mut backend = UpdlrmBackend::from_workload(
            config,
            model.clone(),
            &workload,
            CpuMemoryModel::default(),
        )
        .unwrap();
        let (out, report) = backend.run_batch(&workload.batches[0]).unwrap();
        assert_eq!(out, model.forward(&workload.batches[0]).unwrap());
        let pim = report.pim.expect("pim breakdown present");
        assert!(pim.stage2_ns > 0.0);
        assert!(report.embedding_ns >= pim.total_ns());
    }
}
