//! FAE (Adnan et al., 2021): the hot-embedding-caching hybrid baseline.
//!
//! FAE exploits the power-law popularity of items: the hottest
//! embedding rows are replicated into GPU memory, so their gathers run
//! at device speed while only the cold tail pays the CPU + PCIe path.
//! The paper (§4.2) finds FAE between DLRM-CPU and UpDLRM.

use crate::backend::{InferenceBackend, LatencyReport};
use crate::gpu::GpuModel;
use crate::memory::CpuMemoryModel;
use dlrm_model::{Dlrm, QueryBatch};
use std::sync::Arc;
use updlrm_core::CoreError;
use workloads::FreqProfile;

/// The FAE hybrid implementation with a GPU-resident hot-row cache.
#[derive(Debug)]
pub struct Fae {
    model: Arc<Dlrm>,
    mem: CpuMemoryModel,
    gpu: GpuModel,
    /// Per-table flags: `true` = row is GPU-resident.
    gpu_hot: Vec<Vec<bool>>,
    /// Per-table flags for the *CPU* LLC over the cold tail.
    cpu_hot: Vec<Vec<bool>>,
}

impl Fae {
    /// Builds the backend. Following FAE's popularity-threshold design,
    /// the GPU cache admits the most frequent rows of every table until
    /// either `coverage_target` of the profiled accesses are covered or
    /// the device memory budget (`gpu.mem_bytes`, shared equally across
    /// tables) is exhausted.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] on a profile/table count mismatch or
    /// a coverage target outside `[0, 1]`.
    pub fn new(
        model: Arc<Dlrm>,
        profiles: &[FreqProfile],
        mem: CpuMemoryModel,
        gpu: GpuModel,
        coverage_target: f64,
    ) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&coverage_target) {
            return Err(CoreError::InvalidConfig(format!(
                "coverage target must be in [0, 1], got {coverage_target}"
            )));
        }
        if profiles.len() != model.tables().len() {
            return Err(CoreError::InvalidConfig(format!(
                "{} profiles for {} tables",
                profiles.len(),
                model.tables().len()
            )));
        }
        let tables = model.tables().len();
        let row_bytes = model.config().embedding_dim * 4;
        let budget_rows = gpu.mem_bytes / tables.max(1) / row_bytes.max(1);
        let gpu_hot: Vec<Vec<bool>> = profiles
            .iter()
            .map(|p| {
                let mut flags = vec![false; p.num_items()];
                let target = p.total_accesses() as f64 * coverage_target;
                let mut covered = 0u64;
                for item in p.items_by_frequency().into_iter().take(budget_rows) {
                    if covered as f64 >= target {
                        break;
                    }
                    flags[item as usize] = true;
                    covered += p.count(item);
                }
                flags
            })
            .collect();
        let cpu_hot = profiles
            .iter()
            .map(|p| mem.hot_flags(p, row_bytes, tables))
            .collect();
        Ok(Fae {
            model,
            mem,
            gpu,
            gpu_hot,
            cpu_hot,
        })
    }

    /// Fraction of this batch's accesses served by the GPU cache.
    pub fn gpu_coverage(&self, batch: &QueryBatch) -> f64 {
        let (gpu_rows, cpu_hits, cpu_misses) = self.classify(batch);
        let total = gpu_rows + cpu_hits + cpu_misses;
        if total == 0 {
            0.0
        } else {
            gpu_rows as f64 / total as f64
        }
    }

    fn classify(&self, batch: &QueryBatch) -> (u64, u64, u64) {
        let mut gpu_rows = 0u64;
        let mut cpu_hits = 0u64;
        let mut cpu_misses = 0u64;
        for (t, sparse) in batch.sparse.iter().enumerate() {
            for &i in &sparse.indices {
                if self.gpu_hot[t].get(i as usize).copied().unwrap_or(false) {
                    gpu_rows += 1;
                } else if self.cpu_hot[t].get(i as usize).copied().unwrap_or(false) {
                    cpu_hits += 1;
                } else {
                    cpu_misses += 1;
                }
            }
        }
        (gpu_rows, cpu_hits, cpu_misses)
    }
}

impl InferenceBackend for Fae {
    fn name(&self) -> &'static str {
        "FAE"
    }

    fn run_batch(&mut self, batch: &QueryBatch) -> Result<(Vec<f32>, LatencyReport), CoreError> {
        let out = self.model.forward(batch)?;
        let b = batch.batch_size();
        let cfg = self.model.config();
        let dim = cfg.embedding_dim as u64;
        let (gpu_rows, cpu_hits, cpu_misses) = self.classify(batch);
        // CPU gathers + pools the cold tail, GPU gathers + pools the hot
        // rows; the two proceed concurrently.
        let cpu_ns = self.mem.gather_ns(cpu_hits, cpu_misses)
            + self.mem.pool_ns((cpu_hits + cpu_misses) * dim);
        let gpu_ns = self.gpu.gather_ns(gpu_rows, gpu_rows * dim);
        let embedding_ns = cpu_ns.max(gpu_ns);
        // Cold partial sums + dense features cross PCIe; dense layers
        // run on the GPU with one launch per batch.
        let pooled_bytes = b * cfg.table_rows.len() * cfg.embedding_dim * 4;
        let dense_bytes = b * cfg.num_dense * 4;
        let flops = (self.model.bottom_mlp().flops_per_sample()
            + self.model.top_mlp().flops_per_sample())
            * b as u64;
        let report = LatencyReport {
            embedding_ns,
            dense_ns: self.gpu.mlp_ns(flops),
            transfer_ns: self.gpu.pcie_ns(pooled_bytes + dense_bytes) + self.gpu.launch_overhead_ns,
            pim: None,
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::DlrmCpu;
    use dlrm_model::DlrmConfig;
    use workloads::{DatasetSpec, TraceConfig, Workload};

    fn setup(gpu_bytes: usize) -> (Arc<Dlrm>, Workload, Vec<FreqProfile>, Fae) {
        let spec = DatasetSpec::goodreads().scaled_down(10_000);
        let workload = Workload::generate(
            &spec,
            TraceConfig {
                num_tables: 2,
                num_batches: 1,
                ..TraceConfig::default()
            },
        );
        let model = Arc::new(
            Dlrm::new(DlrmConfig {
                num_dense: 13,
                embedding_dim: 32,
                table_rows: vec![spec.num_items; 2],
                bottom_hidden: vec![32],
                top_hidden: vec![32],
                seed: 3,
            })
            .unwrap(),
        );
        let profiles: Vec<FreqProfile> = (0..2)
            .map(|t| FreqProfile::from_inputs(model.tables()[t].rows(), workload.table_inputs(t)))
            .collect();
        let gpu = GpuModel {
            mem_bytes: gpu_bytes,
            ..GpuModel::default()
        };
        let fae = Fae::new(
            model.clone(),
            &profiles,
            CpuMemoryModel::default(),
            gpu,
            0.9,
        )
        .unwrap();
        (model, workload, profiles, fae)
    }

    #[test]
    fn fae_output_matches_reference() {
        let (model, w, _, mut fae) = setup(1 << 20);
        let (out, _) = fae.run_batch(&w.batches[0]).unwrap();
        assert_eq!(out, model.forward(&w.batches[0]).unwrap());
    }

    #[test]
    fn coverage_grows_with_gpu_memory() {
        let (_, w, _, fae_small) = setup(16 << 10);
        let (_, _, _, fae_large) = setup(4 << 20);
        let small = fae_small.gpu_coverage(&w.batches[0]);
        let large = fae_large.gpu_coverage(&w.batches[0]);
        assert!(large > small, "coverage {small} -> {large}");
        assert!(
            large > 0.5,
            "skewed trace should be mostly GPU-served: {large}"
        );
    }

    #[test]
    fn fae_beats_cpu_on_hot_datasets_with_ample_cache() {
        // This tiny test workload makes the fixed per-batch GPU overhead
        // dominate, so isolate the caching effect by comparing the
        // embedding layers (the harness-scale shape test covers totals).
        let (model, w, p, mut fae) = setup(8 << 20);
        let mut cpu = DlrmCpu::new(model, &p, CpuMemoryModel::default()).unwrap();
        let (_, rf) = fae.run_batch(&w.batches[0]).unwrap();
        let (_, rc) = cpu.run_batch(&w.batches[0]).unwrap();
        assert!(
            rf.embedding_ns < rc.embedding_ns,
            "FAE embedding {} should beat CPU {}",
            rf.embedding_ns,
            rc.embedding_ns
        );
    }

    #[test]
    fn zero_cache_fae_degrades_toward_hybrid() {
        let (_, w, _, fae) = setup(0);
        assert_eq!(fae.gpu_coverage(&w.batches[0]), 0.0);
    }
}
