//! GPU and PCIe cost model shared by the hybrid backends.
//!
//! Models the paper's NVIDIA GTX 1080 Ti (Table 2): a device that
//! crushes the dense layers but sits behind a PCIe link and pays a
//! launch/synchronization overhead per batch — the reason DLRM-Hybrid
//! loses to CPU-only inference at batch size 64 (paper §4.2: "GPUs
//! waiting for the embedding results").

/// Tunable GPU + interconnect model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuModel {
    /// Effective dense-layer throughput in flops per nanosecond at
    /// small inference batches (far below peak).
    pub mlp_flops_per_ns: f64,
    /// Nanoseconds per embedding-row gather from GPU memory (HBM/GDDR).
    pub hbm_gather_ns: f64,
    /// Nanoseconds per scalar add when pooling on the GPU.
    pub pool_add_ns: f64,
    /// Kernel-launch + synchronization overhead per batch (ns).
    pub launch_overhead_ns: f64,
    /// PCIe latency per transfer (ns).
    pub pcie_lat_ns: f64,
    /// PCIe bandwidth in GB/s (= bytes per ns).
    pub pcie_gbps: f64,
    /// Device memory available for cached embeddings (bytes). The GTX
    /// 1080 Ti has 11 GB; harnesses scale this with their tables.
    pub mem_bytes: usize,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            mlp_flops_per_ns: 800.0,
            hbm_gather_ns: 0.9,
            pool_add_ns: 0.01,
            // Per-batch H2D staging + kernel launches + sync of an
            // eager-mode inference stack at batch 64.
            launch_overhead_ns: 400_000.0,
            pcie_lat_ns: 9_000.0,
            pcie_gbps: 12.0,
            mem_bytes: 11 << 30,
        }
    }
}

impl GpuModel {
    /// One PCIe transfer of `bytes` bytes.
    pub fn pcie_ns(&self, bytes: usize) -> f64 {
        self.pcie_lat_ns + bytes as f64 / self.pcie_gbps
    }

    /// Dense-layer time for `flops` operations.
    pub fn mlp_ns(&self, flops: u64) -> f64 {
        flops as f64 / self.mlp_flops_per_ns
    }

    /// Gather + pool time for `rows` row reads and `adds` scalar adds.
    pub fn gather_ns(&self, rows: u64, adds: u64) -> f64 {
        rows as f64 * self.hbm_gather_ns + adds as f64 * self.pool_add_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_has_fixed_latency_floor() {
        let g = GpuModel::default();
        assert!(g.pcie_ns(0) >= g.pcie_lat_ns);
        assert!(g.pcie_ns(1 << 20) > g.pcie_ns(1 << 10));
    }

    #[test]
    fn gpu_mlp_is_faster_than_typical_cpu() {
        let g = GpuModel::default();
        let cpu = crate::memory::CpuMemoryModel::default();
        assert!(g.mlp_ns(1_000_000) < cpu.mlp_ns(1_000_000));
    }

    #[test]
    fn gather_scales_with_rows() {
        let g = GpuModel::default();
        assert!(g.gather_ns(200, 0) > g.gather_ns(100, 0));
    }
}
