//! DLRM-Hybrid: the CPU-GPU baseline (paper Table 2).
//!
//! The CPU stores the tables and executes the embedding lookups; the
//! pooled embedding vectors cross PCIe to the GPU, which computes the
//! dense layers. The GPU stalls on the CPU's embedding results and pays
//! a per-batch launch/sync overhead — which is why the paper finds this
//! configuration *slower* than CPU-only inference at batch 64 (§4.2).

use crate::backend::{InferenceBackend, LatencyReport};
use crate::cpu::DlrmCpu;
use crate::gpu::GpuModel;
use crate::memory::CpuMemoryModel;
use dlrm_model::{Dlrm, QueryBatch};
use std::sync::Arc;
use updlrm_core::CoreError;
use workloads::FreqProfile;

/// The CPU-GPU hybrid DLRM implementation.
#[derive(Debug)]
pub struct DlrmHybrid {
    cpu: DlrmCpu,
    gpu: GpuModel,
    model: Arc<Dlrm>,
}

impl DlrmHybrid {
    /// Builds the backend from the shared model, trace profiles and the
    /// two hardware models.
    ///
    /// # Errors
    ///
    /// Propagates [`DlrmCpu::new`] validation.
    pub fn new(
        model: Arc<Dlrm>,
        profiles: &[FreqProfile],
        mem: CpuMemoryModel,
        gpu: GpuModel,
    ) -> Result<Self, CoreError> {
        Ok(DlrmHybrid {
            cpu: DlrmCpu::new(model.clone(), profiles, mem)?,
            gpu,
            model,
        })
    }
}

impl InferenceBackend for DlrmHybrid {
    fn name(&self) -> &'static str {
        "DLRM-Hybrid"
    }

    fn run_batch(&mut self, batch: &QueryBatch) -> Result<(Vec<f32>, LatencyReport), CoreError> {
        let out = self.model.forward(batch)?;
        let b = batch.batch_size();
        let cfg = self.model.config();
        // Pooled embeddings + dense features cross PCIe per batch.
        let pooled_bytes = b * cfg.table_rows.len() * cfg.embedding_dim * 4;
        let dense_bytes = b * cfg.num_dense * 4;
        let flops = (self.model.bottom_mlp().flops_per_sample()
            + self.model.top_mlp().flops_per_sample())
            * b as u64;
        let report = LatencyReport {
            embedding_ns: self.cpu.embedding_ns(batch),
            dense_ns: self.gpu.mlp_ns(flops),
            transfer_ns: self.gpu.pcie_ns(pooled_bytes + dense_bytes) + self.gpu.launch_overhead_ns,
            pim: None,
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InferenceBackend;
    use dlrm_model::DlrmConfig;
    use workloads::{DatasetSpec, TraceConfig, Workload};

    fn setup() -> (Arc<Dlrm>, Workload, Vec<FreqProfile>) {
        let spec = DatasetSpec::goodreads().scaled_down(10_000);
        let workload = Workload::generate(
            &spec,
            TraceConfig {
                num_tables: 2,
                num_batches: 1,
                ..TraceConfig::default()
            },
        );
        let model = Arc::new(
            Dlrm::new(DlrmConfig {
                num_dense: 13,
                embedding_dim: 32,
                table_rows: vec![spec.num_items; 2],
                bottom_hidden: vec![32],
                top_hidden: vec![32],
                seed: 3,
            })
            .unwrap(),
        );
        let profiles = (0..2)
            .map(|t| FreqProfile::from_inputs(model.tables()[t].rows(), workload.table_inputs(t)))
            .collect();
        (model, workload, profiles)
    }

    #[test]
    fn hybrid_output_matches_cpu_output() {
        let (model, w, p) = setup();
        let mut hybrid = DlrmHybrid::new(
            model.clone(),
            &p,
            CpuMemoryModel::default(),
            GpuModel::default(),
        )
        .unwrap();
        let mut cpu = DlrmCpu::new(model, &p, CpuMemoryModel::default()).unwrap();
        let (a, _) = hybrid.run_batch(&w.batches[0]).unwrap();
        let (b, _) = cpu.run_batch(&w.batches[0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hybrid_is_slower_than_cpu_at_small_batches() {
        // The paper's §4.2 observation: DLRM-Hybrid performs the worst.
        let (model, w, p) = setup();
        let mut hybrid = DlrmHybrid::new(
            model.clone(),
            &p,
            CpuMemoryModel::default(),
            GpuModel::default(),
        )
        .unwrap();
        let mut cpu = DlrmCpu::new(model, &p, CpuMemoryModel::default()).unwrap();
        let (_, rh) = hybrid.run_batch(&w.batches[0]).unwrap();
        let (_, rc) = cpu.run_batch(&w.batches[0]).unwrap();
        assert!(
            rh.total_ns() > rc.total_ns(),
            "hybrid {} should lose to cpu {}",
            rh.total_ns(),
            rc.total_ns()
        );
        // ... even though its dense layers are much faster:
        assert!(rh.dense_ns < rc.dense_ns);
    }
}
