//! DPU-GPU heterogeneous backend — the system the paper's conclusion
//! names as future work ("we plan to work on designing a DPU-GPU
//! heterogeneous system to further optimize the inference time").
//!
//! Embeddings run on the PIM array exactly as in UpDLRM; the pooled
//! vectors then cross PCIe to a GPU that computes the dense layers.
//! Whether this beats plain UpDLRM (CPU dense layers) hinges on the
//! per-batch GPU overhead versus the CPU's MLP time — at the paper's
//! batch size 64 the launch/sync overhead dominates, which this model
//! makes measurable.

use crate::backend::{InferenceBackend, LatencyReport};
use crate::gpu::GpuModel;
use dlrm_model::{Dlrm, QueryBatch};
use std::sync::Arc;
use updlrm_core::{CoreError, UpdlrmConfig, UpdlrmEngine};
use workloads::Workload;

/// UpDLRM embeddings + GPU dense layers.
#[derive(Debug)]
pub struct DpuGpuHetero {
    model: Arc<Dlrm>,
    engine: UpdlrmEngine,
    gpu: GpuModel,
}

impl DpuGpuHetero {
    /// Builds the backend (PIM placement as in
    /// [`UpdlrmBackend`](crate::updlrm::UpdlrmBackend)).
    ///
    /// # Errors
    ///
    /// Propagates engine construction errors.
    pub fn from_workload(
        config: UpdlrmConfig,
        model: Arc<Dlrm>,
        workload: &Workload,
        gpu: GpuModel,
    ) -> Result<Self, CoreError> {
        let engine = UpdlrmEngine::from_workload(config, model.tables(), workload)?;
        Ok(DpuGpuHetero { model, engine, gpu })
    }
}

impl InferenceBackend for DpuGpuHetero {
    fn name(&self) -> &'static str {
        "UpDLRM+GPU"
    }

    fn run_batch(&mut self, batch: &QueryBatch) -> Result<(Vec<f32>, LatencyReport), CoreError> {
        let (out, breakdown) = self.engine.run_inference(&self.model, batch)?;
        let b = batch.batch_size();
        let cfg = self.model.config();
        let pooled_bytes = b * cfg.table_rows.len() * cfg.embedding_dim * 4;
        let dense_bytes = b * cfg.num_dense * 4;
        let flops = (self.model.bottom_mlp().flops_per_sample()
            + self.model.top_mlp().flops_per_sample())
            * b as u64;
        let report = LatencyReport {
            embedding_ns: breakdown.total_with_host_ns(),
            dense_ns: self.gpu.mlp_ns(flops),
            transfer_ns: self.gpu.pcie_ns(pooled_bytes + dense_bytes) + self.gpu.launch_overhead_ns,
            pim: Some(breakdown),
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::CpuMemoryModel;
    use crate::updlrm::UpdlrmBackend;
    use dlrm_model::DlrmConfig;
    use updlrm_core::PartitionStrategy;
    use workloads::{DatasetSpec, TraceConfig};

    fn setting() -> (Arc<Dlrm>, Workload) {
        let spec = DatasetSpec::goodreads().scaled_down(5000);
        let workload = Workload::generate(
            &spec,
            TraceConfig {
                num_tables: 2,
                num_batches: 1,
                ..TraceConfig::default()
            },
        );
        let model = Arc::new(
            Dlrm::new_integer_tables(DlrmConfig {
                num_dense: 13,
                embedding_dim: 32,
                table_rows: vec![spec.num_items; 2],
                bottom_hidden: vec![32],
                top_hidden: vec![32],
                seed: 3,
            })
            .unwrap(),
        );
        (model, workload)
    }

    #[test]
    fn hetero_output_matches_reference() {
        let (model, w) = setting();
        let mut hetero = DpuGpuHetero::from_workload(
            UpdlrmConfig::with_dpus(16, PartitionStrategy::CacheAware),
            model.clone(),
            &w,
            GpuModel::default(),
        )
        .unwrap();
        let (out, report) = hetero.run_batch(&w.batches[0]).unwrap();
        assert_eq!(out, model.forward(&w.batches[0]).unwrap());
        assert!(report.pim.is_some());
    }

    #[test]
    fn gpu_overhead_decides_the_hetero_tradeoff() {
        // With the default eager-stack overhead, plain UpDLRM (CPU
        // dense) wins at batch 64; with a graph-captured stack
        // (overhead ~0) the heterogeneous system wins on dense time.
        let (model, w) = setting();
        let config = UpdlrmConfig::with_dpus(16, PartitionStrategy::NonUniform);
        let mut plain = UpdlrmBackend::from_workload(
            config.clone(),
            model.clone(),
            &w,
            CpuMemoryModel::default(),
        )
        .unwrap();
        let mut eager =
            DpuGpuHetero::from_workload(config.clone(), model.clone(), &w, GpuModel::default())
                .unwrap();
        let captured = GpuModel {
            launch_overhead_ns: 2_000.0,
            ..GpuModel::default()
        };
        let mut graphed = DpuGpuHetero::from_workload(config, model.clone(), &w, captured).unwrap();

        let (_, r_plain) = plain.run_batch(&w.batches[0]).unwrap();
        let (_, r_eager) = eager.run_batch(&w.batches[0]).unwrap();
        let (_, r_graphed) = graphed.run_batch(&w.batches[0]).unwrap();
        assert!(
            r_plain.total_ns() < r_eager.total_ns(),
            "eager GPU stack should lose: {} vs {}",
            r_plain.total_ns(),
            r_eager.total_ns()
        );
        assert!(r_graphed.dense_ns < r_plain.dense_ns);
    }
}
