//! CPU memory-hierarchy cost model.
//!
//! The paper's host is an Intel Xeon Silver 4110 with 128 GB of DRAM
//! (Table 2). Embedding gathers on such a CPU are dominated by LLC
//! behaviour: the hottest rows stay resident while the long tail pays a
//! DRAM access. This model is *trace-driven* — it classifies every
//! access of the real batch against a frequency-derived hot set
//! (approximating steady-state LRU), rather than assuming a flat rate.

use workloads::FreqProfile;

/// Tunable CPU timing model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuMemoryModel {
    /// Last-level cache capacity in bytes (Xeon Silver 4110: 11 MB).
    pub llc_bytes: usize,
    /// Effective nanoseconds per LLC-resident row gather.
    pub llc_hit_ns: f64,
    /// Effective nanoseconds per DRAM row gather (with the overlap an
    /// out-of-order core extracts from independent lookups).
    pub dram_miss_ns: f64,
    /// Effective CPU MLP throughput in flops per nanosecond
    /// (multiply-accumulates count as 2 flops).
    pub mlp_flops_per_ns: f64,
    /// Nanoseconds per scalar add when pooling embedding vectors.
    pub pool_add_ns: f64,
}

impl Default for CpuMemoryModel {
    fn default() -> Self {
        CpuMemoryModel {
            llc_bytes: 11 << 20,
            llc_hit_ns: 4.0,
            dram_miss_ns: 18.0,
            mlp_flops_per_ns: 50.0,
            pool_add_ns: 0.05,
        }
    }
}

impl CpuMemoryModel {
    /// Steady-state hot set for one table: the most frequent items
    /// whose rows fit in this table's share of the LLC.
    ///
    /// Returns a per-item flag vector (`true` = LLC-resident).
    pub fn hot_flags(&self, profile: &FreqProfile, row_bytes: usize, tables: usize) -> Vec<bool> {
        let share = self.llc_bytes / tables.max(1);
        let budget_rows = share / row_bytes.max(1);
        let mut flags = vec![false; profile.num_items()];
        for item in profile.items_by_frequency().into_iter().take(budget_rows) {
            flags[item as usize] = true;
        }
        flags
    }

    /// Gather time for a set of accesses split into LLC hits and misses.
    pub fn gather_ns(&self, hits: u64, misses: u64) -> f64 {
        hits as f64 * self.llc_hit_ns + misses as f64 * self.dram_miss_ns
    }

    /// Pooling (sum-reduction) time for `adds` scalar additions.
    pub fn pool_ns(&self, adds: u64) -> f64 {
        adds as f64 * self.pool_add_ns
    }

    /// Dense-layer time for `flops` floating point operations.
    pub fn mlp_ns(&self, flops: u64) -> f64 {
        flops as f64 / self.mlp_flops_per_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_flags_prefer_frequent_items() {
        let mut p = FreqProfile::new(100);
        for _ in 0..50 {
            p.record(42);
        }
        p.record(7);
        let m = CpuMemoryModel {
            llc_bytes: 128 * 2,
            ..CpuMemoryModel::default()
        };
        // share = 256 bytes / 1 table, 128-byte rows -> 2 hot rows.
        let flags = m.hot_flags(&p, 128, 1);
        assert!(flags[42]);
        assert!(flags[7]);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 2);
    }

    #[test]
    fn hot_set_shrinks_with_more_tables() {
        let mut p = FreqProfile::new(64);
        for i in 0..64 {
            p.record(i);
        }
        let m = CpuMemoryModel {
            llc_bytes: 64 * 128,
            ..CpuMemoryModel::default()
        };
        let one = m.hot_flags(&p, 128, 1).iter().filter(|&&f| f).count();
        let eight = m.hot_flags(&p, 128, 8).iter().filter(|&&f| f).count();
        assert_eq!(one, 64);
        assert_eq!(eight, 8);
    }

    #[test]
    fn misses_cost_more_than_hits() {
        let m = CpuMemoryModel::default();
        assert!(m.gather_ns(0, 100) > m.gather_ns(100, 0));
        assert_eq!(m.gather_ns(0, 0), 0.0);
    }

    #[test]
    fn mlp_time_scales_with_flops() {
        let m = CpuMemoryModel::default();
        assert!((m.mlp_ns(1000) - 2.0 * m.mlp_ns(500)).abs() < 1e-9);
    }
}
