//! DLRM-CPU: the CPU-only baseline (paper Table 2, first row).
//!
//! The CPU stores the embedding tables in DRAM and performs both the
//! embedding gathers and the dense layers. Gather cost is trace-driven
//! through the LLC hot-set model of [`CpuMemoryModel`].

use crate::backend::{InferenceBackend, LatencyReport};
use crate::memory::CpuMemoryModel;
use dlrm_model::{Dlrm, QueryBatch};
use std::sync::Arc;
use updlrm_core::CoreError;
use workloads::FreqProfile;

/// The CPU-only DLRM implementation.
#[derive(Debug)]
pub struct DlrmCpu {
    model: Arc<Dlrm>,
    mem: CpuMemoryModel,
    hot: Vec<Vec<bool>>,
}

impl DlrmCpu {
    /// Builds the backend; `profiles` drive the per-table LLC hot sets.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the profile count mismatches the
    /// model's table count.
    pub fn new(
        model: Arc<Dlrm>,
        profiles: &[FreqProfile],
        mem: CpuMemoryModel,
    ) -> Result<Self, CoreError> {
        if profiles.len() != model.tables().len() {
            return Err(CoreError::InvalidConfig(format!(
                "{} profiles for {} tables",
                profiles.len(),
                model.tables().len()
            )));
        }
        let row_bytes = model.config().embedding_dim * 4;
        let tables = model.tables().len();
        let hot = profiles
            .iter()
            .map(|p| mem.hot_flags(p, row_bytes, tables))
            .collect();
        Ok(DlrmCpu { model, mem, hot })
    }

    /// Counts this batch's LLC hits and misses against the hot sets.
    pub(crate) fn classify(&self, batch: &QueryBatch) -> (u64, u64) {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (t, sparse) in batch.sparse.iter().enumerate() {
            for &i in &sparse.indices {
                if self.hot[t].get(i as usize).copied().unwrap_or(false) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        (hits, misses)
    }

    /// Embedding-layer time for this batch (gather + pooling) — exposed
    /// so harnesses can compare embedding layers in isolation (Fig. 9).
    pub fn embedding_ns(&self, batch: &QueryBatch) -> f64 {
        let (hits, misses) = self.classify(batch);
        let dim = self.model.config().embedding_dim as u64;
        let adds = (hits + misses) * dim;
        self.mem.gather_ns(hits, misses) + self.mem.pool_ns(adds)
    }

    /// Dense-layer time for `batch_size` samples.
    pub fn dense_ns(&self, batch_size: usize) -> f64 {
        let flops = (self.model.bottom_mlp().flops_per_sample()
            + self.model.top_mlp().flops_per_sample())
            * batch_size as u64;
        self.mem.mlp_ns(flops)
    }

    /// The memory model in effect.
    pub fn memory_model(&self) -> &CpuMemoryModel {
        &self.mem
    }
}

impl InferenceBackend for DlrmCpu {
    fn name(&self) -> &'static str {
        "DLRM-CPU"
    }

    fn run_batch(&mut self, batch: &QueryBatch) -> Result<(Vec<f32>, LatencyReport), CoreError> {
        let out = self.model.forward(batch)?;
        let report = LatencyReport {
            embedding_ns: self.embedding_ns(batch),
            dense_ns: self.dense_ns(batch.batch_size()),
            transfer_ns: 0.0,
            pim: None,
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_model::DlrmConfig;
    use workloads::{DatasetSpec, TraceConfig, Workload};

    fn setup() -> (Arc<Dlrm>, Workload) {
        let spec = DatasetSpec::goodreads().scaled_down(10_000);
        let workload = Workload::generate(
            &spec,
            TraceConfig {
                num_tables: 2,
                num_batches: 2,
                ..TraceConfig::default()
            },
        );
        let model = Dlrm::new(DlrmConfig {
            num_dense: 13,
            embedding_dim: 32,
            table_rows: vec![spec.num_items; 2],
            bottom_hidden: vec![32],
            top_hidden: vec![32],
            seed: 3,
        })
        .unwrap();
        (Arc::new(model), workload)
    }

    fn profiles(model: &Dlrm, w: &Workload) -> Vec<FreqProfile> {
        (0..model.tables().len())
            .map(|t| FreqProfile::from_inputs(model.tables()[t].rows(), w.table_inputs(t)))
            .collect()
    }

    #[test]
    fn output_matches_reference_forward() {
        let (model, w) = setup();
        let p = profiles(&model, &w);
        let mut cpu = DlrmCpu::new(model.clone(), &p, CpuMemoryModel::default()).unwrap();
        let (out, report) = cpu.run_batch(&w.batches[0]).unwrap();
        assert_eq!(out, model.forward(&w.batches[0]).unwrap());
        assert!(report.embedding_ns > 0.0);
        assert!(report.dense_ns > 0.0);
        assert_eq!(report.transfer_ns, 0.0);
    }

    #[test]
    fn skewed_traces_hit_the_llc_often() {
        let (model, w) = setup();
        let p = profiles(&model, &w);
        let cpu = DlrmCpu::new(model, &p, CpuMemoryModel::default()).unwrap();
        let (hits, misses) = cpu.classify(&w.batches[0]);
        assert!(
            hits > misses,
            "goodreads-like trace should be cache friendly: {hits}/{misses}"
        );
    }

    #[test]
    fn embedding_cost_dominates_for_high_reduction() {
        // The paper's premise: embedding layers are the bottleneck.
        let (model, w) = setup();
        let p = profiles(&model, &w);
        let mut cpu = DlrmCpu::new(model, &p, CpuMemoryModel::default()).unwrap();
        let (_, report) = cpu.run_batch(&w.batches[0]).unwrap();
        assert!(report.embedding_ns > report.dense_ns);
    }

    #[test]
    fn profile_count_is_validated() {
        let (model, w) = setup();
        let p = profiles(&model, &w);
        assert!(DlrmCpu::new(model, &p[..1], CpuMemoryModel::default()).is_err());
    }
}
