//! # baselines — the four compared DLRM inference systems
//!
//! The UpDLRM paper evaluates against three open-source DLRM
//! implementations (Table 2): **DLRM-CPU** (CPU-only), **DLRM-Hybrid**
//! (CPU embedding + GPU dense over PCIe) and **FAE** (hybrid with hot
//! embeddings cached in GPU memory). None of that hardware is available
//! here, so each backend pairs the *functional* DLRM forward pass with
//! a calibrated, trace-driven timing model of its hardware (see
//! DESIGN.md §1 for the substitution table).
//!
//! All four systems — including UpDLRM itself via [`UpdlrmBackend`] —
//! implement [`InferenceBackend`], so harnesses can sweep them
//! uniformly and tests can assert they produce identical CTR outputs.
//!
//! ## Example
//!
//! ```rust
//! use baselines::{CpuMemoryModel, DlrmCpu, InferenceBackend};
//! use dlrm_model::{Dlrm, DlrmConfig};
//! use std::sync::Arc;
//! use workloads::{DatasetSpec, FreqProfile, TraceConfig, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = DatasetSpec::amazon_clothes().scaled_down(50_000);
//! let workload = Workload::generate(
//!     &spec,
//!     TraceConfig { num_tables: 2, num_batches: 1, ..TraceConfig::default() },
//! );
//! let model = Arc::new(Dlrm::new(DlrmConfig {
//!     num_dense: 13,
//!     embedding_dim: 32,
//!     table_rows: vec![spec.num_items; 2],
//!     bottom_hidden: vec![32],
//!     top_hidden: vec![32],
//!     seed: 1,
//! })?);
//! let profiles: Vec<FreqProfile> = (0..2)
//!     .map(|t| FreqProfile::from_inputs(spec.num_items, workload.table_inputs(t)))
//!     .collect();
//! let mut cpu = DlrmCpu::new(model, &profiles, CpuMemoryModel::default())?;
//! let (ctr, report) = cpu.run_batch(&workload.batches[0])?;
//! assert_eq!(ctr.len(), 64);
//! assert!(report.total_ns() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod cpu;
pub mod fae;
pub mod gpu;
pub mod hetero;
pub mod hybrid;
pub mod memory;
pub mod updlrm;

pub use backend::{InferenceBackend, LatencyReport};
pub use cpu::DlrmCpu;
pub use fae::Fae;
pub use gpu::GpuModel;
pub use hetero::DpuGpuHetero;
pub use hybrid::DlrmHybrid;
pub use memory::CpuMemoryModel;
pub use updlrm::UpdlrmBackend;
