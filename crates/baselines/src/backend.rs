//! The common inference-backend interface all four systems implement.

use dlrm_model::QueryBatch;
use updlrm_core::{CoreError, EmbeddingBreakdown};

/// Per-batch latency report common to every backend.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyReport {
    /// Embedding-layer time (lookup + pooling + any device transfer the
    /// embedding path needs), nanoseconds.
    pub embedding_ns: f64,
    /// Dense-layer (bottom + top MLP + interaction) time, nanoseconds.
    pub dense_ns: f64,
    /// Extra device-transfer/launch time not attributable to either
    /// layer (e.g. PCIe for hybrid backends), nanoseconds.
    pub transfer_ns: f64,
    /// Detailed stage breakdown when the backend runs on the PIM array.
    pub pim: Option<EmbeddingBreakdown>,
}

impl LatencyReport {
    /// End-to-end inference time for the batch.
    pub fn total_ns(&self) -> f64 {
        self.embedding_ns + self.dense_ns + self.transfer_ns
    }

    /// Accumulates another batch's report.
    pub fn accumulate(&mut self, other: &LatencyReport) {
        self.embedding_ns += other.embedding_ns;
        self.dense_ns += other.dense_ns;
        self.transfer_ns += other.transfer_ns;
        match (&mut self.pim, &other.pim) {
            (Some(a), Some(b)) => a.accumulate(b),
            (None, Some(b)) => self.pim = Some(*b),
            _ => {}
        }
    }
}

/// A DLRM inference system: functional forward pass plus a latency
/// model of the hardware it represents.
///
/// Implementations must be *functionally equivalent*: for the same
/// batch, every backend returns the same CTR outputs (bit-exact for
/// integer-valued tables), differing only in modeled latency.
pub trait InferenceBackend {
    /// Short display name (paper's legend labels).
    fn name(&self) -> &'static str;

    /// Runs one batch, returning CTR probabilities and the latency
    /// report.
    ///
    /// # Errors
    ///
    /// Malformed batches, out-of-range indices, or simulator faults.
    fn run_batch(&mut self, batch: &QueryBatch) -> Result<(Vec<f32>, LatencyReport), CoreError>;

    /// A telemetry snapshot, when this backend records fleet metrics.
    /// Only the PIM-backed UpDLRM backend does; the CPU/GPU baselines
    /// return `None`.
    fn metrics_snapshot(&self) -> Option<updlrm_core::Snapshot> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_totals_and_accumulates() {
        let mut a = LatencyReport {
            embedding_ns: 1.0,
            dense_ns: 2.0,
            transfer_ns: 3.0,
            pim: None,
        };
        assert_eq!(a.total_ns(), 6.0);
        let b = LatencyReport {
            embedding_ns: 10.0,
            dense_ns: 20.0,
            transfer_ns: 30.0,
            pim: None,
        };
        a.accumulate(&b);
        assert_eq!(a.total_ns(), 66.0);
    }

    #[test]
    fn backend_trait_is_object_safe() {
        fn _takes(_: &mut dyn InferenceBackend) {}
    }
}
