//! Differential tests for the host-parallel DPU-fleet launch path:
//! whatever `host_threads` is set to, `launch` must produce
//! `LaunchReport`s that are bit-identical to the serial path — down to
//! the f64 bit patterns of `wall_ns` and `energy_pj` — and must keep
//! the serial path's error semantics (the *earliest* faulting launch
//! id wins) on mixed fleets with faulting DPUs, duplicate ids, and
//! ragged MRAM loads.

use upmem_sim::{DpuId, Kernel, LaunchReport, PimConfig, PimSystem, Result, SimError, TaskletCtx};

const NR_DPUS: usize = 16;
const TASKLETS: usize = 4;
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// Mixed-work kernel: per-DPU/per-tasklet work skew plus MRAM traffic,
/// faulting on every DPU listed in `fault_on`.
struct MixedFleet {
    fault_on: Vec<DpuId>,
}

impl MixedFleet {
    fn healthy() -> Self {
        MixedFleet { fault_on: vec![] }
    }
}

impl Kernel for MixedFleet {
    fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<()> {
        if self.fault_on.contains(&ctx.dpu_id()) && ctx.tasklet_id() == 0 {
            return Err(SimError::KernelFault(format!(
                "dpu {} exploded",
                ctx.dpu_id().0
            )));
        }
        let skew = (ctx.dpu_id().0 as usize * 31 + ctx.tasklet_id() * 7) % 64;
        let mut buf = [0u8; 64];
        for i in 0..=skew {
            ctx.mram_read(((i % 8) * 64) as u32, &mut buf)?;
            ctx.charge_accumulate(16);
        }
        ctx.charge_loop(skew as u64 + 1);
        Ok(())
    }
}

/// Builds a system whose per-DPU MRAM loads are deliberately ragged
/// (every DPU holds a different-sized region) so the transfer path the
/// fleet rides in on is the serialized one.
fn ragged_system(host_threads: usize) -> PimSystem {
    let mut sys = PimSystem::new(PimConfig::new(NR_DPUS, TASKLETS).with_host_threads(host_threads))
        .expect("valid config");
    for d in 0..NR_DPUS {
        let bytes = vec![d as u8; 512 + d * 64];
        sys.load_mram(DpuId(d as u32), 0, &bytes).expect("fits");
    }
    sys
}

fn assert_bit_identical(a: &LaunchReport, b: &LaunchReport, what: &str) {
    assert_eq!(a, b, "{what}: structural mismatch");
    assert_eq!(
        a.wall_ns.to_bits(),
        b.wall_ns.to_bits(),
        "{what}: wall_ns bits differ"
    );
    assert_eq!(
        a.energy_pj.to_bits(),
        b.energy_pj.to_bits(),
        "{what}: energy_pj bits differ"
    );
    for ((id_a, s_a), (id_b, s_b)) in a.per_dpu.iter().zip(b.per_dpu.iter()) {
        assert_eq!(id_a, id_b, "{what}: per-DPU order differs");
        assert_eq!(
            s_a.energy_pj.to_bits(),
            s_b.energy_pj.to_bits(),
            "{what}: DPU {id_a:?} energy bits differ"
        );
    }
}

#[test]
fn thread_sweep_is_bit_identical_on_ragged_fleet() {
    let ids: Vec<DpuId> = (0..NR_DPUS as u32).map(DpuId).collect();
    let mut serial = ragged_system(1);
    let baseline = serial.launch(&ids, &MixedFleet::healthy()).unwrap();
    assert_eq!(baseline.per_dpu.len(), NR_DPUS);

    for threads in THREAD_SWEEP {
        let mut sys = ragged_system(threads);
        let report = sys.launch(&ids, &MixedFleet::healthy()).unwrap();
        assert_bit_identical(&baseline, &report, &format!("host_threads={threads}"));
    }
}

#[test]
fn subset_launch_order_is_preserved_across_threads() {
    // Launch a shuffled, non-contiguous subset: per_dpu must come back
    // in launch order (not DPU-id order) on every thread count.
    let ids = [DpuId(9), DpuId(2), DpuId(15), DpuId(4), DpuId(11)];
    let mut serial = ragged_system(1);
    let baseline = serial.launch(&ids, &MixedFleet::healthy()).unwrap();
    let order: Vec<DpuId> = baseline.per_dpu.iter().map(|(d, _)| *d).collect();
    assert_eq!(order, ids.to_vec());

    for threads in THREAD_SWEEP {
        let mut sys = ragged_system(threads);
        let report = sys.launch(&ids, &MixedFleet::healthy()).unwrap();
        assert_bit_identical(&baseline, &report, &format!("subset threads={threads}"));
    }
}

#[test]
fn fault_surfaces_earliest_launch_position_on_every_thread_count() {
    // Two faulting DPUs; the launch order puts DPU 13 *before* DPU 5,
    // so position order (13 first), not id order (5 first), must win.
    let kernel = MixedFleet {
        fault_on: vec![DpuId(5), DpuId(13)],
    };
    let ids = [DpuId(7), DpuId(13), DpuId(0), DpuId(5), DpuId(2)];
    for threads in THREAD_SWEEP {
        let mut sys = ragged_system(threads);
        let err = sys.launch(&ids, &kernel).unwrap_err();
        assert_eq!(
            err,
            SimError::KernelFault("dpu 13 exploded".into()),
            "host_threads={threads}"
        );
        // The fleet is not poisoned: a healthy launch still works and
        // still matches the serial report bit for bit.
        let healthy = sys.launch(&ids, &MixedFleet::healthy()).unwrap();
        let mut serial = ragged_system(1);
        let baseline = serial.launch(&ids, &MixedFleet::healthy()).unwrap();
        assert_bit_identical(
            &baseline,
            &healthy,
            &format!("post-fault threads={threads}"),
        );
    }
}

#[test]
fn duplicate_ids_fall_back_to_serial_and_stay_identical() {
    // Duplicate launch ids force the serial fallback; the report must
    // still be bit-identical across thread counts, with one per_dpu
    // entry per occurrence.
    let ids = [DpuId(3), DpuId(8), DpuId(3), DpuId(1), DpuId(8)];
    let mut serial = ragged_system(1);
    let baseline = serial.launch(&ids, &MixedFleet::healthy()).unwrap();
    assert_eq!(baseline.per_dpu.len(), ids.len());

    for threads in THREAD_SWEEP {
        let mut sys = ragged_system(threads);
        let report = sys.launch(&ids, &MixedFleet::healthy()).unwrap();
        assert_bit_identical(&baseline, &report, &format!("dupes threads={threads}"));
    }
}

#[test]
fn duplicate_ids_with_fault_error_on_earliest_position() {
    // Serial fallback + fault: the earliest *position* referencing a
    // faulting DPU reports, even though a smaller faulting id occurs
    // later in the list.
    let kernel = MixedFleet {
        fault_on: vec![DpuId(1), DpuId(8)],
    };
    let ids = [DpuId(3), DpuId(8), DpuId(3), DpuId(1), DpuId(8)];
    for threads in THREAD_SWEEP {
        let mut sys = ragged_system(threads);
        let err = sys.launch(&ids, &kernel).unwrap_err();
        assert_eq!(
            err,
            SimError::KernelFault("dpu 8 exploded".into()),
            "host_threads={threads}"
        );
    }
}
