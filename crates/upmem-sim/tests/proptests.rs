//! Property-based tests for the UPMEM simulator's architectural laws.

use proptest::prelude::*;
use upmem_sim::arch::{Cycles, DpuId, DMA_MAX_TRANSFER, MRAM_CAPACITY};
use upmem_sim::stats::{DpuRunStats, LaunchReport};
use upmem_sim::{CostModel, Mram, Wram};

/// A launch report over the given per-DPU cycle counts.
fn launch_with_cycles(cycles: &[u64]) -> LaunchReport {
    LaunchReport {
        wall_cycles: Cycles(cycles.iter().copied().max().unwrap_or(0)),
        wall_ns: 0.0,
        per_dpu: cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    DpuId(i as u32),
                    DpuRunStats {
                        cycles: Cycles(c),
                        ..DpuRunStats::default()
                    },
                )
            })
            .collect(),
        energy_pj: 0.0,
    }
}

proptest! {
    /// Any aligned, sized, in-bounds DMA write is readable back verbatim.
    #[test]
    fn dma_write_read_round_trip(
        addr_blk in 0u32..1024,
        len_blk in 1usize..=(DMA_MAX_TRANSFER / 8),
        seed in any::<u8>(),
    ) {
        let addr = addr_blk * 8;
        let len = len_blk * 8;
        let mut m = Mram::new();
        let data: Vec<u8> = (0..len).map(|i| seed.wrapping_add(i as u8)).collect();
        m.dma_write(addr, &data).unwrap();
        let mut out = vec![0u8; len];
        m.dma_read(addr, &mut out).unwrap();
        prop_assert_eq!(data, out);
    }

    /// DMA validation accepts exactly the hardware-legal requests.
    #[test]
    fn dma_check_matches_hardware_rules(addr in 0u32..=(MRAM_CAPACITY as u32), len in 0usize..4096) {
        let ok = Mram::check_dma(addr, len).is_ok();
        let legal = len > 0
            && len <= DMA_MAX_TRANSFER
            && (addr as usize).is_multiple_of(8)
            && len % 8 == 0
            && addr as usize + len <= MRAM_CAPACITY;
        prop_assert_eq!(ok, legal);
    }

    /// Writes to disjoint regions never interfere.
    #[test]
    fn disjoint_writes_do_not_interfere(a_blk in 0u32..512, b_off in 1u32..512) {
        let a = a_blk * 8;
        let b = a + b_off * 8 + 8; // disjoint, both 8-byte regions
        let mut m = Mram::new();
        m.dma_write(a, &[0x11; 8]).unwrap();
        m.dma_write(b, &[0x22; 8]).unwrap();
        let mut ra = [0u8; 8];
        let mut rb = [0u8; 8];
        m.dma_read(a, &mut ra).unwrap();
        m.dma_read(b, &mut rb).unwrap();
        prop_assert_eq!(ra, [0x11; 8]);
        prop_assert_eq!(rb, [0x22; 8]);
    }

    /// The DMA latency curve is monotonically non-decreasing in size.
    #[test]
    fn dma_latency_monotonic(a in 1usize..=256, b in 1usize..=256) {
        let m = CostModel::default();
        let (small, large) = (a.min(b) * 8, a.max(b) * 8);
        prop_assert!(m.dma_nanos(small) <= m.dma_nanos(large));
    }

    /// The load-imbalance index (slowest DPU over mean) is at least 1:
    /// no fleet can finish before its own average. Exactly 1 only when
    /// every DPU took the same time (up to f64 division rounding).
    #[test]
    fn load_imbalance_is_at_least_one(cycles in prop::collection::vec(0u64..1_000_000, 1..64)) {
        let imb = launch_with_cycles(&cycles).imbalance();
        prop_assert!(imb >= 1.0 - 1e-9, "imbalance {imb} < 1 for {cycles:?}");
        let all_equal = cycles.iter().all(|&c| c == cycles[0]);
        if all_equal {
            prop_assert!((imb - 1.0).abs() < 1e-9, "balanced fleet reported {imb}");
        }
    }

    /// The imbalance index is a fleet property, not an ordering
    /// property: relabeling the DPUs (any rotation of the cycle list)
    /// yields the bit-identical index, because max and the u64 cycle
    /// sum are both order-independent.
    #[test]
    fn load_imbalance_is_invariant_under_dpu_permutation(
        cycles in prop::collection::vec(0u64..1_000_000, 1..64),
        rot in 0usize..64,
    ) {
        let base = launch_with_cycles(&cycles).imbalance();
        let mut permuted = cycles.clone();
        permuted.rotate_left(rot % cycles.len());
        let rotated = launch_with_cycles(&permuted).imbalance();
        prop_assert_eq!(
            base.to_bits(),
            rotated.to_bits(),
            "imbalance changed under rotation: {} vs {}",
            base,
            rotated
        );
        permuted.reverse();
        let reversed = launch_with_cycles(&permuted).imbalance();
        prop_assert_eq!(
            base.to_bits(),
            reversed.to_bits(),
            "imbalance changed under reversal: {} vs {}",
            base,
            reversed
        );
    }

    /// WRAM round trip for arbitrary in-bounds ranges.
    #[test]
    fn wram_round_trip(off in 0usize..60_000, len in 1usize..4096) {
        let mut w = Wram::new();
        if off + len <= w.capacity() {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            w.write(off, &data).unwrap();
            let mut out = vec![0u8; len];
            w.read(off, &mut out).unwrap();
            prop_assert_eq!(data, out);
        } else {
            prop_assert!(w.write(off, &vec![0u8; len]).is_err());
        }
    }
}
