//! Property-based tests for the UPMEM simulator's architectural laws.

use proptest::prelude::*;
use upmem_sim::arch::{DMA_MAX_TRANSFER, MRAM_CAPACITY};
use upmem_sim::{CostModel, Mram, Wram};

proptest! {
    /// Any aligned, sized, in-bounds DMA write is readable back verbatim.
    #[test]
    fn dma_write_read_round_trip(
        addr_blk in 0u32..1024,
        len_blk in 1usize..=(DMA_MAX_TRANSFER / 8),
        seed in any::<u8>(),
    ) {
        let addr = addr_blk * 8;
        let len = len_blk * 8;
        let mut m = Mram::new();
        let data: Vec<u8> = (0..len).map(|i| seed.wrapping_add(i as u8)).collect();
        m.dma_write(addr, &data).unwrap();
        let mut out = vec![0u8; len];
        m.dma_read(addr, &mut out).unwrap();
        prop_assert_eq!(data, out);
    }

    /// DMA validation accepts exactly the hardware-legal requests.
    #[test]
    fn dma_check_matches_hardware_rules(addr in 0u32..=(MRAM_CAPACITY as u32), len in 0usize..4096) {
        let ok = Mram::check_dma(addr, len).is_ok();
        let legal = len > 0
            && len <= DMA_MAX_TRANSFER
            && (addr as usize).is_multiple_of(8)
            && len % 8 == 0
            && addr as usize + len <= MRAM_CAPACITY;
        prop_assert_eq!(ok, legal);
    }

    /// Writes to disjoint regions never interfere.
    #[test]
    fn disjoint_writes_do_not_interfere(a_blk in 0u32..512, b_off in 1u32..512) {
        let a = a_blk * 8;
        let b = a + b_off * 8 + 8; // disjoint, both 8-byte regions
        let mut m = Mram::new();
        m.dma_write(a, &[0x11; 8]).unwrap();
        m.dma_write(b, &[0x22; 8]).unwrap();
        let mut ra = [0u8; 8];
        let mut rb = [0u8; 8];
        m.dma_read(a, &mut ra).unwrap();
        m.dma_read(b, &mut rb).unwrap();
        prop_assert_eq!(ra, [0x11; 8]);
        prop_assert_eq!(rb, [0x22; 8]);
    }

    /// The DMA latency curve is monotonically non-decreasing in size.
    #[test]
    fn dma_latency_monotonic(a in 1usize..=256, b in 1usize..=256) {
        let m = CostModel::default();
        let (small, large) = (a.min(b) * 8, a.max(b) * 8);
        prop_assert!(m.dma_nanos(small) <= m.dma_nanos(large));
    }

    /// WRAM round trip for arbitrary in-bounds ranges.
    #[test]
    fn wram_round_trip(off in 0usize..60_000, len in 1usize..4096) {
        let mut w = Wram::new();
        if off + len <= w.capacity() {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            w.write(off, &data).unwrap();
            let mut out = vec![0u8; len];
            w.read(off, &mut out).unwrap();
            prop_assert_eq!(data, out);
        } else {
            prop_assert!(w.write(off, &vec![0u8; len]).is_err());
        }
    }
}
