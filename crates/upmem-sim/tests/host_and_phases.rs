//! Integration tests for host transfer semantics and the two-phase
//! (barrier) kernel protocol.

use upmem_sim::{CostModel, DpuId, Kernel, PimConfig, PimSystem, SimError, TaskletCtx};

#[test]
fn broadcast_charges_bytes_once_per_group() {
    let mut sys = PimSystem::new(PimConfig::new(8, 4)).unwrap();
    let buf = vec![1u8; 4096];
    let all: Vec<DpuId> = sys.dpu_ids().collect();

    // Broadcast one buffer to 8 DPUs...
    let broadcast = sys
        .scatter_broadcast(&[(all.as_slice(), 0, buf.as_slice())])
        .unwrap();
    // ...versus scattering 8 copies.
    let per_dpu: Vec<(DpuId, u32, &[u8])> =
        all.iter().map(|&d| (d, 4096u32, buf.as_slice())).collect();
    let scatter = sys.scatter(&per_dpu).unwrap();

    assert_eq!(broadcast.bytes, 4096);
    assert_eq!(scatter.bytes, 8 * 4096);
    assert!(broadcast.wall_ns < scatter.wall_ns);

    // Functionally, every DPU received the broadcast buffer.
    for &d in &all {
        let (bufs, _) = sys.gather(&[(d, 0, 16)]).unwrap();
        assert_eq!(bufs[0], vec![1u8; 16]);
    }
}

#[test]
fn transfer_wall_time_uses_aggregate_bus() {
    // Doubling the DPU count at the same per-DPU buffer size doubles
    // total bytes and therefore the wall time (shared bus), minus the
    // fixed base.
    let cost = CostModel::default();
    let wall = |n_dpus: usize| {
        let mut sys = PimSystem::new(PimConfig::new(n_dpus, 1)).unwrap();
        let buf = vec![0u8; 8192];
        let transfers: Vec<(DpuId, u32, &[u8])> =
            sys.dpu_ids().map(|d| (d, 0u32, buf.as_slice())).collect();
        let transfers: Vec<(DpuId, u32, &[u8])> = transfers;
        sys.scatter(&transfers).unwrap().wall_ns - cost.host_transfer_base_ns
    };
    let w4 = wall(4);
    let w8 = wall(8);
    assert!((w8 / w4 - 2.0).abs() < 0.05, "expected ~2x: {w4} vs {w8}");
}

/// Kernel that writes in phase 1 and verifies cross-tasklet visibility
/// in phase 2 (i.e. the barrier works).
struct BarrierProbe;

impl Kernel for BarrierProbe {
    fn shared_wram_bytes(&self) -> usize {
        64
    }

    fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
        let t = ctx.tasklet_id();
        ctx.shared_wram()[t] = (t as u8) + 1;
        ctx.charge_instrs(10);
        Ok(())
    }

    fn finalize(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
        // Every tasklet sees every other tasklet's phase-1 write.
        let n = ctx.n_tasklets();
        let shared = ctx.shared_wram();
        for (t, &cell) in shared.iter().enumerate().take(n) {
            if cell != (t as u8) + 1 {
                return Err(SimError::KernelFault(format!(
                    "tasklet {t}'s phase-1 write not visible at the barrier"
                )));
            }
        }
        ctx.charge_instrs(5);
        Ok(())
    }
}

#[test]
fn finalize_runs_after_all_tasklets() {
    let mut sys = PimSystem::new(PimConfig::new(2, 8)).unwrap();
    let report = sys.launch_all(&BarrierProbe).unwrap();
    // Both phases' instructions are accounted.
    let per_dpu_instrs = report.per_dpu[0].1.totals.instrs;
    assert_eq!(per_dpu_instrs, 8 * (10 + 5));
}

/// Phase costs must add up (a barrier cannot overlap the phases).
struct TwoPhaseCost;

impl Kernel for TwoPhaseCost {
    fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
        ctx.charge_instrs(1_000);
        Ok(())
    }
    fn finalize(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
        ctx.charge_instrs(500);
        Ok(())
    }
}

struct OnePhaseCost;

impl Kernel for OnePhaseCost {
    fn run(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
        ctx.charge_instrs(1_500);
        Ok(())
    }
}

#[test]
fn phase_times_accumulate() {
    let mut a = PimSystem::new(PimConfig::new(1, 14)).unwrap();
    let two = a.launch_all(&TwoPhaseCost).unwrap().wall_cycles;
    let mut b = PimSystem::new(PimConfig::new(1, 14)).unwrap();
    let one = b.launch_all(&OnePhaseCost).unwrap().wall_cycles;
    // Same total instructions; the two-phase version can only be equal
    // or slower (it pays both pipeline fills but one launch overhead).
    assert!(two >= one, "two-phase {two} vs one-phase {one}");
}

#[test]
fn kernel_error_in_finalize_propagates() {
    struct FailLate;
    impl Kernel for FailLate {
        fn run(&self, _ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
        fn finalize(&self, ctx: &mut TaskletCtx<'_>) -> Result<(), SimError> {
            if ctx.tasklet_id() == 1 {
                return Err(SimError::KernelFault("late failure".into()));
            }
            Ok(())
        }
    }
    let mut sys = PimSystem::new(PimConfig::new(1, 4)).unwrap();
    let err = sys.launch_all(&FailLate).unwrap_err();
    assert!(matches!(err, SimError::KernelFault(_)));
}
