//! Architectural constants and strong ID types for the UPMEM PIM system.
//!
//! The numbers below follow the UPMEM v1A product described in the UpDLRM
//! paper (DAC'24, §2.2) and the public UPMEM SDK documentation: each DPU is
//! a 350 MHz multi-threaded 32-bit RISC core with an 11-stage pipeline,
//! exclusive access to a 64 MB DRAM bank (MRAM), a 64 KB scratchpad (WRAM)
//! and a 24 KB instruction memory (IRAM). MRAM is reached through a DMA
//! engine whose transfers must be 8-byte aligned and at most 2048 bytes.

use std::fmt;

/// Capacity of one DPU's MRAM bank in bytes (64 MB).
pub const MRAM_CAPACITY: usize = 64 * 1024 * 1024;

/// Capacity of one DPU's WRAM scratchpad in bytes (64 KB).
pub const WRAM_CAPACITY: usize = 64 * 1024;

/// Capacity of one DPU's IRAM instruction memory in bytes (24 KB).
pub const IRAM_CAPACITY: usize = 24 * 1024;

/// Required alignment (bytes) of every MRAM DMA transfer.
pub const DMA_ALIGN: usize = 8;

/// Maximum size (bytes) of a single MRAM DMA transfer.
pub const DMA_MAX_TRANSFER: usize = 2048;

/// Default DPU clock frequency in Hz (350 MHz, Table 2 of the paper).
pub const DEFAULT_CLOCK_HZ: u64 = 350_000_000;

/// Depth of the DPU instruction pipeline. A single tasklet may only have
/// one instruction in flight, so a lone tasklet dispatches at most one
/// instruction every `PIPELINE_DEPTH` cycles; `PIPELINE_DEPTH` or more
/// tasklets saturate the pipeline at one instruction per cycle.
pub const PIPELINE_DEPTH: u64 = 11;

/// Maximum number of hardware tasklets (threads) per DPU.
pub const MAX_TASKLETS: usize = 24;

/// Number of tasklets the paper employs per DPU (§4.1).
pub const DEFAULT_TASKLETS: usize = 14;

/// Number of DPUs per rank (one side of a UPMEM DIMM).
pub const DPUS_PER_RANK: usize = 64;

/// Number of DPUs used in the paper's evaluation (two UPMEM modules).
pub const DEFAULT_NR_DPUS: usize = 256;

/// Identifier of a DPU within a [`PimSystem`](crate::host::PimSystem).
///
/// `DpuId` is a dense index in `0..nr_dpus`; ranks are derived from it
/// (`id / DPUS_PER_RANK`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct DpuId(pub u32);

impl DpuId {
    /// Returns the dense index as `usize` for container indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rank this DPU belongs to (64 DPUs per rank).
    #[inline]
    pub fn rank(self) -> u32 {
        self.0 / DPUS_PER_RANK as u32
    }
}

impl fmt::Display for DpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpu{}", self.0)
    }
}

impl From<u32> for DpuId {
    fn from(v: u32) -> Self {
        DpuId(v)
    }
}

/// A cycle count on the DPU clock domain.
///
/// Newtype so cycle math cannot be accidentally mixed with nanoseconds;
/// convert explicitly with [`Cycles::to_nanos`].
#[derive(
    Debug,
    Clone,
    Copy,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Converts a cycle count into nanoseconds at clock `hz`.
    #[inline]
    pub fn to_nanos(self, hz: u64) -> f64 {
        self.0 as f64 * 1e9 / hz as f64
    }

    /// Converts a cycle count into microseconds at clock `hz`.
    #[inline]
    pub fn to_micros(self, hz: u64) -> f64 {
        self.to_nanos(hz) / 1e3
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mram_is_64_mb() {
        assert_eq!(MRAM_CAPACITY, 67_108_864);
    }

    #[test]
    fn dma_limits_match_paper() {
        // §3.1: "each MRAM read has to be 8 bytes aligned and can be 2,048
        // bytes maximum".
        assert_eq!(DMA_ALIGN, 8);
        assert_eq!(DMA_MAX_TRANSFER, 2048);
    }

    #[test]
    fn dpu_id_rank_mapping() {
        assert_eq!(DpuId(0).rank(), 0);
        assert_eq!(DpuId(63).rank(), 0);
        assert_eq!(DpuId(64).rank(), 1);
        assert_eq!(DpuId(255).rank(), 3);
    }

    #[test]
    fn cycles_to_time_at_350mhz() {
        let c = Cycles(350);
        assert!((c.to_nanos(DEFAULT_CLOCK_HZ) - 1000.0).abs() < 1e-9);
        assert!((c.to_micros(DEFAULT_CLOCK_HZ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(3) + Cycles(4);
        assert_eq!(a, Cycles(7));
        let mut b = Cycles(1);
        b += Cycles(2);
        assert_eq!(b, Cycles(3));
        assert_eq!(Cycles(5) * 3, Cycles(15));
        let s: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(s, Cycles(6));
    }

    #[test]
    fn dpu_id_display() {
        assert_eq!(DpuId(7).to_string(), "dpu7");
    }
}
